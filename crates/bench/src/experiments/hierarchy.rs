//! Experiments E1–E6: the monotonicity hierarchy (Theorem 3.1, Figure 1)
//! and the preservation-class correspondence (Lemma 3.2).

use crate::report::{markdown_table, Report};
use calm_common::generator::{clique_from, edge, star_from, triangle_from, InstanceRng};
use calm_common::instance::Instance;
use calm_common::query::Query;
use calm_common::{fact, is_domain_disjoint, is_domain_distinct};
use calm_monotone::{check_pair, Exhaustive, ExtensionKind, Falsifier};
use calm_queries::example51;
use calm_queries::qtc::qtc_datalog;
use calm_queries::tc::{edges_neq, edges_without_source_loop, tc_datalog};
use calm_queries::{CliqueQuery, DuplicateQuery, StarQuery, TrianglesUnlessTwoDisjoint};

fn random_graph(r: &mut calm_common::rng::Rng) -> Instance {
    InstanceRng::seeded(r.gen_u64()).gnp(5, 0.35)
}

/// Classify one query against the three unbounded classes; returns
/// `(in_m, in_mdistinct, in_mdisjoint)` where `true` means *no violation
/// found* (exhaustive small-domain + randomized).
pub fn classify_query(q: &dyn Query) -> (bool, bool, bool) {
    let check = |kind: ExtensionKind| -> bool {
        Exhaustive::new(kind).certify(q).is_none()
            && Falsifier::new(kind)
                .with_trials(120)
                .falsify(q, random_graph)
                .is_none()
    };
    (
        check(ExtensionKind::Any),
        check(ExtensionKind::DomainDistinct),
        check(ExtensionKind::DomainDisjoint),
    )
}

/// E1: the spine `M ⊊ Mdistinct ⊊ Mdisjoint ⊊ C` with one query per gap.
pub fn e1_hierarchy() -> Report {
    let mut r = Report::new(
        "E1",
        "Theorem 3.1(1) / Figure 1 — M ⊊ Mdistinct ⊊ Mdisjoint ⊊ C",
    );
    let mut rows = Vec::new();
    let mut record = |name: &str, q: &dyn Query, expect: (bool, bool, bool)| -> bool {
        let got = classify_query(q);
        rows.push(vec![
            name.to_string(),
            fmt_mem(got.0),
            fmt_mem(got.1),
            fmt_mem(got.2),
        ]);
        got == expect
    };
    let tc_ok = record("TC (positive Datalog)", &tc_datalog(), (true, true, true));
    let sp_ok = record(
        "E(x,y) ∧ ¬E(x,x) (SP-Datalog)",
        &edges_without_source_loop(),
        (false, true, true),
    );
    let qtc_ok = record(
        "Q_TC (semicon-Datalog¬)",
        &qtc_datalog(),
        (false, false, true),
    );
    // The triangle query needs a whole fresh triangle as the witness —
    // too structured for the generic random falsifier, so use the
    // paper's explicit pair (a triangle, plus a disjoint one) for all
    // three kinds (a domain-disjoint extension is also domain-distinct
    // and arbitrary).
    let tri = TrianglesUnlessTwoDisjoint::new();
    let tri_witness = check_pair(&tri, &triangle_from(0), &triangle_from(50)).is_some();
    rows.push(vec![
        "triangles-unless-two-disjoint".to_string(),
        fmt_mem(!tri_witness),
        fmt_mem(!tri_witness),
        fmt_mem(!tri_witness),
    ]);
    let tri_ok = tri_witness;
    r.claim(
        "TC ∈ M",
        "no violation in exhaustive+randomized search",
        tc_ok,
    );
    r.claim(
        "SP query ∈ Mdistinct \\ M",
        "witness in M, clean in Mdistinct",
        sp_ok,
    );
    r.claim(
        "Q_TC ∈ Mdisjoint \\ Mdistinct",
        "witness in Mdistinct, clean in Mdisjoint",
        qtc_ok,
    );
    r.claim(
        "triangle query ∈ C \\ Mdisjoint",
        "witness in Mdisjoint",
        tri_ok,
    );
    r.table(markdown_table(
        &["query", "M", "Mdistinct", "Mdisjoint"],
        &rows,
    ));
    r
}

fn fmt_mem(clean: bool) -> String {
    if clean {
        "∈ (no violation)".into()
    } else {
        "∉ (witness)".into()
    }
}

/// E2: `M = Mᵢ` — single-fact decomposition always admissible; bounded
/// and unbounded checks agree on monotone queries.
pub fn e2_bounded_m() -> Report {
    let mut r = Report::new("E2", "Theorem 3.1(2) — M = Mᵢ for every i");
    use calm_monotone::decomposition_stays_admissible;
    let mut rng = calm_common::rng::Rng::seed_from_u64(2);
    let mut ok = true;
    for _ in 0..200 {
        let base = random_graph(&mut rng);
        let ext = InstanceRng::seeded(rng.gen_u64()).gnp(4, 0.4);
        if !decomposition_stays_admissible(ExtensionKind::Any, &base, &ext) {
            ok = false;
        }
    }
    r.claim(
        "every extension decomposes into admissible single facts",
        "200 random (I, J) pairs",
        ok,
    );
    let tc = tc_datalog();
    let bounded_ok = (1..=3).all(|b| {
        Exhaustive::new(ExtensionKind::Any)
            .with_bound(b)
            .certify(&tc)
            .is_none()
    });
    r.claim(
        "TC passes M¹, M², M³ exhaustively",
        "bounds 1..3",
        bounded_ok,
    );
    r
}

/// E3: the clique ladder `Q^{i+2}_clique ∈ Mᵢdistinct \ Mᵢ₊₁distinct`.
pub fn e3_clique_ladder() -> Report {
    let mut r = Report::new(
        "E3",
        "Theorem 3.1(3) — Mdistinct ⊊ Mᵢ₊₁distinct ⊊ Mᵢdistinct via Q^{i+2}_clique",
    );
    let mut rows = Vec::new();
    for i in 1..=4usize {
        let q = CliqueQuery::new(i + 2);
        let base = clique_from(0, i + 1);
        let star: Instance = Instance::from_facts((0..=i as i64).map(|k| edge(900, k)));
        let breaks = is_domain_distinct(&star, &base) && check_pair(&q, &base, &star).is_some();
        let survives = Falsifier::new(ExtensionKind::DomainDistinct)
            .with_bound(i)
            .with_trials(250)
            .falsify(&q, |_| clique_from(0, i + 1))
            .is_none();
        rows.push(vec![
            format!("Q^{}_clique", i + 2),
            format!("{i}"),
            if survives {
                "clean".into()
            } else {
                "violated!".into()
            },
            if breaks {
                "witness".into()
            } else {
                "missing!".into()
            },
        ]);
        r.claim(
            format!(
                "Q^{}_clique ∈ M^{i}_distinct \\ M^{}_distinct",
                i + 2,
                i + 1
            ),
            "fresh-centre star witness; bounded falsifier clean",
            breaks && survives,
        );
    }
    r.table(markdown_table(
        &["query", "i", "M^i_distinct", "M^{i+1}_distinct witness"],
        &rows,
    ));
    r
}

/// E4: the star ladder `Q^{i+1}_star ∈ Mᵢdisjoint \ Mᵢ₊₁disjoint`.
pub fn e4_star_ladder() -> Report {
    let mut r = Report::new(
        "E4",
        "Theorem 3.1(4) — Mdisjoint ⊊ Mᵢ₊₁disjoint ⊊ Mᵢdisjoint via Q^{i+1}_star",
    );
    let mut rows = Vec::new();
    for i in 1..=4usize {
        let q = StarQuery::new(i + 1);
        let base = Instance::from_facts([edge(1, 2)]);
        let fresh = star_from(800, i + 1);
        let breaks = is_domain_disjoint(&fresh, &base) && check_pair(&q, &base, &fresh).is_some();
        let survives = Falsifier::new(ExtensionKind::DomainDisjoint)
            .with_bound(i)
            .with_trials(250)
            .falsify(&q, random_graph)
            .is_none();
        rows.push(vec![
            format!("Q^{}_star", i + 1),
            format!("{i}"),
            if survives {
                "clean".into()
            } else {
                "violated!".into()
            },
            if breaks {
                "witness".into()
            } else {
                "missing!".into()
            },
        ]);
        r.claim(
            format!("Q^{}_star ∈ M^{i}_disjoint \\ M^{}_disjoint", i + 1, i + 1),
            "fresh star witness; bounded falsifier clean",
            breaks && survives,
        );
    }
    r.table(markdown_table(
        &["query", "i", "M^i_disjoint", "M^{i+1}_disjoint witness"],
        &rows,
    ));
    r
}

/// E5: the cross-family separations (Theorem 3.1(5–7)).
pub fn e5_cross() -> Report {
    let mut r = Report::new("E5", "Theorem 3.1(5,6,7) — bounded distinct vs disjoint");
    // (5) Q^{i+1}_clique ∉ Mᵢdistinct, ∈ Mᵢdisjoint (i = 2).
    let i = 2usize;
    let q = CliqueQuery::new(i + 1);
    let base = clique_from(0, i);
    let j = Instance::from_facts([edge(700, 0), edge(700, 1)]);
    let breaks = check_pair(&q, &base, &j).is_some();
    let clean = Falsifier::new(ExtensionKind::DomainDisjoint)
        .with_bound(i)
        .with_trials(250)
        .falsify(&q, random_graph)
        .is_none();
    r.claim(
        "Q^3_clique ∈ M²_disjoint \\ M²_distinct",
        "star-completion witness",
        breaks && clean,
    );

    // (6) Q^{j+1}_star ∈ Mʲdisjoint \ Mᵢdistinct.
    let jp = 2usize;
    let q = StarQuery::new(jp + 1);
    let base = star_from(0, jp);
    let one = Instance::from_facts([edge(0, 600)]);
    let breaks = is_domain_distinct(&one, &base) && check_pair(&q, &base, &one).is_some();
    let clean = Falsifier::new(ExtensionKind::DomainDisjoint)
        .with_bound(jp)
        .with_trials(250)
        .falsify(&q, random_graph)
        .is_none();
    r.claim(
        "Q^3_star ∈ M²_disjoint \\ M¹_distinct",
        "single-spoke witness",
        breaks && clean,
    );

    // (7) Q^j_duplicate ∈ Mᵢdistinct \ Mʲdisjoint.
    let q = DuplicateQuery::new(3);
    let base = Instance::from_facts([fact("R1", [1, 2]), fact("R2", [1, 2])]);
    let replicate = Instance::from_facts([
        fact("R1", [500, 501]),
        fact("R2", [500, 501]),
        fact("R3", [500, 501]),
    ]);
    let breaks = check_pair(&q, &base, &replicate).is_some();
    let clean = Falsifier::new(ExtensionKind::DomainDistinct)
        .with_bound(2)
        .with_trials(300)
        .falsify(&q, |r| {
            let mut i = Instance::new();
            for rel in ["R1", "R2", "R3"] {
                for _ in 0..r.gen_range(0..3) {
                    i.insert(fact(rel, [r.gen_range(0..4i64), r.gen_range(0..4i64)]));
                }
            }
            i
        })
        .is_none();
    r.claim(
        "Q³_duplicate ∈ M²_distinct \\ M³_disjoint",
        "replication witness; 2-bounded distinct clean",
        breaks && clean,
    );
    r
}

/// E6: Lemma 3.2 — `H ⊊ Hinj = M ⊊ E = Mdistinct`.
pub fn e6_preservation() -> Report {
    use calm_monotone::{falsify_extension_preservation, falsify_homomorphism_preservation};
    let mut r = Report::new("E6", "Lemma 3.2 — H ⊊ Hinj = M ⊊ E = Mdistinct");
    let neq = edges_neq();
    let h_broken = falsify_homomorphism_preservation(&neq, random_graph, false, 250, 61).is_some();
    let hinj_clean = falsify_homomorphism_preservation(&neq, random_graph, true, 250, 62).is_none();
    let m_clean = Exhaustive::new(ExtensionKind::Any).certify(&neq).is_none();
    r.claim(
        "E(x,y)∧x≠y ∈ Hinj \\ H",
        "collapse witness; injective clean",
        h_broken && hinj_clean,
    );
    r.claim("and ∈ M (= Hinj)", "exhaustive M certification", m_clean);

    let sp = edges_without_source_loop();
    let e_clean = falsify_extension_preservation(&sp, random_graph, 250, 63).is_none();
    let m_broken = Exhaustive::new(ExtensionKind::Any).certify(&sp).is_some();
    r.claim(
        "SP query ∈ E \\ M",
        "extension-preservation clean, M witness",
        e_clean && m_broken,
    );

    let qtc = qtc_datalog();
    let e_broken = falsify_extension_preservation(&qtc, random_graph, 400, 64).is_some();
    r.claim(
        "Q_TC ∉ E (= Mdistinct)",
        "induced-subinstance witness",
        e_broken,
    );

    // P1 of Example 5.1 sits in Mdisjoint \ E.
    let p1 = example51::p1();
    let p1_e_broken = falsify_extension_preservation(
        &p1,
        |r| {
            // Bias towards triangle-bearing graphs so subinstances lose them.
            let mut g = random_graph(r);
            g.extend(triangle_from(0).facts());
            g
        },
        200,
        65,
    )
    .is_some();
    r.claim(
        "P1 ∉ E but ∈ Mdisjoint",
        "triangle-loss witness",
        p1_e_broken,
    );
    r
}
