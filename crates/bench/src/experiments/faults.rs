//! E20: the fault-injection + reliable-delivery layer under load — a
//! drop-rate sweep per strategy family on the threaded executor.
//!
//! Every cell of the sweep must still produce the sequential oracle's
//! output byte-identically (the chaos-equivalence guarantee measured at
//! bench scale), while the table shows what the unfair network costs:
//! wall clock, retransmission volume, and duplicates absorbed by the
//! receiver-side dedup. The `off` row runs with no fault plan at all —
//! the pay-for-what-you-use claim is that this path never enters the
//! reliability machinery, and that even an armed zero-probability plan
//! (seq/ack/snapshot bookkeeping with nothing injected) stays close.

use std::time::Instant;

use crate::report::{markdown_table, Report};
use crate::workloads::scaling_graph;
use calm_net::{run_threaded_with, FaultPlan, Programs, ThreadedConfig, ThreadedNetwork};
use calm_obs::Obs;
use calm_queries::qtc::qtc_datalog;
use calm_queries::tc::{edges_without_source_loop, tc_datalog};
use calm_transducer::{
    run_with, DisjointStrategy, DistinctStrategy, DistributionPolicy, DomainGuidedPolicy,
    HashPolicy, MonotoneBroadcast, Network, Scheduler, SystemConfig, Transducer, TransducerNetwork,
};

const NODES: usize = 8;
const WORKERS: usize = 4;
const SEED: u64 = 20;
/// The swept drop rates; duplication rides along at half the drop rate
/// so the dedup column is exercised too.
const DROPS: [f64; 2] = [0.05, 0.2];

type Family<'a> = (
    &'a str,
    &'a (dyn Fn() -> Box<dyn Transducer> + Sync),
    &'a dyn DistributionPolicy,
    SystemConfig,
);

/// E20: drop-rate sweep over the fault layer.
pub fn e20_faults() -> Report {
    e20_faults_obs(&Obs::noop())
}

/// As [`e20_faults`], threading an [`Obs`] through the runs so `repro
/// --trace-out` captures the per-fault-class counters as artifacts.
pub fn e20_faults_obs(obs: &Obs) -> Report {
    let mut r = Report::new(
        "E20",
        "fault injection — drop-rate sweep vs wall clock and retransmit volume per strategy",
    );
    let input = scaling_graph(11, 24, 1.5);
    let mut rows = Vec::new();

    let m_factory =
        || Box::new(MonotoneBroadcast::new(Box::new(tc_datalog()))) as Box<dyn Transducer>;
    let d_factory = || {
        Box::new(DistinctStrategy::new(Box::new(edges_without_source_loop())))
            as Box<dyn Transducer>
    };
    let j_factory =
        || Box::new(DisjointStrategy::new(Box::new(qtc_datalog()))) as Box<dyn Transducer>;
    let hash = HashPolicy::new(Network::of_size(NODES));
    let guided = DomainGuidedPolicy::new(Network::of_size(NODES));
    let families: [Family; 3] = [
        (
            "M/broadcast (TC)",
            &m_factory,
            &hash,
            SystemConfig::ORIGINAL,
        ),
        (
            "Mdistinct/non-facts (SP)",
            &d_factory,
            &hash,
            SystemConfig::POLICY_AWARE,
        ),
        (
            "Mdisjoint/request-OK (Q_TC)",
            &j_factory,
            &guided,
            SystemConfig::POLICY_AWARE,
        ),
    ];

    let mut worst_overhead = 0.0f64;
    let mut all_untouched = true;
    for (label, factory, policy, config) in families {
        // The sequential oracle every sweep cell must reproduce.
        let oracle = factory();
        let tn = TransducerNetwork {
            transducer: oracle.as_ref(),
            policy,
            config,
        };
        let seq = run_with(&tn, &input, &Scheduler::RoundRobin, 5_000_000, obs);

        let net = ThreadedNetwork {
            programs: Programs::PerWorker(factory),
            policy,
            config,
        };
        let run_cell = |plan: Option<FaultPlan>, reps: usize| {
            let mut cfg = ThreadedConfig::new(WORKERS);
            if let Some(plan) = plan {
                cfg = cfg.with_faults(plan);
            }
            let mut best = f64::MAX;
            let mut out = None;
            for _ in 0..reps {
                let start = Instant::now();
                let thr = run_threaded_with(&net, &input, &cfg, obs);
                best = best.min(start.elapsed().as_secs_f64());
                out = Some(thr);
            }
            (out.expect("reps >= 1"), best)
        };

        // Baseline: no fault plan — the zero-fault path.
        let (off, off_wall) = run_cell(None, 3);
        let mut all_equal = off.quiescent && off.output == seq.output;
        let off_untouched = off.faults.attempts == 0
            && off.faults.retransmissions == 0
            && off.faults.snapshots == 0;
        all_untouched &= off_untouched;
        rows.push(cell_row(
            label,
            "off",
            off_wall,
            &off,
            &seq,
            off.output == seq.output,
        ));

        // Armed but silent: full seq/ack/snapshot machinery, no faults.
        let (zero, zero_wall) = run_cell(Some(FaultPlan::none(SEED)), 3);
        all_equal &= zero.quiescent && zero.output == seq.output;
        worst_overhead = worst_overhead.max(zero_wall / off_wall.max(1e-9));
        rows.push(cell_row(
            label,
            "0.00 (armed)",
            zero_wall,
            &zero,
            &seq,
            zero.output == seq.output,
        ));

        let mut retrans_by_drop = Vec::new();
        for drop in DROPS {
            let plan = FaultPlan::uniform(SEED, drop, drop / 2.0);
            let (thr, wall) = run_cell(Some(plan), 1);
            all_equal &= thr.quiescent && thr.output == seq.output;
            retrans_by_drop.push(thr.faults.retransmissions);
            rows.push(cell_row(
                label,
                &format!("{drop:.2}"),
                wall,
                &thr,
                &seq,
                thr.output == seq.output,
            ));
        }
        r.claim(
            format!("{label}: every sweep cell reproduces the sequential oracle"),
            "byte-identical output, quiescence detected, at drop ∈ {off, 0, 0.05, 0.2}",
            all_equal,
        );
        r.claim(
            format!("{label}: the zero-fault path never enters the fault layer"),
            "no-plan run has zero attempts/retransmissions/snapshots (pay-for-what-you-use)",
            off_untouched,
        );
        r.claim(
            format!("{label}: loss is repaired by retransmission, not luck"),
            format!(
                "retransmissions {} at drop 0.05, {} at drop 0.2",
                retrans_by_drop[0], retrans_by_drop[1]
            ),
            retrans_by_drop[0] > 0 && retrans_by_drop[1] > retrans_by_drop[0],
        );
    }
    r.table(markdown_table(
        &[
            "strategy (query)",
            "drop rate",
            "wall ms",
            "attempts",
            "retransmits",
            "dups suppressed",
            "dropped",
            "crashes",
            "matches oracle",
            "quiescent",
        ],
        &rows,
    ));
    // Pay-for-what-you-use: a run that requests no faults takes the
    // plain threaded executor path — the reliability machinery is never
    // entered (counters identically zero), so the zero-fault throughput
    // is the fault-free executor's. What arming the machinery *would*
    // cost is reported as evidence, not claimed: acks, snapshots, and
    // conservative retransmit timers are the price of surviving loss.
    r.claim(
        "zero-fault throughput is the plain threaded executor's (fault layer is opt-in)",
        format!(
            "no-plan runs never enter the fault layer; an armed zero-probability plan \
             costs {worst_overhead:.2}× for its ack/snapshot/retransmit machinery"
        ),
        all_untouched,
    );
    r
}

fn cell_row(
    label: &str,
    drop: &str,
    wall: f64,
    thr: &calm_net::ThreadedRunResult,
    _seq: &calm_transducer::RunResult,
    matches: bool,
) -> Vec<String> {
    vec![
        label.to_string(),
        drop.to_string(),
        format!("{:.1}", wall * 1e3),
        thr.faults.attempts.to_string(),
        thr.faults.retransmissions.to_string(),
        thr.faults.duplicates_suppressed.to_string(),
        thr.faults.dropped.to_string(),
        thr.faults.crashes.to_string(),
        matches.to_string(),
        thr.quiescent.to_string(),
    ]
}
