//! E23: the delta-encoded wire format — bytes on the wire and codec
//! cost, old (naive) vs new (delta) payloads.
//!
//! Two measurements back the storage-v2 wire-format claim:
//!
//! * **end-to-end bytes**: the threaded executor counts the bytes of
//!   every transmitted payload copy alongside what the naive
//!   length-prefixed encoding would have cost for the same batches
//!   (`wire_bytes` vs `wire_bytes_naive`), on both the fault-free
//!   channel transport and the reliable substrate under loss — where
//!   retransmitted copies are counted too;
//! * **codec cost**: encode/decode wall time for both formats over a
//!   sampled dense batch, so the byte savings are shown not to be
//!   bought with a slower codec.
//!
//! Every cell must still reproduce the sequential oracle byte-identically
//! — the format is invisible to the engine.

use std::time::Instant;

use crate::report::{markdown_table, Report};
use crate::workloads::scaling_graph;
use calm_common::fact::Fact;
use calm_net::{run_threaded_with, wirefmt, FaultPlan, Programs, ThreadedConfig, ThreadedNetwork};
use calm_obs::Obs;
use calm_queries::qtc::qtc_datalog;
use calm_queries::tc::{edges_without_source_loop, tc_datalog};
use calm_transducer::multiset::Multiset;
use calm_transducer::{
    run_with, DisjointStrategy, DistinctStrategy, DistributionPolicy, DomainGuidedPolicy,
    HashPolicy, MonotoneBroadcast, Network, Scheduler, SystemConfig, Transducer, TransducerNetwork,
};

const NODES: usize = 8;
const WORKERS: usize = 4;
const SEED: u64 = 23;
const DROP: f64 = 0.05;

type Family<'a> = (
    &'a str,
    &'a (dyn Fn() -> Box<dyn Transducer> + Sync),
    &'a dyn DistributionPolicy,
    SystemConfig,
);

/// E23: wire bytes and codec cost, naive vs delta.
pub fn e23_wire() -> Report {
    e23_wire_obs(&Obs::noop())
}

/// As [`e23_wire`], threading an [`Obs`] through the runs so `repro
/// --trace-out` captures the `net/wire.bytes` counters as artifacts.
pub fn e23_wire_obs(obs: &Obs) -> Report {
    let mut r = Report::new(
        "E23",
        "delta wire format — bytes on the wire and codec cost vs the naive encoding",
    );
    let input = scaling_graph(11, 24, 1.5);

    let m_factory =
        || Box::new(MonotoneBroadcast::new(Box::new(tc_datalog()))) as Box<dyn Transducer>;
    let d_factory = || {
        Box::new(DistinctStrategy::new(Box::new(edges_without_source_loop())))
            as Box<dyn Transducer>
    };
    let j_factory =
        || Box::new(DisjointStrategy::new(Box::new(qtc_datalog()))) as Box<dyn Transducer>;
    let hash = HashPolicy::new(Network::of_size(NODES));
    let guided = DomainGuidedPolicy::new(Network::of_size(NODES));
    let families: [Family; 3] = [
        (
            "M/broadcast (TC)",
            &m_factory,
            &hash,
            SystemConfig::ORIGINAL,
        ),
        (
            "Mdistinct/non-facts (SP)",
            &d_factory,
            &hash,
            SystemConfig::POLICY_AWARE,
        ),
        (
            "Mdisjoint/request-OK (Q_TC)",
            &j_factory,
            &guided,
            SystemConfig::POLICY_AWARE,
        ),
    ];

    let mut rows = Vec::new();
    let mut all_equal = true;
    let mut all_smaller = true;
    for (label, factory, policy, config) in families {
        let oracle = factory();
        let tn = TransducerNetwork {
            transducer: oracle.as_ref(),
            policy,
            config,
        };
        let seq = run_with(&tn, &input, &Scheduler::RoundRobin, 5_000_000, obs);

        let net = ThreadedNetwork {
            programs: Programs::PerWorker(factory),
            policy,
            config,
        };
        // One fault-free run (in-process channel transport) and one
        // lossy run (reliable substrate: retransmitted copies count).
        let transports: [(&str, Option<FaultPlan>); 2] = [
            ("channel", None),
            (
                "reliable, drop=0.05",
                Some(FaultPlan::uniform(SEED, DROP, DROP / 2.0)),
            ),
        ];
        for (transport, plan) in transports {
            let mut cfg = ThreadedConfig::new(WORKERS);
            if let Some(plan) = plan {
                cfg = cfg.with_faults(plan);
            }
            let thr = run_threaded_with(&net, &input, &cfg, obs);
            all_equal &= thr.quiescent && thr.output == seq.output;
            all_smaller &= thr.wire_bytes < thr.wire_bytes_naive;
            let saved = 100.0 * (1.0 - thr.wire_bytes as f64 / thr.wire_bytes_naive.max(1) as f64);
            rows.push(vec![
                label.to_string(),
                transport.to_string(),
                thr.wire_bytes.to_string(),
                thr.wire_bytes_naive.to_string(),
                format!("{saved:.1}%"),
                (thr.output == seq.output).to_string(),
            ]);
        }
    }
    r.table(markdown_table(
        &[
            "strategy (query)",
            "transport",
            "delta bytes",
            "naive bytes",
            "saved",
            "matches oracle",
        ],
        &rows,
    ));
    r.claim(
        "delta payloads beat the naive encoding on every transport",
        "wire_bytes < wire_bytes_naive in every cell, retransmissions included",
        all_smaller,
    );
    r.claim(
        "the wire format is invisible to the engine",
        "every cell reproduces the sequential oracle byte-identically and quiesces",
        all_equal,
    );

    // Codec cost on a sampled dense batch: the full TC closure as one
    // message — the shape the broadcast strategy actually ships.
    let batch: Multiset<Fact> = seq_closure(&input);
    let delta = wirefmt::encode(&batch);
    let naive = wirefmt::encode_naive(&batch);
    let round_trip = wirefmt::decode(&delta).as_ref() == Ok(&batch)
        && wirefmt::decode_naive(&naive).as_ref() == Ok(&batch);
    let enc_delta = time_us(|| {
        wirefmt::encode(&batch);
    });
    let enc_naive = time_us(|| {
        wirefmt::encode_naive(&batch);
    });
    let dec_delta = time_us(|| {
        wirefmt::decode(&delta).expect("valid");
    });
    let dec_naive = time_us(|| {
        wirefmt::decode_naive(&naive).expect("valid");
    });
    r.table(markdown_table(
        &[
            "sampled batch",
            "facts",
            "delta bytes",
            "naive bytes",
            "enc µs (delta/naive)",
            "dec µs (delta/naive)",
        ],
        &[vec![
            "TC closure, one message".to_string(),
            batch.len().to_string(),
            delta.len().to_string(),
            naive.len().to_string(),
            format!("{enc_delta:.1} / {enc_naive:.1}"),
            format!("{dec_delta:.1} / {dec_naive:.1}"),
        ]],
    ));
    r.claim(
        "the codec round-trips the sampled batch in both formats",
        format!(
            "dense batch: {} delta bytes vs {} naive ({:.1}% saved)",
            delta.len(),
            naive.len(),
            100.0 * (1.0 - delta.len() as f64 / naive.len().max(1) as f64)
        ),
        round_trip && delta.len() < naive.len(),
    );
    r
}

/// The centralized TC closure over `input` as one fact multiset — a
/// representative dense batch.
fn seq_closure(input: &calm_common::instance::Instance) -> Multiset<Fact> {
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let policy = HashPolicy::new(Network::of_size(NODES));
    let tn = TransducerNetwork {
        transducer: &t,
        policy: &policy,
        config: SystemConfig::ORIGINAL,
    };
    let r = run_with(&tn, input, &Scheduler::RoundRobin, 5_000_000, &Obs::noop());
    r.output.facts().collect()
}

/// Best-of-5 wall time for `f`, in microseconds.
fn time_us(f: impl Fn()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..5 {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best * 1e6
}
