//! Experiment E18: engine ablation — naive vs semi-naive vs the
//! optimized engine (join reordering + hash indexes), measured in
//! *derivation counts* (deterministic; wall-clock lives in the
//! `datalog_eval` Criterion bench).

use crate::report::{markdown_table, Report};
use crate::workloads::{scaling_graph, structured};
use calm_datalog::eval::{eval_stratification_opts, eval_stratification_shared_obs, Engine};
use calm_datalog::parse_program;
use calm_obs::Obs;

/// E18: derivation-count ablation for transitive closure.
pub fn e18_engine() -> Report {
    e18_engine_obs(&Obs::noop())
}

/// As [`e18_engine`], wrapping each engine × workload run in a span and
/// streaming the optimized engine's per-stratum/per-iteration spans and
/// derivation counters to `obs`.
pub fn e18_engine_obs(obs: &Obs) -> Report {
    let mut r = Report::new(
        "E18",
        "engine ablation — naive vs semi-naive vs ordered+indexed (TC derivation counts)",
    );
    let p = parse_program("T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).").unwrap();
    let strat = calm_datalog::stratify(&p).unwrap();
    let mut rows = Vec::new();
    let mut seminaive_always_leq_naive = true;
    let mut engines_agree = true;
    let mut baseline_never_probes = true;
    let mut parallel_identical = true;
    for (kind, n) in [
        ("chain", 24usize),
        ("cycle", 24),
        ("grid", 36),
        ("random", 24),
    ] {
        let input = if kind == "random" {
            scaling_graph(181, n, 2.0)
        } else {
            structured(kind, n)
        };
        let time = |engine: Engine| {
            let _span = obs.span("bench", || format!("e18:{kind} {engine:?}"));
            let t0 = std::time::Instant::now();
            let result = eval_stratification_shared_obs(
                &strat,
                &input,
                engine,
                calm_common::storage::SharedSymbols::new(),
                obs,
            );
            (result, t0.elapsed().as_secs_f64() * 1e3)
        };
        let ((out_naive, stats_naive), ms_naive) = time(Engine::Naive);
        let ((out_base, stats_base), ms_base) = time(Engine::SemiNaiveBaseline);
        let ((out_opt, stats_opt), ms_opt) = time(Engine::SemiNaive);
        if out_naive != out_base || out_base != out_opt {
            engines_agree = false;
        }
        // The data-parallel driver must be byte-identical to the
        // sequential optimized run — same model, same per-stratum stats.
        let t0 = std::time::Instant::now();
        let (out_par, stats_par) = eval_stratification_opts(
            &strat,
            &input,
            Engine::SemiNaive,
            calm_common::storage::SharedSymbols::new(),
            obs,
            2,
        );
        let ms_par = t0.elapsed().as_secs_f64() * 1e3;
        if out_par != out_opt || stats_par != stats_opt {
            parallel_identical = false;
        }
        let d_naive: usize = stats_naive.iter().map(|s| s.derivations).sum();
        let d_base: usize = stats_base.iter().map(|s| s.derivations).sum();
        let d_opt: usize = stats_opt.iter().map(|s| s.derivations).sum();
        let probes: usize = stats_opt.iter().map(|s| s.index_probes).sum();
        let hits: usize = stats_opt.iter().map(|s| s.index_hits).sum();
        let base_probes: usize = stats_base.iter().map(|s| s.index_probes).sum();
        if d_base > d_naive {
            seminaive_always_leq_naive = false;
        }
        if base_probes > 0 {
            baseline_never_probes = false;
        }
        rows.push(vec![
            format!("{kind} |V|≈{n}"),
            out_opt.relation_len("T").to_string(),
            format!("{d_naive} ({ms_naive:.1} ms)"),
            format!("{d_base} ({ms_base:.1} ms)"),
            format!("{d_opt} ({ms_opt:.1} ms)"),
            format!("{ms_par:.1} ms"),
            format!("{probes} / {hits}"),
            format!("{:.1}x", d_naive as f64 / d_opt.max(1) as f64),
        ]);
    }
    r.claim(
        "all three engines compute identical models",
        "4 workloads",
        engines_agree,
    );
    r.claim(
        "the data-parallel driver (--eval-threads 2) is byte-identical to sequential",
        "same model and per-stratum EvalMetrics on all 4 workloads",
        parallel_identical,
    );
    r.claim(
        "semi-naive derives no more than naive",
        "delta-restricted recursion",
        seminaive_always_leq_naive,
    );
    r.claim(
        "the unindexed baseline never probes an index",
        "EvalMetrics.index_probes == 0",
        baseline_never_probes,
    );
    r.table(markdown_table(
        &[
            "workload",
            "|TC|",
            "naive (derivations, time)",
            "semi-naive baseline",
            "ordered+indexed",
            "parallel T=2",
            "probes / hits (opt)",
            "naive/opt derivations",
        ],
        &rows,
    ));
    r
}
