//! E25: the process engine (coordinator + W workers over loopback TCP)
//! against the threaded executor and the sequential simulator — wall
//! clock, wire bytes and token passes at W ∈ {1, 2, 4}.
//!
//! The workers here are thread-backed (the same [`run_net_worker`]
//! entry point the `calm net-worker` binary drives), so every run still
//! crosses real sockets, frames and the relay — the experiment isolates
//! the *transport* cost from process-spawn cost, which the CLI test
//! suite covers with genuine OS processes.
//!
//! Two claims ride on the numbers: the engines agree byte-for-byte
//! (confluence across process boundaries), and the process engine's
//! wire accounting matches the threaded engine's — both count the same
//! canonical delta-encoded batch payloads and nothing else (the TCP
//! framing is not payload). The totals are compared with a 10%
//! tolerance rather than exactly: batch *boundaries* depend on how
//! deliveries interleave with steps, which is scheduling — confluence
//! fixes the facts, not the number of batches carrying them. At W = 1
//! both engines count exactly zero (no cross-worker traffic), which
//! pins the accounting itself. The speedup claim is cores-aware, as in
//! E19: below 4 cores a parallel win is physically unavailable and the
//! claim is waived.

use std::time::{Duration, Instant};

use crate::report::{markdown_table, Report};
use crate::workloads::scaling_graph;
use calm_common::Instance;
use calm_net::{
    run_net_worker, run_process, run_threaded_with, Assign, JobSpec, ProcessConfig,
    ProcessRunResult, Programs, SpawnHandle, ThreadedConfig, ThreadedNetwork, WorkerSetup,
};
use calm_obs::Obs;
use calm_queries::qtc::qtc_datalog;
use calm_queries::tc::{edges_without_source_loop, tc_datalog};
use calm_transducer::{
    run_with, DisjointStrategy, DistinctStrategy, DistributionPolicy, DomainGuidedPolicy,
    HashPolicy, MonotoneBroadcast, Network, Scheduler, SystemConfig, Transducer, TransducerNetwork,
};

const NODES: usize = 8;
const WORKERS: [usize; 3] = [1, 2, 4];

/// Build one strategy family by name — the same resolution the CLI's
/// net-worker performs; by name because the worker threads rebuild it
/// from the `Assign` they receive over the socket.
fn family(
    strategy: &str,
    nodes: usize,
) -> (
    Box<dyn Transducer>,
    Box<dyn DistributionPolicy>,
    SystemConfig,
) {
    match strategy {
        "monotone" => (
            Box::new(MonotoneBroadcast::new(Box::new(tc_datalog()))),
            Box::new(HashPolicy::new(Network::of_size(nodes))),
            SystemConfig::ORIGINAL,
        ),
        "distinct" => (
            Box::new(DistinctStrategy::new(Box::new(edges_without_source_loop()))),
            Box::new(HashPolicy::new(Network::of_size(nodes))),
            SystemConfig::POLICY_AWARE,
        ),
        "disjoint" => (
            Box::new(DisjointStrategy::new(Box::new(qtc_datalog()))),
            Box::new(DomainGuidedPolicy::new(Network::of_size(nodes))),
            SystemConfig::POLICY_AWARE,
        ),
        other => panic!("unknown strategy family {other}"),
    }
}

/// Run the process engine over real sockets with thread-backed workers.
fn run_process_tcp(strategy: &'static str, input: &Instance, procs: usize) -> ProcessRunResult {
    let cfg = ProcessConfig::new(
        procs,
        JobSpec {
            program: String::new(),
            facts: String::new(),
            strategy: strategy.to_string(),
            nodes: NODES,
            eval_threads: 1,
            step_budget: 5_000_000,
            faults: None,
            trace_prefix: None,
            flight_path: None,
        },
    )
    // Unsupervised: E25 measures transport cost; supervision (snapshot
    // shipping, respawns) is E26's subject.
    .with_respawn_budget(0);
    let input = input.clone();
    let spawner = move |k: usize, addr: &str| -> Result<SpawnHandle, String> {
        let addr = addr.to_string();
        let input = input.clone();
        Ok(SpawnHandle::Thread(std::thread::spawn(move || {
            let builder = move |assign: &Assign| -> Result<WorkerSetup, String> {
                let (transducer, policy, config) = family(&assign.spec.strategy, assign.spec.nodes);
                Ok(WorkerSetup {
                    transducer,
                    policy,
                    config,
                    input: input.clone(),
                    obs: Obs::noop(),
                })
            };
            if let Err(e) = run_net_worker(&addr, k, &builder) {
                eprintln!("e25 worker {k} failed: {e}");
            }
        })))
    };
    run_process(&cfg, &spawner, &Obs::noop()).expect("process run starts")
}

/// Project `out(R)` from the collected states (the transport is
/// program-agnostic, so the output schema lives with the caller).
fn project_output(t: &dyn Transducer, r: &ProcessRunResult) -> Instance {
    let out_schema = &t.schema().output;
    let mut output = Instance::new();
    for state in r.states.values() {
        output.extend(state.restrict(out_schema).facts());
    }
    output
}

/// E25: sequential vs threaded vs process engine.
pub fn e25_process() -> Report {
    e25_process_obs(&Obs::noop())
}

/// As [`e25_process`], threading an [`Obs`] through the sequential and
/// threaded runs so `repro --trace-out` captures their events (the
/// process runs keep noop workers — their traffic is what is measured,
/// not traced).
pub fn e25_process_obs(obs: &Obs) -> Report {
    let mut r = Report::new(
        "E25",
        "sequential vs threaded vs process engines — wall clock, wire bytes, token passes",
    );
    let input = scaling_graph(11, 32, 1.5);
    let mut rows = Vec::new();
    let mut best_speedup = 0.0f64;

    for (label, strategy) in [
        ("M/broadcast (TC)", "monotone"),
        ("Mdistinct/non-facts (SP)", "distinct"),
        ("Mdisjoint/request-OK (Q_TC)", "disjoint"),
    ] {
        let (oracle, policy, config) = family(strategy, NODES);
        let tn = TransducerNetwork {
            transducer: oracle.as_ref(),
            policy: policy.as_ref(),
            config,
        };
        let start = Instant::now();
        let seq = run_with(&tn, &input, &Scheduler::RoundRobin, 5_000_000, obs);
        let seq_wall = start.elapsed();
        rows.push(row(
            label,
            "sequential",
            seq_wall,
            None,
            0,
            0,
            seq.quiescent,
        ));

        let mut all_equal = seq.quiescent;
        let mut bytes_match = true;
        for workers in WORKERS {
            let factory = move || family(strategy, NODES).0;
            let net = ThreadedNetwork {
                programs: Programs::PerWorker(&factory),
                policy: policy.as_ref(),
                config,
            };
            let start = Instant::now();
            let thr = run_threaded_with(&net, &input, &ThreadedConfig::new(workers), obs);
            let thr_wall = start.elapsed();
            let thr_tokens: u64 = thr.per_worker.iter().map(|w| w.token_passes).sum();
            all_equal &= thr.quiescent && thr.output == seq.output;
            rows.push(row(
                label,
                &format!("threaded x{workers}"),
                thr_wall,
                Some(seq_wall.as_secs_f64() / thr_wall.as_secs_f64().max(1e-9)),
                thr.wire_bytes,
                thr_tokens,
                thr.quiescent,
            ));

            let start = Instant::now();
            let proc = run_process_tcp(strategy, &input, workers);
            let proc_wall = start.elapsed();
            let speedup = seq_wall.as_secs_f64() / proc_wall.as_secs_f64().max(1e-9);
            best_speedup = best_speedup.max(speedup);
            all_equal &= proc.quiescent
                && proc.failed_workers.is_empty()
                && project_output(oracle.as_ref(), &proc) == seq.output;
            // Same payload-only accounting on both engines; totals
            // wobble a few percent because batch boundaries are
            // scheduling-dependent. W = 1 pins the zero exactly.
            bytes_match &= if workers == 1 {
                proc.wire_bytes == 0 && thr.wire_bytes == 0
            } else {
                let diff = proc.wire_bytes.abs_diff(thr.wire_bytes) as f64;
                diff <= 0.10 * thr.wire_bytes.max(1) as f64
            };
            rows.push(row(
                label,
                &format!("process x{workers}"),
                proc_wall,
                Some(speedup),
                proc.wire_bytes,
                proc.token_passes(),
                proc.quiescent,
            ));
        }
        r.claim(
            format!("{label}: threaded and process outputs equal sequential at W {{1,2,4}}"),
            "byte-identical network_output, all runs quiescent, no failed workers",
            all_equal,
        );
        r.claim(
            format!("{label}: process wire bytes match the threaded engine's at every W"),
            "payload-only accounting (zero at W=1, within 10% above — batch boundaries are scheduling)",
            bytes_match,
        );
    }

    r.table(markdown_table(
        &[
            "strategy (query)",
            "engine",
            "wall ms",
            "speedup vs seq",
            "wire bytes",
            "token passes",
            "quiescent",
        ],
        &rows,
    ));
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    r.claim(
        "the process engine beats sequential wall clock at some W (waived below 4 cores)",
        format!("best process speedup {best_speedup:.2}× on a {cores}-core host"),
        best_speedup >= 1.0 || cores < 4,
    );
    r
}

fn row(
    label: &str,
    engine: &str,
    wall: Duration,
    speedup: Option<f64>,
    wire_bytes: u64,
    token_passes: u64,
    quiescent: bool,
) -> Vec<String> {
    vec![
        label.to_string(),
        engine.to_string(),
        format!("{:.1}", wall.as_secs_f64() * 1e3),
        speedup.map_or("-".into(), |s| format!("{s:.2}x")),
        if engine == "sequential" {
            "-".into()
        } else {
            wire_bytes.to_string()
        },
        if engine == "sequential" {
            "-".into()
        } else {
            token_passes.to_string()
        },
        quiescent.to_string(),
    ]
}
