//! Experiments E8–E11: the transducer-model characterizations and the
//! cost profile of the three coordination-free strategies (§4.3).

use crate::report::{markdown_table, Report};
use crate::workloads::scaling_graph;
use calm_common::generator::{chain_game, mv, path};
use calm_common::query::Query;
use calm_common::{fact, Instance};
use calm_net::{run_threaded_with, FaultPlan, Programs, ThreadedConfig, ThreadedNetwork};
use calm_obs::Obs;
use calm_queries::qtc::qtc_datalog;
use calm_queries::tc::{edges_without_source_loop, tc_datalog};
use calm_queries::winmove::win_move;
use calm_transducer::{
    compile_monotone_program, expected_output, heartbeat_witness, run, run_with, verify_computes,
    DisjointStrategy, DistinctStrategy, DistributionPolicy, DomainGuidedPolicy, HashPolicy,
    MessageClassCounts, MonotoneBroadcast, Network, OverridePolicy, Scheduler, SystemConfig,
    Transducer, TransducerNetwork,
};

fn schedulers() -> Vec<Scheduler> {
    vec![Scheduler::RoundRobin, Scheduler::random(71, 50)]
}

/// E8: `F1 = Mdistinct` — the distinct strategy computes member queries
/// for arbitrary policies; the heartbeat witness exists; non-member
/// queries break it.
pub fn e8_distinct_model() -> Report {
    let mut r = Report::new("E8", "Theorem 4.3 — F1 = Mdistinct (policy-aware model)");
    let t = DistinctStrategy::new(Box::new(edges_without_source_loop()));
    let mut input = path(3);
    input.insert(fact("E", [1, 1]));
    let expected = expected_output(t.query(), &input);
    let mut all_n_ok = true;
    for n in [1, 2, 4] {
        let policy = HashPolicy::new(Network::of_size(n));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::POLICY_AWARE,
        };
        if verify_computes(&tn, &input, &expected, &schedulers(), 400_000).is_err() {
            all_n_ok = false;
        }
    }
    r.claim(
        "distinct strategy computes an Mdistinct query on n ∈ {1,2,4}, all schedules",
        "SP query E(x,y)∧¬E(x,x)",
        all_n_ok,
    );

    // Heartbeat witness on the ideal policy.
    let net = Network::of_size(3);
    let x = net.first().clone();
    let ideal = DomainGuidedPolicy::all_to(net, x.clone());
    let tn = TransducerNetwork {
        transducer: &t,
        policy: &ideal,
        config: SystemConfig::POLICY_AWARE,
    };
    let beats = heartbeat_witness(&tn, &input, &x, &expected, 10);
    r.claim(
        "coordination-freeness witness (Def. 3): heartbeat-only prefix computes Q(I)",
        format!("{beats:?} heartbeats on the all-to-x policy"),
        beats.is_some(),
    );

    // Converse: win-move (∉ Mdistinct) must fail under some policy.
    let bad = DistinctStrategy::new(Box::new(win_move()));
    let game = chain_game(0, 2);
    let exp = expected_output(bad.query(), &game);
    let net = Network::of_size(2);
    let base: std::sync::Arc<dyn DistributionPolicy> = std::sync::Arc::new(
        DomainGuidedPolicy::all_to(net.clone(), calm_common::value::Value::str("n1")),
    );
    let policy = OverridePolicy::new(base, [mv(1, 2)], [calm_common::value::Value::str("n2")]);
    let tn = TransducerNetwork {
        transducer: &bad,
        policy: &policy,
        config: SystemConfig::POLICY_AWARE,
    };
    let rr = run(&tn, &game, &Scheduler::RoundRobin, 200_000);
    r.claim(
        "win-move ∉ Mdistinct ⇒ the strategy miscomputes it somewhere",
        format!("output {:?} ≠ expected {:?}", rr.output, exp),
        rr.quiescent && rr.output != exp,
    );
    r
}

/// E9: `F2 = Mdisjoint` — the disjoint strategy under domain guidance.
pub fn e9_disjoint_model() -> Report {
    let mut r = Report::new("E9", "Theorem 4.4 — F2 = Mdisjoint (domain-guided model)");
    let queries: Vec<(&str, Box<dyn Query>)> = vec![
        ("win-move", Box::new(win_move())),
        ("Q_TC", Box::new(qtc_datalog())),
    ];
    for (name, q) in queries {
        let t = DisjointStrategy::new(q);
        let input: Instance = if name == "win-move" {
            chain_game(0, 4)
        } else {
            path(3)
        };
        let expected = expected_output(t.query(), &input);
        let mut ok = true;
        for n in [1, 2, 4] {
            let policy = DomainGuidedPolicy::new(Network::of_size(n));
            let tn = TransducerNetwork {
                transducer: &t,
                policy: &policy,
                config: SystemConfig::POLICY_AWARE,
            };
            if verify_computes(&tn, &input, &expected, &schedulers(), 500_000).is_err() {
                ok = false;
            }
        }
        r.claim(
            format!("disjoint strategy computes {name} on n ∈ {{1,2,4}}, all schedules"),
            "domain-guided hash assignment",
            ok,
        );
        // Heartbeat witness.
        let net = Network::of_size(3);
        let x = net.first().clone();
        let ideal = DomainGuidedPolicy::all_to(net, x.clone());
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &ideal,
            config: SystemConfig::POLICY_AWARE,
        };
        let beats = heartbeat_witness(&tn, &input, &x, &expected, 10);
        r.claim(
            format!("{name}: heartbeat-only witness exists"),
            format!("{beats:?} heartbeats"),
            beats.is_some(),
        );
    }
    r
}

/// E10: Theorem 4.5 / Corollary 4.6 — removing `All` changes nothing for
/// the strategies (which never read it).
pub fn e10_no_all() -> Report {
    let mut r = Report::new(
        "E10",
        "Theorem 4.5 & Cor 4.6 — the All-free models A0/A1/A2",
    );
    // A1: distinct strategy.
    let t = DistinctStrategy::new(Box::new(edges_without_source_loop()));
    let mut input = path(3);
    input.insert(fact("E", [0, 0]));
    let expected = expected_output(t.query(), &input);
    let mut outs = Vec::new();
    for config in [
        SystemConfig::POLICY_AWARE,
        SystemConfig::POLICY_AWARE_NO_ALL,
    ] {
        let policy = HashPolicy::new(Network::of_size(3));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config,
        };
        let rr = run(&tn, &input, &Scheduler::RoundRobin, 400_000);
        outs.push((config, rr.quiescent, rr.output));
    }
    let a1_ok = outs.iter().all(|(_, q, o)| *q && *o == expected);
    r.claim(
        "A1: distinct strategy identical with and without All",
        "same output both models",
        a1_ok,
    );

    // A2: disjoint strategy.
    let t = DisjointStrategy::new(Box::new(win_move()));
    let game = chain_game(0, 4);
    let expected = expected_output(t.query(), &game);
    let mut ok = true;
    for config in [
        SystemConfig::POLICY_AWARE,
        SystemConfig::POLICY_AWARE_NO_ALL,
    ] {
        let policy = DomainGuidedPolicy::new(Network::of_size(3));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config,
        };
        let rr = run(&tn, &game, &Scheduler::RoundRobin, 400_000);
        if !(rr.quiescent && rr.output == expected) {
            ok = false;
        }
    }
    r.claim(
        "A2: disjoint strategy identical with and without All",
        "win-move",
        ok,
    );

    // A0/oblivious: monotone strategy with no system relations at all.
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let input = path(4);
    let expected = expected_output(t.query(), &input);
    let mut ok = true;
    for config in [
        SystemConfig::ORIGINAL,
        SystemConfig::ORIGINAL_NO_ALL,
        SystemConfig::OBLIVIOUS,
    ] {
        let policy = HashPolicy::new(Network::of_size(3));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config,
        };
        let rr = run(&tn, &input, &Scheduler::RoundRobin, 100_000);
        if !(rr.quiescent && rr.output == expected) {
            ok = false;
        }
    }
    r.claim(
        "F0 = A0 = M: monotone broadcast works obliviously",
        "original / no-All / oblivious identical",
        ok,
    );
    r
}

/// E11: the §4.3 cost table — messages, deliveries, transitions of the
/// three strategies on TC-style workloads, by graph size and network
/// size.
pub fn e11_strategy_costs() -> Report {
    e11_strategy_costs_obs(&Obs::noop())
}

/// As [`e11_strategy_costs`], reporting each run as a span and letting
/// the runtime stream its per-transition events and per-class message
/// counters to `obs` — `repro --trace-out` turns this into the paper's
/// §4.3 message-volume comparison as machine-readable artifacts.
pub fn e11_strategy_costs_obs(obs: &Obs) -> Report {
    let mut r = Report::new(
        "E11",
        "§4.3 — cost profile of the three coordination-free strategies",
    );
    let mut rows = Vec::new();
    // Per-class message composition on the largest configuration, for the
    // composition claims below.
    let mut largest: [MessageClassCounts; 3] = Default::default();
    // Goodput companion: every strategy row re-runs on the threaded
    // engine under a lossy, duplicating link plan so the table reports
    // what reliable delivery costs (retransmits) and absorbs (dups) on
    // top of the engine-level sends — and that the output survives.
    let mut lossy_ok = true;
    // Determinism companion: every strategy row also re-runs with its
    // node-local fixpoints partitioned over 2 eval threads; the whole
    // RunResult (output and Metrics) must be byte-identical.
    let mut parallel_ok = true;
    for &vertices in &[8usize, 16, 32] {
        let input = scaling_graph(11, vertices, 1.5);
        for &n in &[2usize, 4] {
            let mut measure = |label: &str,
                               tn: &TransducerNetwork<'_>,
                               lossy: Option<(u64, u64)>,
                               par: Option<&TransducerNetwork<'_>>| {
                let _span = obs.span("bench", || format!("e11:{label} |V|={vertices} n={n}"));
                let rr = run_with(tn, &input, &Scheduler::RoundRobin, 2_000_000, obs);
                let par_identical = par.map(|ptn| {
                    let rp = run(ptn, &input, &Scheduler::RoundRobin, 2_000_000);
                    rp.output == rr.output && rp.metrics == rr.metrics
                });
                parallel_ok &= par_identical.unwrap_or(true);
                push_cost_row(&mut rows, label, vertices, n, &rr, lossy, par_identical);
                rr
            };

            // M strategy on TC.
            let m_factory =
                || Box::new(MonotoneBroadcast::new(Box::new(tc_datalog()))) as Box<dyn Transducer>;
            let policy = HashPolicy::new(Network::of_size(n));
            let expected = expected_output(&tc_datalog(), &input);
            let lossy = lossy_counters(
                &m_factory,
                &policy,
                SystemConfig::ORIGINAL,
                &input,
                &expected,
                &mut lossy_ok,
            );
            let m = MonotoneBroadcast::new(Box::new(tc_datalog()));
            let tn = TransducerNetwork {
                transducer: &m,
                policy: &policy,
                config: SystemConfig::ORIGINAL,
            };
            let m_par = MonotoneBroadcast::new(Box::new(tc_datalog().with_eval_threads(2)));
            let tn_par = TransducerNetwork {
                transducer: &m_par,
                policy: &policy,
                config: SystemConfig::ORIGINAL,
            };
            let rm = measure("M/broadcast (TC)", &tn, Some(lossy), Some(&tn_par));

            // Mdistinct strategy on the SP query (facts + non-facts).
            let d_factory = || {
                Box::new(DistinctStrategy::new(Box::new(edges_without_source_loop())))
                    as Box<dyn Transducer>
            };
            let policy = HashPolicy::new(Network::of_size(n));
            let expected = expected_output(&edges_without_source_loop(), &input);
            let lossy = lossy_counters(
                &d_factory,
                &policy,
                SystemConfig::POLICY_AWARE,
                &input,
                &expected,
                &mut lossy_ok,
            );
            let d = DistinctStrategy::new(Box::new(edges_without_source_loop()));
            let tn = TransducerNetwork {
                transducer: &d,
                policy: &policy,
                config: SystemConfig::POLICY_AWARE,
            };
            let d_par =
                DistinctStrategy::new(Box::new(edges_without_source_loop().with_eval_threads(2)));
            let tn_par = TransducerNetwork {
                transducer: &d_par,
                policy: &policy,
                config: SystemConfig::POLICY_AWARE,
            };
            let rd = measure("Mdistinct/non-facts (SP)", &tn, Some(lossy), Some(&tn_par));

            // Mdisjoint strategy on Q_TC (request/OK protocol).
            let j_factory =
                || Box::new(DisjointStrategy::new(Box::new(qtc_datalog()))) as Box<dyn Transducer>;
            let policy = DomainGuidedPolicy::new(Network::of_size(n));
            let expected = expected_output(&qtc_datalog(), &input);
            let lossy = lossy_counters(
                &j_factory,
                &policy,
                SystemConfig::POLICY_AWARE,
                &input,
                &expected,
                &mut lossy_ok,
            );
            let j = DisjointStrategy::new(Box::new(qtc_datalog()));
            let tn = TransducerNetwork {
                transducer: &j,
                policy: &policy,
                config: SystemConfig::POLICY_AWARE,
            };
            let j_par = DisjointStrategy::new(Box::new(qtc_datalog().with_eval_threads(2)));
            let tn_par = TransducerNetwork {
                transducer: &j_par,
                policy: &policy,
                config: SystemConfig::POLICY_AWARE,
            };
            let rj = measure(
                "Mdisjoint/request-OK (Q_TC)",
                &tn,
                Some(lossy),
                Some(&tn_par),
            );

            if vertices == 32 && n == 4 {
                largest = [
                    rm.metrics.by_class,
                    rd.metrics.by_class,
                    rj.metrics.by_class,
                ];
            }

            // The declaratively-compiled broadcast transducer runs the
            // Datalog engine every transition — its run metrics carry the
            // engine-level counters (derivations, index probes/hits).
            let p = calm_datalog::parse_program(
                "@output T.\nT(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).",
            )
            .unwrap();
            let c = compile_monotone_program("net-tc", &p).unwrap();
            let policy = HashPolicy::new(Network::of_size(n));
            let tn = TransducerNetwork {
                transducer: &c,
                policy: &policy,
                config: SystemConfig::ORIGINAL,
            };
            measure("declarative/net-compiled (TC)", &tn, None, None);
        }
    }
    r.table(markdown_table(
        &[
            "strategy (query)",
            "|V|",
            "nodes",
            "transitions",
            "msgs sent",
            "msgs delivered",
            "msg classes",
            "max queue",
            "engine derivations",
            "engine probes/hits",
            "first output at",
            "retransmits (lossy)",
            "dups suppressed (lossy)",
            "eval T=2",
            "quiescent",
        ],
        &rows,
    ));
    r.claim(
        "goodput under loss: every strategy row reproduces its output on the lossy threaded run",
        "drop 10% / dup 5% per link, 2 workers — reliable delivery restores fairness",
        lossy_ok,
    );
    r.claim(
        "data-parallel node fixpoints (--eval-threads 2) leave every strategy row byte-identical",
        "same output and RunResult metrics on every |V| × n configuration",
        parallel_ok,
    );
    // The ordering claim implicit in §4.3: non-fact broadcasting costs
    // more than fact broadcasting; the per-value protocol more than both
    // (on the same |V| and n). Check on the largest configuration.
    let last_m = find_row(&rows, "M/broadcast (TC)", 32, 4);
    let last_d = find_row(&rows, "Mdistinct/non-facts (SP)", 32, 4);
    let last_j = find_row(&rows, "Mdisjoint/request-OK (Q_TC)", 32, 4);
    let ordering = last_m < last_d;
    r.claim(
        "message volume: M-broadcast < Mdistinct (absence broadcasting dominates)",
        format!("{last_m} vs {last_d} messages at |V|=32, n=4"),
        ordering,
    );
    r.claim(
        "the Mdisjoint protocol pays per-value coordination (requests/acks/OKs)",
        format!("{last_j} messages at |V|=32, n=4"),
        last_j > last_m,
    );
    // Per-class composition: what each strategy's messages actually are.
    let [m_cls, d_cls, j_cls] = largest;
    r.claim(
        "M sends fact broadcasts only (no absences, no protocol)",
        format!("classes: {}", class_summary(&m_cls)),
        m_cls.fact > 0 && m_cls.absence == 0 && m_cls.coordination() == 0,
    );
    r.claim(
        "Mdistinct adds absence broadcasts but still no per-value protocol",
        format!("classes: {}", class_summary(&d_cls)),
        d_cls.fact > 0 && d_cls.absence > 0 && d_cls.coordination() == 0,
    );
    r.claim(
        "Mdisjoint replaces absences with the request/OK per-value protocol",
        format!("classes: {}", class_summary(&j_cls)),
        j_cls.request > 0 && j_cls.ok > 0 && j_cls.absence == 0,
    );
    r
}

/// Render non-zero message classes as `fact=40 request=6 ok=6`.
fn class_summary(c: &MessageClassCounts) -> String {
    let parts: Vec<String> = c
        .as_pairs()
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(label, n)| format!("{label}={n}"))
        .collect();
    if parts.is_empty() {
        "-".to_string()
    } else {
        parts.join(" ")
    }
}

/// Re-run one strategy family on the threaded engine under a lossy link
/// plan and return `(retransmissions, duplicates suppressed)`; clears
/// `ok` if the run fails to reproduce the centralized answer.
fn lossy_counters(
    factory: &(dyn Fn() -> Box<dyn Transducer> + Sync),
    policy: &dyn DistributionPolicy,
    config: SystemConfig,
    input: &Instance,
    expected: &Instance,
    ok: &mut bool,
) -> (u64, u64) {
    let net = ThreadedNetwork {
        programs: Programs::PerWorker(factory),
        policy,
        config,
    };
    let plan = FaultPlan::uniform(7, 0.1, 0.05);
    let thr = run_threaded_with(
        &net,
        input,
        &ThreadedConfig::new(2).with_faults(plan),
        &Obs::noop(),
    );
    *ok &= thr.quiescent && thr.output == *expected;
    (thr.faults.retransmissions, thr.faults.duplicates_suppressed)
}

#[allow(clippy::too_many_arguments)]
fn push_cost_row(
    rows: &mut Vec<Vec<String>>,
    name: &str,
    vertices: usize,
    n: usize,
    rr: &calm_transducer::RunResult,
    lossy: Option<(u64, u64)>,
    par_identical: Option<bool>,
) {
    // Native Rust strategies bypass the Datalog engine: their engine
    // counters are structurally zero, shown as "-".
    let eval = &rr.metrics.eval;
    let (derivations, probes) = if *eval == Default::default() {
        ("-".to_string(), "-".to_string())
    } else {
        (
            eval.derivations.to_string(),
            format!("{}/{}", eval.index_probes, eval.index_hits),
        )
    };
    rows.push(vec![
        name.to_string(),
        vertices.to_string(),
        n.to_string(),
        rr.metrics.transitions.to_string(),
        rr.metrics.messages_sent.to_string(),
        rr.metrics.messages_delivered.to_string(),
        class_summary(&rr.metrics.by_class),
        rr.metrics.max_queue_depth().to_string(),
        derivations,
        probes,
        rr.metrics
            .first_output_at
            .map_or("-".into(), |k| k.to_string()),
        lossy.map_or("-".into(), |(r, _)| r.to_string()),
        lossy.map_or("-".into(), |(_, d)| d.to_string()),
        par_identical.map_or("-".into(), |ok| {
            if ok { "identical" } else { "DIVERGED" }.to_string()
        }),
        rr.quiescent.to_string(),
    ]);
}

fn find_row(rows: &[Vec<String>], name: &str, vertices: usize, n: usize) -> usize {
    rows.iter()
        .find(|row| row[0] == name && row[1] == vertices.to_string() && row[2] == n.to_string())
        .map(|row| row[4].parse().unwrap_or(0))
        .unwrap_or(0)
}

/// Quick self-checks shared with the test suite.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_passes() {
        assert!(e10_no_all().all_pass());
    }
}
