//! Experiments E12–E15: Datalog/wILOG fragments (Section 5).

use crate::report::{markdown_table, Report};
use calm_common::generator::{triangle_from, InstanceRng};
use calm_common::query::Query;
use calm_common::{fact, is_domain_disjoint, Instance};
use calm_datalog::fragment::{classify, semicon_split};
use calm_datalog::DatalogQuery;
use calm_ilog::{classify_ilog, eval_ilog_query, is_weakly_safe, IlogProgram, Limits};
use calm_monotone::{
    check_distributes_over_components, check_pair, Exhaustive, ExtensionKind, Falsifier,
};
use calm_queries::example51::{p1, p2, P1_SRC, P2_SRC};
use calm_queries::qtc::QTC_SRC;

/// E12: Example 5.1 — `P1 ∈ con-Datalog¬ \ Mdistinct`, `P2` not
/// semi-connected (and not in `Mdisjoint`).
pub fn e12_example51() -> Report {
    let mut r = Report::new("E12", "Example 5.1 — the programs P1 and P2");
    let rep1 = classify(p1().program());
    r.claim(
        "P1 ∈ con-Datalog¬ (all rules connected)",
        format!("connected={}, sp={}", rep1.connected, rep1.sp_datalog),
        rep1.connected && !rep1.sp_datalog,
    );
    let q1 = p1();
    let i = Instance::from_facts([fact("E", [1, 2])]);
    let j = Instance::from_facts([fact("E", [2, 3]), fact("E", [3, 1])]);
    let witness = check_pair(&q1, &i, &j).is_some();
    r.claim(
        "P1({E(a,b)}) ≠ ∅ but P1(∪{E(b,c),E(c,a)}) = ∅ — P1 ∉ Mdistinct",
        "the paper's exact counterexample",
        witness && !q1.eval(&i).is_empty() && q1.eval(&i.union(&j)).is_empty(),
    );
    let disjoint_clean = Exhaustive::new(ExtensionKind::DomainDisjoint)
        .certify(&q1)
        .is_none();
    r.claim(
        "P1 ∈ Mdisjoint (Thm 5.3 on con ⊆ semicon)",
        "exhaustive certification",
        disjoint_clean,
    );

    let rep2 = classify(p2().program());
    r.claim(
        "P2 stratifiable but not semicon-Datalog¬",
        format!(
            "stratifiable={}, semicon={}",
            rep2.stratifiable, rep2.semi_connected
        ),
        rep2.stratifiable && !rep2.semi_connected,
    );
    let q2 = p2();
    let t0 = triangle_from(0);
    let t1 = triangle_from(100);
    let p2_breaks = is_domain_disjoint(&t1, &t0) && check_pair(&q2, &t0, &t1).is_some();
    r.claim(
        "P2's query ∉ Mdisjoint",
        "disjoint-triangle witness",
        p2_breaks,
    );
    r
}

/// E13: Lemma 5.2 — con-Datalog¬ queries distribute over components.
pub fn e13_components() -> Report {
    let mut r = Report::new(
        "E13",
        "Lemma 5.2 — con-Datalog¬ distributes over components",
    );
    let con_queries: Vec<(&str, DatalogQuery)> = vec![
        ("TC", calm_queries::tc::tc_datalog()),
        ("P1", p1()),
        (
            "self-reaching",
            DatalogQuery::parse(
                "self-reaching",
                "@output O.\nT(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).\nO(x) :- T(x,x).",
            )
            .unwrap(),
        ),
    ];
    let mut rng = calm_common::rng::Rng::seed_from_u64(13);
    for (name, q) in &con_queries {
        assert!(classify(q.program()).connected, "{name} must be connected");
        let mut ok = true;
        for _ in 0..60 {
            let a = InstanceRng::seeded(rng.gen_u64()).gnp(4, 0.4);
            let b = InstanceRng::seeded(rng.gen_u64())
                .gnp(4, 0.4)
                .map_values(|v| match v {
                    calm_common::value::Value::Int(k) => calm_common::v(k + 100),
                    other => other.clone(),
                });
            if check_distributes_over_components(q, &a.union(&b)).is_some() {
                ok = false;
            }
        }
        r.claim(
            format!("{name} distributes over components (Def. 5)"),
            "60 random multi-component instances",
            ok,
        );
    }
    // Contrast: Q_TC (semicon but NOT con) does not distribute.
    let qtc = calm_queries::qtc::qtc_datalog();
    let a = calm_common::generator::path_from(0, 2);
    let b = calm_common::generator::path_from(100, 2);
    let fails = check_distributes_over_components(&qtc, &a.union(&b)).is_some();
    r.claim(
        "contrast: Q_TC (unconnected last stratum) does NOT distribute",
        "cross-component O-facts",
        fails,
    );
    r
}

/// E14: Theorem 5.3 — semicon-Datalog¬ ⊆ Mdisjoint over a program
/// battery, plus the composition decomposition `P = P_s ∘ P_{≤s−1}`.
pub fn e14_semicon() -> Report {
    let mut r = Report::new("E14", "Theorem 5.3 — semicon-Datalog¬ ⊆ Mdisjoint");
    let battery = [
        ("Q_TC", QTC_SRC),
        ("P1", P1_SRC),
        (
            "sinks",
            "@output O.\nHasOut(x) :- E(x,y).\nAdom(x) :- E(x,y).\nAdom(y) :- E(x,y).\nO(x) :- Adom(x), not HasOut(x).",
        ),
        (
            "unreached-pairs",
            "@output O.\nT(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).\nO(x,y) :- T(x,u), T(y,w), not T(x,y).",
        ),
    ];
    let mut rows = Vec::new();
    for (name, src) in battery {
        let q = DatalogQuery::parse(name, src).unwrap();
        let rep = classify(q.program());
        let clean = Exhaustive::new(ExtensionKind::DomainDisjoint)
            .certify(&q)
            .is_none()
            && Falsifier::new(ExtensionKind::DomainDisjoint)
                .with_trials(120)
                .falsify(&q, |r| InstanceRng::seeded(r.gen_u64()).gnp(4, 0.4))
                .is_none();
        rows.push(vec![
            name.to_string(),
            rep.semi_connected.to_string(),
            if clean {
                "clean".into()
            } else {
                "VIOLATED".into()
            },
        ]);
        r.claim(
            format!("{name} ∈ semicon-Datalog¬ and disjoint-monotone"),
            "exhaustive + randomized",
            rep.semi_connected && clean,
        );
    }
    r.table(markdown_table(
        &["program", "semicon?", "Mdisjoint check"],
        &rows,
    ));

    // Contrast row: P2 is not semicon and violates disjoint monotonicity.
    let q2 = DatalogQuery::parse("P2", P2_SRC).unwrap();
    let rep2 = classify(q2.program());
    let violated = check_pair(&q2, &triangle_from(0), &triangle_from(100)).is_some();
    r.claim(
        "contrast: P2 ∉ semicon and ∉ Mdisjoint",
        "witness found",
        !rep2.semi_connected && violated,
    );

    // Decomposition: evaluating prefix then suffix equals the whole.
    let q = calm_queries::qtc::qtc_datalog();
    let (prefix, suffix) = semicon_split(q.program()).expect("semicon");
    let input = calm_common::generator::path(3);
    let whole = calm_datalog::eval::eval_program(q.program(), &input).unwrap();
    let composed = calm_datalog::eval::eval_program(
        &suffix,
        &calm_datalog::eval::eval_program(&prefix, &input).unwrap(),
    )
    .unwrap();
    r.claim(
        "P = P_s ∘ P_{≤s−1} (the proof's composition)",
        "Q_TC on a path",
        whole.restrict(&q.program().output_schema())
            == composed.restrict(&q.program().output_schema()),
    );
    r
}

/// E15: Section 5.2 — wILOG¬ with value invention.
pub fn e15_wilog() -> Report {
    let mut r = Report::new("E15", "Section 5.2 / Theorem 5.4 — wILOG¬ and weak safety");
    // Weak safety static/dynamic agreement.
    let mut input = calm_common::generator::path(3);
    input.insert(fact("E", [1, 1]));
    let battery = [
        (
            "safe-pairs",
            "@output O.\nPair(*, x, y) :- E(x, y).\nO(x, y) :- Pair(p, x, y).",
            true,
        ),
        ("leaky", "@output R.\nR(*, x) :- E(x, x).", false),
    ];
    for (name, src, safe) in battery {
        let p = IlogProgram::parse(src).unwrap();
        let static_ok = is_weakly_safe(&p) == safe;
        let dynamic_ok = eval_ilog_query(&p, &input, Limits::default()).is_ok() == safe;
        r.claim(
            format!("{name}: weak safety static analysis = runtime behaviour"),
            format!("weakly_safe={safe}"),
            static_ok && dynamic_ok,
        );
    }
    // SP-wILOG ⊆ Mdistinct (Cabibbo's capture, easy direction).
    let sp = IlogProgram::parse(
        "@output O.\nTok(*, x, y) :- E(x, y), not E(y, x).\nO(x, y) :- Tok(t, x, y).",
    )
    .unwrap();
    let rep = classify_ilog(&sp);
    let q = calm_ilog::IlogQuery::new("one-way", sp).unwrap();
    let distinct_clean = Exhaustive::new(ExtensionKind::DomainDistinct)
        .certify(&q)
        .is_none();
    let not_monotone = Exhaustive::new(ExtensionKind::Any).certify(&q).is_some();
    r.claim(
        "SP-wILOG program ∈ Mdistinct \\ M",
        "invention + edb negation",
        rep.is_sp_wilog() && distinct_clean && not_monotone,
    );
    // semicon-wILOG¬ ⊆ Mdisjoint (Theorem 5.4, easy direction).
    let sc = IlogProgram::parse(
        "@output O.\nPair(*, x, y) :- E(x, y).\nLinked(x) :- Pair(p, x, y).\n\
         Adom(x) :- E(x,y).\nAdom(y) :- E(x,y).\nO(x) :- Adom(x), not Linked(x).",
    )
    .unwrap();
    let rep = classify_ilog(&sc);
    let q = calm_ilog::IlogQuery::new("never-source", sc).unwrap();
    let disjoint_clean = Exhaustive::new(ExtensionKind::DomainDisjoint)
        .certify(&q)
        .is_none();
    r.claim(
        "semicon-wILOG¬ program ∈ Mdisjoint",
        "exhaustive disjoint certification",
        rep.is_semicon_wilog() && disjoint_clean,
    );
    // Invention produces one fresh Herbrand value per context.
    let p = IlogProgram::parse("Pair(*, x, y) :- E(x, y).").unwrap();
    let full =
        calm_ilog::eval_ilog(&p, &calm_common::generator::path(5), Limits::default()).unwrap();
    let ids: std::collections::BTreeSet<_> = full.tuples("Pair").map(|t| t[0].clone()).collect();
    r.claim(
        "one invented Skolem value per derivation context",
        format!("{} distinct ids for 5 edges", ids.len()),
        ids.len() == 5 && ids.iter().all(calm_common::value::Value::is_invented),
    );
    r
}
