//! The experiment suite: one function per experiment id (E1–E27, see
//! DESIGN.md's per-experiment index), each returning a [`Report`].

mod engine;
mod faults;
mod fragments;
mod hierarchy;
mod incremental;
mod parallel;
mod policies;
mod process;
mod recovery;
mod strategies;
mod threaded;
mod trace;
mod winmove;
mod wire;

use crate::report::Report;
use calm_obs::Obs;

pub use engine::{e18_engine, e18_engine_obs};
pub use faults::{e20_faults, e20_faults_obs};
pub use fragments::{e12_example51, e13_components, e14_semicon, e15_wilog};
pub use hierarchy::{
    e1_hierarchy, e2_bounded_m, e3_clique_ladder, e4_star_ladder, e5_cross, e6_preservation,
};
pub use incremental::{e27_incremental, e27_incremental_obs};
pub use parallel::{e21_parallel, e21_parallel_obs};
pub use policies::e7_policies;
pub use process::{e25_process, e25_process_obs};
pub use recovery::{e26_recovery, e26_recovery_obs};
pub use strategies::{
    e10_no_all, e11_strategy_costs, e11_strategy_costs_obs, e8_distinct_model, e9_disjoint_model,
};
pub use threaded::{e19_threaded, e19_threaded_obs};
pub use trace::{e24_trace, e24_trace_obs};
pub use winmove::e16_winmove;
pub use wire::{e23_wire, e23_wire_obs};

/// How an experiment is invoked: most ignore observability; the
/// instrumented ones (`E11`, `E18`) report spans and counters so `repro
/// --trace-out` produces machine-readable §4.3 artifacts.
#[derive(Clone, Copy)]
pub enum Runner {
    /// An un-instrumented experiment.
    Plain(fn() -> Report),
    /// An experiment threading an [`Obs`] through its runs.
    Obs(fn(&Obs) -> Report),
}

impl Runner {
    /// Invoke the experiment (the `obs` handle is ignored by
    /// [`Runner::Plain`] experiments).
    pub fn run(&self, obs: &Obs) -> Report {
        match self {
            Runner::Plain(f) => f(),
            Runner::Obs(f) => f(obs),
        }
    }
}

/// An experiment entry: `(id, runner)`.
pub type Experiment = (&'static str, Runner);

/// All experiments in order.
pub fn all() -> Vec<Experiment> {
    vec![
        ("e1", Runner::Plain(e1_hierarchy)),
        ("e2", Runner::Plain(e2_bounded_m)),
        ("e3", Runner::Plain(e3_clique_ladder)),
        ("e4", Runner::Plain(e4_star_ladder)),
        ("e5", Runner::Plain(e5_cross)),
        ("e6", Runner::Plain(e6_preservation)),
        ("e7", Runner::Plain(e7_policies)),
        ("e8", Runner::Plain(e8_distinct_model)),
        ("e9", Runner::Plain(e9_disjoint_model)),
        ("e10", Runner::Plain(e10_no_all)),
        ("e11", Runner::Obs(e11_strategy_costs_obs)),
        ("e12", Runner::Plain(e12_example51)),
        ("e13", Runner::Plain(e13_components)),
        ("e14", Runner::Plain(e14_semicon)),
        ("e15", Runner::Plain(e15_wilog)),
        ("e16", Runner::Plain(e16_winmove)),
        ("e18", Runner::Obs(e18_engine_obs)),
        ("e19", Runner::Obs(e19_threaded_obs)),
        ("e20", Runner::Obs(e20_faults_obs)),
        ("e21", Runner::Obs(e21_parallel_obs)),
        ("e23", Runner::Obs(e23_wire_obs)),
        ("e24", Runner::Obs(e24_trace_obs)),
        ("e25", Runner::Obs(e25_process_obs)),
        ("e26", Runner::Obs(e26_recovery_obs)),
        ("e27", Runner::Obs(e27_incremental_obs)),
    ]
}

/// E17: the Figure-2 summary matrix, assembled from the other reports.
pub fn e17_summary(reports: &[Report]) -> Report {
    let mut r = Report::new(
        "E17",
        "Figure 2 — the full class/fragment/model diagram, machine-checked",
    );
    let lookup = |id: &str| -> bool {
        reports
            .iter()
            .find(|rep| rep.id.eq_ignore_ascii_case(id))
            .map(Report::all_pass)
            .unwrap_or(false)
    };
    r.claim(
        "Datalog(≠) ⊆ M; SP-Datalog ⊆ Mdistinct; semicon-Datalog¬ ⊆ Mdisjoint",
        "fragment membership experiments",
        lookup("E1") && lookup("E14"),
    );
    r.claim(
        "M ⊊ Mdistinct ⊊ Mdisjoint ⊊ C (Figure 1 spine)",
        "separating queries",
        lookup("E1"),
    );
    r.claim(
        "bounded ladders Mᵢ* strict; M = Mᵢ",
        "clique/star/duplicate ladders",
        lookup("E2") && lookup("E3") && lookup("E4") && lookup("E5"),
    );
    r.claim(
        "H ⊊ Hinj = M ⊊ E = Mdistinct (Lemma 3.2)",
        "preservation checkers",
        lookup("E6"),
    );
    r.claim(
        "F0 = M, F1 = Mdistinct, F2 = Mdisjoint (Thms 4.3, 4.4)",
        "strategy × model grid",
        lookup("E8") && lookup("E9"),
    );
    r.claim(
        "A1 = Mdistinct, A2 = Mdisjoint without All (Thm 4.5, Cor 4.6)",
        "no-All reruns identical",
        lookup("E10"),
    );
    r.claim(
        "win-move ∈ Mdisjoint \\ Mdistinct; coordination-free under domain guidance",
        "E16 + E9",
        lookup("E16") && lookup("E9"),
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_are_unique_and_ordered() {
        let ids: Vec<&str> = all().iter().map(|(id, _)| *id).collect();
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(ids, dedup);
        assert_eq!(ids[0], "e1");
        assert_eq!(ids.len(), 25);
    }

    #[test]
    fn summary_reflects_subreport_status() {
        let mut ok = Report::new("E1", "x");
        ok.claim("c", "m", true);
        let s = e17_summary(&[ok]);
        // E1-dependent row passes only if all other dependencies do too —
        // with only E1 present, the Figure-1 spine row passes.
        assert!(s
            .claims
            .iter()
            .any(|(c, _, st)| c.contains("Figure 1") && *st == crate::report::Status::Pass));
    }
}
