//! E19: the threaded executor (`calm-net`) against the sequential
//! simulator — equivalence on the largest E11-class workload and
//! wall-clock scaling over worker counts.
//!
//! The confluence guarantee says the two engines must produce the same
//! `network_output`; this experiment measures what the threaded engine
//! *buys* for that guarantee: time-to-quiescence at 1/2/8 workers
//! versus the sequential round-robin run, per strategy family. The
//! speedup claim is cores-aware — on hosts with fewer than 4 cores a
//! 2× parallel speedup is physically unavailable, so the claim is
//! waived there (the equivalence claims are not).

use std::time::{Duration, Instant};

use crate::report::{markdown_table, Report};
use crate::workloads::scaling_graph;
use calm_common::Instance;
use calm_net::{run_threaded_with, Programs, ThreadedConfig, ThreadedNetwork};
use calm_obs::Obs;
use calm_queries::qtc::qtc_datalog;
use calm_queries::tc::{edges_without_source_loop, tc_datalog};
use calm_transducer::{
    run_with, DisjointStrategy, DistinctStrategy, DistributionPolicy, DomainGuidedPolicy,
    HashPolicy, Metrics, MonotoneBroadcast, Network, Scheduler, SystemConfig, Transducer,
    TransducerNetwork,
};

const NODES: usize = 8;
const WORKERS: [usize; 3] = [1, 2, 8];

/// One strategy family to bench: label, per-worker transducer factory,
/// distribution policy, system configuration.
type Family<'a> = (
    &'a str,
    &'a (dyn Fn() -> Box<dyn Transducer> + Sync),
    &'a dyn DistributionPolicy,
    SystemConfig,
);

/// E19: sequential vs threaded executor.
pub fn e19_threaded() -> Report {
    e19_threaded_obs(&Obs::noop())
}

/// As [`e19_threaded`], threading an [`Obs`] through both engines so
/// `repro --trace-out` captures executor/termination events alongside
/// the usual runtime counters.
pub fn e19_threaded_obs(obs: &Obs) -> Report {
    let mut r = Report::new(
        "E19",
        "sequential vs threaded executor — equivalence and scaling on the §4.3 workload",
    );
    let input = scaling_graph(11, 32, 1.5);
    let mut rows = Vec::new();

    let m_factory =
        || Box::new(MonotoneBroadcast::new(Box::new(tc_datalog()))) as Box<dyn Transducer>;
    let d_factory = || {
        Box::new(DistinctStrategy::new(Box::new(edges_without_source_loop())))
            as Box<dyn Transducer>
    };
    let j_factory =
        || Box::new(DisjointStrategy::new(Box::new(qtc_datalog()))) as Box<dyn Transducer>;
    let hash = HashPolicy::new(Network::of_size(NODES));
    let guided = DomainGuidedPolicy::new(Network::of_size(NODES));

    let families: [Family; 3] = [
        (
            "M/broadcast (TC)",
            &m_factory,
            &hash,
            SystemConfig::ORIGINAL,
        ),
        (
            "Mdistinct/non-facts (SP)",
            &d_factory,
            &hash,
            SystemConfig::POLICY_AWARE,
        ),
        (
            "Mdisjoint/request-OK (Q_TC)",
            &j_factory,
            &guided,
            SystemConfig::POLICY_AWARE,
        ),
    ];

    let mut best_speedup = 0.0f64;
    for (label, factory, policy, config) in families {
        let (speedup8, all_equal) =
            bench_family(&mut rows, label, factory, policy, config, &input, obs);
        best_speedup = best_speedup.max(speedup8);
        r.claim(
            format!("{label}: threaded output equals sequential at workers {{1,2,8}}"),
            "byte-identical network_output, all runs quiescent",
            all_equal,
        );
    }
    r.table(markdown_table(
        &[
            "strategy (query)",
            "engine",
            "wall ms",
            "transitions",
            "msgs sent",
            "speedup vs seq",
            "quiescent",
        ],
        &rows,
    ));
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    r.claim(
        "threaded reaches ≥2× sequential throughput at 8 workers (waived below 4 cores)",
        format!("best speedup {best_speedup:.2}× on a {cores}-core host"),
        best_speedup >= 2.0 || cores < 4,
    );
    r
}

/// Time one strategy family under both engines; returns `(speedup at 8
/// workers, all threaded runs matched the sequential oracle)`.
fn bench_family(
    rows: &mut Vec<Vec<String>>,
    label: &str,
    factory: &(dyn Fn() -> Box<dyn Transducer> + Sync),
    policy: &dyn DistributionPolicy,
    config: SystemConfig,
    input: &Instance,
    obs: &Obs,
) -> (f64, bool) {
    let oracle = factory();
    let tn = TransducerNetwork {
        transducer: oracle.as_ref(),
        policy,
        config,
    };
    let start = Instant::now();
    let seq = run_with(&tn, input, &Scheduler::RoundRobin, 5_000_000, obs);
    let seq_wall = start.elapsed();
    rows.push(row(
        label,
        "sequential",
        seq_wall,
        &seq.metrics,
        None,
        seq.quiescent,
    ));
    let mut all_equal = seq.quiescent;
    let mut speedup8 = 0.0;
    for workers in WORKERS {
        let net = ThreadedNetwork {
            programs: Programs::PerWorker(factory),
            policy,
            config,
        };
        let start = Instant::now();
        let thr = run_threaded_with(&net, input, &ThreadedConfig::new(workers), obs);
        let wall = start.elapsed();
        all_equal &= thr.quiescent && thr.output == seq.output;
        let speedup = seq_wall.as_secs_f64() / wall.as_secs_f64().max(1e-9);
        if workers == WORKERS[WORKERS.len() - 1] {
            speedup8 = speedup;
        }
        rows.push(row(
            label,
            &format!("threaded x{workers}"),
            wall,
            &thr.metrics,
            Some(speedup),
            thr.quiescent,
        ));
    }
    (speedup8, all_equal)
}

fn row(
    label: &str,
    engine: &str,
    wall: Duration,
    metrics: &Metrics,
    speedup: Option<f64>,
    quiescent: bool,
) -> Vec<String> {
    vec![
        label.to_string(),
        engine.to_string(),
        format!("{:.1}", wall.as_secs_f64() * 1e3),
        metrics.transitions.to_string(),
        metrics.messages_sent.to_string(),
        speedup.map_or("-".into(), |s| format!("{s:.2}x")),
        quiescent.to_string(),
    ]
}
