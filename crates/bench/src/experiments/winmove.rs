//! Experiment E16: win-move under the well-founded semantics — the
//! flagship non-monotone coordination-free query (Section 7 and [32]).

use crate::report::{markdown_table, Report};
use crate::workloads::scaling_game;
use calm_common::generator::{chain_game, cycle_game, mv};
use calm_common::query::Query;
use calm_common::{is_domain_distinct, Instance};
use calm_datalog::wellfounded::doubled_program;
use calm_datalog::{parse_program, well_founded_model};
use calm_monotone::{check_pair, Exhaustive, ExtensionKind, Falsifier};
use calm_queries::winmove::{win_move, win_move_native};

/// E16: win-move correctness, the doubled program, and class membership.
pub fn e16_winmove() -> Report {
    let mut r = Report::new(
        "E16",
        "win-move under WFS — Mdisjoint \\ Mdistinct (Section 7, [32])",
    );

    // WFS = backward induction on many random games.
    let wfs = win_move();
    let native = win_move_native();
    let mut agree = true;
    for seed in 0..30u64 {
        let g = scaling_game(seed, 12, 3);
        if wfs.eval(&g) != native.eval(&g) {
            agree = false;
        }
    }
    r.claim(
        "WFS true facts = classical backward induction",
        "30 random games, 12 positions",
        agree,
    );

    // Doubled program equivalence.
    let p = parse_program("win(x) :- move(x,y), not win(y).").unwrap();
    let d = doubled_program(&p);
    let mut doubled_ok = true;
    for seed in 0..15u64 {
        let g = scaling_game(100 + seed, 10, 3);
        let direct = well_founded_model(&p, &g);
        let via = d.eval(&g);
        let out = p.output_schema();
        if direct.true_facts.restrict(&out) != via.true_facts.restrict(&out)
            || direct.undefined().restrict(&out) != via.undefined().restrict(&out)
        {
            doubled_ok = false;
        }
    }
    let connected = d
        .true_side
        .rules()
        .iter()
        .chain(d.possible_side.rules())
        .all(calm_datalog::is_rule_connected);
    r.claim(
        "doubled program ≡ alternating fixpoint, and both sides connected & semi-positive",
        "15 random games",
        doubled_ok
            && connected
            && d.true_side.is_semi_positive()
            && d.possible_side.is_semi_positive(),
    );

    // Class membership.
    let i = Instance::from_facts([mv(1, 2)]);
    let j = Instance::from_facts([mv(2, 3)]);
    let not_distinct = is_domain_distinct(&j, &i)
        && check_pair(&wfs, &i, &j).is_some()
        && Exhaustive::new(ExtensionKind::DomainDistinct)
            .certify(&wfs)
            .is_some();
    r.claim(
        "win-move ∉ Mdistinct",
        "paper-style single-move witness + exhaustive",
        not_distinct,
    );
    let disjoint_clean = Exhaustive::new(ExtensionKind::DomainDisjoint)
        .certify(&wfs)
        .is_none()
        && Falsifier::new(ExtensionKind::DomainDisjoint)
            .with_trials(150)
            .falsify(&wfs, |r| scaling_game(r.gen_u64(), 8, 2))
            .is_none();
    r.claim(
        "win-move ∈ Mdisjoint",
        "exhaustive + randomized certification",
        disjoint_clean,
    );

    // Three-valued structure table.
    let mut rows = Vec::new();
    for (name, game) in [
        ("chain of 6", chain_game(0, 6)),
        ("4-cycle", cycle_game(0, 4)),
        ("3-cycle", cycle_game(0, 3)),
        ("cycle+escape", calm_common::generator::cycle_with_escape(0)),
    ] {
        let m = well_founded_model(&p, &game);
        rows.push(vec![
            name.to_string(),
            m.true_facts.relation_len("win").to_string(),
            m.undefined().relation_len("win").to_string(),
            m.is_total().to_string(),
        ]);
    }
    r.table(markdown_table(
        &["game", "won", "drawn", "total model?"],
        &rows,
    ));
    r
}
