//! E24: the cost of causal tracing — an ablation over the three
//! observability modes of the threaded executor:
//!
//! * **off** — `Obs::noop()`: every trace site is a branch on
//!   `obs.enabled()`, message ids are never minted, payloads carry no
//!   trace extension;
//! * **flight** — the always-on [`FlightRecorder`] ring alone: ids are
//!   minted and every event is rendered into the bounded in-memory
//!   ring, but nothing touches disk on a clean run;
//! * **jsonl** — the full `--trace-out` path: every event rendered and
//!   written through a [`JsonlSink`].
//!
//! Three things must hold: the output is byte-identical to the
//! sequential oracle in every mode (tracing is invisible to the
//! engine); the full-JSONL trace reconstructs a complete, acyclic
//! happens-before graph under 5% message loss; and the flight-recorder
//! mode stays cheap enough to justify "always on".

use std::time::Instant;

use crate::report::{markdown_table, Report};
use crate::workloads::scaling_graph;
use calm_net::{run_threaded_with, FaultPlan, Programs, ThreadedConfig, ThreadedNetwork};
use calm_obs::trace::analyze_lines;
use calm_obs::{FlightRecorder, JsonlSink, Obs, Sink};
use calm_queries::qtc::qtc_datalog;
use calm_queries::tc::tc_datalog;
use calm_transducer::{
    run_with, DisjointStrategy, DistributionPolicy, DomainGuidedPolicy, HashPolicy,
    MonotoneBroadcast, Network, Scheduler, SystemConfig, Transducer, TransducerNetwork,
};
use std::io::Write;
use std::sync::{Arc, Mutex};

const NODES: usize = 8;
const WORKERS: usize = 4;
const SEED: u64 = 24;
const DROP: f64 = 0.05;
const RUNS: usize = 5;

/// An in-memory writer sharing its buffer with the experiment, so the
/// traced run's JSONL can be re-analyzed without touching disk.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("utf-8 trace")
    }

    fn clear(&self) {
        self.0.lock().unwrap().clear();
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

type Family<'a> = (
    &'a str,
    &'a (dyn Fn() -> Box<dyn Transducer> + Sync),
    &'a dyn DistributionPolicy,
    SystemConfig,
);

/// E24: tracing-overhead ablation — off vs flight recorder vs full JSONL.
pub fn e24_trace() -> Report {
    e24_trace_obs(&Obs::noop())
}

/// As [`e24_trace`]; the outer `obs` handle observes only the oracle
/// runs (the measured runs build their own per-mode sinks — measuring a
/// mode through a second, ambient sink would corrupt the ablation).
pub fn e24_trace_obs(obs: &Obs) -> Report {
    let mut r = Report::new(
        "E24",
        "causal tracing overhead — off vs always-on flight recorder vs full JSONL",
    );
    let input = scaling_graph(11, 24, 1.5);

    let m_factory =
        || Box::new(MonotoneBroadcast::new(Box::new(tc_datalog()))) as Box<dyn Transducer>;
    let j_factory =
        || Box::new(DisjointStrategy::new(Box::new(qtc_datalog()))) as Box<dyn Transducer>;
    let hash = HashPolicy::new(Network::of_size(NODES));
    let guided = DomainGuidedPolicy::new(Network::of_size(NODES));
    let families: [Family; 2] = [
        (
            "M/broadcast (TC)",
            &m_factory,
            &hash,
            SystemConfig::ORIGINAL,
        ),
        (
            "Mdisjoint/request-OK (Q_TC)",
            &j_factory,
            &guided,
            SystemConfig::POLICY_AWARE,
        ),
    ];

    let mut rows = Vec::new();
    let mut all_equal = true;
    let mut flight_affordable = true;
    let mut graphs_ok = true;
    let mut clean_flight_silent = true;
    for (label, factory, policy, config) in families {
        let oracle = factory();
        let tn = TransducerNetwork {
            transducer: oracle.as_ref(),
            policy,
            config,
        };
        let seq = run_with(&tn, &input, &Scheduler::RoundRobin, 5_000_000, obs);

        let net = ThreadedNetwork {
            programs: Programs::PerWorker(factory),
            policy,
            config,
        };
        let cfg =
            ThreadedConfig::new(WORKERS).with_faults(FaultPlan::uniform(SEED, DROP, DROP / 2.0));

        // Mode `off`: the baseline.
        let (t_off, out_off) = median_run(&net, &input, &cfg, Obs::noop);
        // Mode `flight`: ids minted, ring filled, no disk on clean runs.
        let dump = std::env::temp_dir().join(format!(
            "calm-e24-flight-{}-{}.jsonl",
            std::process::id(),
            label.len()
        ));
        let _ = std::fs::remove_file(&dump);
        let (t_flight, out_flight) = {
            let dump = dump.clone();
            median_run(&net, &input, &cfg, move || {
                Obs::new(Arc::new(FlightRecorder::new(&dump)))
            })
        };
        // A lossy-but-recovering run is clean: no anomaly, no dump file.
        clean_flight_silent &= !dump.exists();
        let _ = std::fs::remove_file(&dump);
        // Mode `jsonl`: the full event stream, rendered and written.
        let buf = SharedBuf::default();
        let (t_jsonl, out_jsonl) = {
            let buf = buf.clone();
            median_run(&net, &input, &cfg, move || {
                // Each timed run gets a fresh log, so the analysis below
                // sees exactly one run's id space.
                buf.clear();
                Obs::new(Arc::new(JsonlSink::to_writer(Box::new(buf.clone()))) as Arc<dyn Sink>)
            })
        };

        all_equal &= out_off == seq.output && out_flight == seq.output && out_jsonl == seq.output;
        // The last jsonl run's trace must rebuild the full causal graph.
        let analysis = analyze_lines(buf.text().lines());
        graphs_ok &= analysis.invariants_ok() && analysis.sends > 0 && analysis.deliveries > 0;
        flight_affordable &= t_flight <= t_off * 2.0;

        let pct = |t: f64| format!("{:+.1}%", 100.0 * (t / t_off - 1.0));
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", t_off / 1e3),
            format!("{:.1} ({})", t_flight / 1e3, pct(t_flight)),
            format!("{:.1} ({})", t_jsonl / 1e3, pct(t_jsonl)),
            format!(
                "{} sends / {} deliveries / {} retransmits",
                analysis.sends, analysis.deliveries, analysis.retransmits
            ),
        ]);
    }
    r.table(markdown_table(
        &[
            "strategy (query)",
            "off ms",
            "flight ms (overhead)",
            "jsonl ms (overhead)",
            "traced events",
        ],
        &rows,
    ));
    r.claim(
        "tracing is invisible to the engine",
        "every mode reproduces the sequential oracle byte-identically under 5% loss",
        all_equal,
    );
    r.claim(
        "the traced run reconstructs a complete acyclic happens-before graph",
        "analyze_lines: every delivery traced to its send, causal graph acyclic",
        graphs_ok,
    );
    r.claim(
        "the flight recorder is affordable always-on and silent when clean",
        "median wall clock within 2x of untraced; no dump file without an anomaly",
        flight_affordable && clean_flight_silent,
    );
    r
}

/// Median-of-`RUNS` wall time (µs) of a threaded run, rebuilding the
/// observability stack per run via `mk_obs`; returns the last output.
fn median_run(
    net: &ThreadedNetwork<'_>,
    input: &calm_common::instance::Instance,
    cfg: &ThreadedConfig,
    mk_obs: impl Fn() -> Obs,
) -> (f64, calm_common::instance::Instance) {
    let mut times = Vec::with_capacity(RUNS);
    let mut output = None;
    for _ in 0..RUNS {
        let obs = mk_obs();
        let start = Instant::now();
        let r = run_threaded_with(net, input, cfg, &obs);
        times.push(start.elapsed().as_secs_f64() * 1e6);
        obs.finish();
        output = Some(r.output);
    }
    times.sort_by(f64::total_cmp);
    (times[RUNS / 2], output.expect("at least one run"))
}
