//! Experiment E21: the data-parallel semi-naive fixpoint — sequential
//! vs partitioned rule evaluation (`--eval-threads`) on the three
//! headline queries.
//!
//! Two things are on trial:
//! * **Determinism** — at every thread count the derived database and
//!   the per-stratum [`EvalMetrics`] must be *byte-identical* to the
//!   sequential run (the partitioned driver replays the exact
//!   sequential derivation order at the merge). These claims hold on
//!   any host.
//! * **Wall clock** — the parallel driver should actually buy time on
//!   multi-core hosts. Like E19's scaling claim, the speedup claim is
//!   cores-aware: on hosts with fewer than 4 cores a parallel speedup
//!   is physically unavailable and the claim is waived (the
//!   determinism claims are not).
//!
//! [`EvalMetrics`]: calm_common::storage::EvalMetrics

use std::time::Instant;

use crate::report::{markdown_table, Report};
use crate::workloads::{scaling_game, scaling_graph};
use calm_common::query::Query;
use calm_common::storage::SharedSymbols;
use calm_common::Instance;
use calm_datalog::eval::{eval_stratification_opts, Engine};
use calm_datalog::{parse_program, stratify};
use calm_obs::Obs;
use calm_queries::winmove::win_move;

const THREADS: [usize; 3] = [1, 2, 8];

/// E21: sequential vs data-parallel fixpoint evaluation.
pub fn e21_parallel() -> Report {
    e21_parallel_obs(&Obs::noop())
}

/// As [`e21_parallel`], streaming the parallel driver's spans and
/// partition counters to `obs` so `repro --trace-out` captures the
/// `eval.parallel` events.
pub fn e21_parallel_obs(obs: &Obs) -> Report {
    let mut r = Report::new(
        "E21",
        "data-parallel semi-naive fixpoint — determinism and scaling over eval threads",
    );
    let mut rows = Vec::new();
    let mut best_speedup = 0.0f64;
    let mut all_identical = true;

    // TC and Q_TC run through the stratified engine; win-move through
    // the well-founded alternating fixpoint (its inner loops inherit
    // the same partitioned driver).
    let tc = parse_program("@output T.\nT(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).").unwrap();
    let qtc = parse_program(
        "@output O.\nAdom(x) :- E(x,y).\nAdom(y) :- E(x,y).\n\
         T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).\n\
         O(x,y) :- Adom(x), Adom(y), not T(x,y).",
    )
    .unwrap();
    for (label, program, input) in [
        ("TC", &tc, scaling_graph(31, 160, 1.5)),
        ("Q_TC", &qtc, scaling_graph(33, 56, 1.5)),
    ] {
        let strat = stratify(program).unwrap();
        let mut seq: Option<(f64, Instance, Vec<_>)> = None;
        for threads in THREADS {
            let _span = obs.span("bench", || format!("e21:{label} T={threads}"));
            let t0 = Instant::now();
            let (out, stats) = eval_stratification_opts(
                &strat,
                &input,
                Engine::SemiNaive,
                SharedSymbols::new(),
                obs,
                threads,
            );
            let wall = t0.elapsed().as_secs_f64() * 1e3;
            match &seq {
                None => {
                    rows.push(row(label, threads, wall, None, "baseline"));
                    seq = Some((wall, out, stats));
                }
                Some((seq_wall, seq_out, seq_stats)) => {
                    let identical = out == *seq_out && stats == *seq_stats;
                    all_identical &= identical;
                    let speedup = seq_wall / wall.max(1e-9);
                    if threads == THREADS[THREADS.len() - 1] {
                        best_speedup = best_speedup.max(speedup);
                    }
                    rows.push(row(
                        label,
                        threads,
                        wall,
                        Some(speedup),
                        if identical { "identical" } else { "DIVERGED" },
                    ));
                }
            }
        }
    }

    // win-move under the well-founded semantics.
    let game = scaling_game(35, 48, 3);
    let mut seq: Option<(f64, Instance)> = None;
    for threads in THREADS {
        let _span = obs.span("bench", || format!("e21:win-move T={threads}"));
        let q = win_move().with_eval_threads(threads);
        let t0 = Instant::now();
        let out = q.eval(&game);
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        match &seq {
            None => {
                rows.push(row("win-move (WFS)", threads, wall, None, "baseline"));
                seq = Some((wall, out));
            }
            Some((seq_wall, seq_out)) => {
                let identical = out == *seq_out;
                all_identical &= identical;
                let speedup = seq_wall / wall.max(1e-9);
                if threads == THREADS[THREADS.len() - 1] {
                    best_speedup = best_speedup.max(speedup);
                }
                rows.push(row(
                    "win-move (WFS)",
                    threads,
                    wall,
                    Some(speedup),
                    if identical { "identical" } else { "DIVERGED" },
                ));
            }
        }
    }

    r.table(markdown_table(
        &[
            "query",
            "eval threads",
            "wall ms",
            "speedup vs T=1",
            "vs sequential",
        ],
        &rows,
    ));
    r.claim(
        "parallel evaluation is byte-identical to sequential at T ∈ {2,8}",
        "same derived database and per-stratum EvalMetrics on TC, Q_TC and win-move",
        all_identical,
    );
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    r.claim(
        "parallel evaluation reaches ≥1.5× sequential at 8 threads (waived below 4 cores)",
        format!("best speedup {best_speedup:.2}× on a {cores}-core host"),
        best_speedup >= 1.5 || cores < 4,
    );
    r
}

fn row(label: &str, threads: usize, wall: f64, speedup: Option<f64>, status: &str) -> Vec<String> {
    vec![
        label.to_string(),
        threads.to_string(),
        format!("{wall:.1}"),
        speedup.map_or("-".into(), |s| format!("{s:.2}x")),
        status.to_string(),
    ]
}
