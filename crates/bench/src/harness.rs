//! A minimal, dependency-free benchmark harness.
//!
//! Mirrors the slice of the Criterion API the workspace benches use
//! (`Criterion`, `benchmark_group`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`), so benches read idiomatically
//! while building fully offline. Timing is wall-clock with a warm-up
//! phase and per-sample auto-calibrated iteration counts; results print
//! the median, mean, and min over the collected samples.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness handle, passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<Sample>,
}

/// One benchmark's aggregated measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Full benchmark path, `group/function/param`.
    pub name: String,
    /// Median time per iteration.
    pub median: Duration,
    /// Mean time per iteration.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Number of samples collected.
    pub samples: usize,
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// All measurements collected so far.
    pub fn results(&self) -> &[Sample] {
        &self.results
    }

    /// Print a closing one-line-per-benchmark summary (machine-greppable).
    pub fn final_summary(&self) {
        println!("\n== summary ({} benchmarks) ==", self.results.len());
        for s in &self.results {
            println!(
                "{:<50} median {:>12} mean {:>12} min {:>12}",
                s.name,
                fmt_duration(s.median),
                fmt_duration(s.mean),
                fmt_duration(s.min),
            );
        }
    }
}

/// A benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmark a closure over a shared input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.warm_up_time, self.measurement_time, self.sample_size);
        f(&mut b, input);
        self.record(id, b);
    }

    /// Benchmark a closure with no external input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.warm_up_time, self.measurement_time, self.sample_size);
        f(&mut b);
        self.record(id, b);
    }

    fn record(&mut self, id: BenchmarkId, b: Bencher) {
        let sample = b.finish(format!("{}/{}", self.name, id.id));
        println!(
            "{:<50} median {:>12} ({} samples)",
            sample.name,
            fmt_duration(sample.median),
            sample.samples
        );
        self.criterion.results.push(sample);
    }

    /// Close the group (kept for API parity; prints nothing extra).
    pub fn finish(&mut self) {}
}

/// The per-benchmark measurement driver handed to `b.iter(..)` closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    target_samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    fn new(warm_up: Duration, measurement: Duration, target_samples: usize) -> Self {
        Bencher {
            warm_up,
            measurement,
            target_samples,
            times: Vec::new(),
        }
    }

    /// Measure the closure: warm up, auto-calibrate the per-sample
    /// iteration count, then collect timed samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up, also estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters;
        // Aim each sample at ~1/sample_size of the measurement budget.
        let sample_budget = self.measurement / self.target_samples as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1
        } else {
            (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };
        let run_start = Instant::now();
        while self.times.len() < self.target_samples && run_start.elapsed() < self.measurement {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.times.push(t0.elapsed() / iters_per_sample);
        }
        if self.times.is_empty() {
            let t0 = Instant::now();
            black_box(f());
            self.times.push(t0.elapsed());
        }
    }

    fn finish(mut self, name: String) -> Sample {
        self.times.sort_unstable();
        let samples = self.times.len();
        let median = self.times[samples / 2];
        let min = self.times[0];
        let total: Duration = self.times.iter().sum();
        Sample {
            name,
            median,
            mean: total / samples as u32,
            min,
            samples,
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Group bench functions into a single runner, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fun:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $($fun(c);)+
        }
    };
}

/// Entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($group:ident) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default();
            $group(&mut c);
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3)
                .measurement_time(Duration::from_millis(30))
                .warm_up_time(Duration::from_millis(5));
            g.bench_with_input(BenchmarkId::new("f", 1), &7u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.bench_function(BenchmarkId::from_parameter("x"), |b| b.iter(|| 1 + 1));
            g.finish();
        }
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].name, "g/f/1");
        assert!(c.results()[0].samples >= 1);
        assert!(c.results()[0].min <= c.results()[0].median);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
