//! Shared workload generators for experiments and benchmarks.

use calm_common::generator::InstanceRng;
use calm_common::instance::Instance;

/// Random directed graphs of increasing size for scaling experiments:
/// `|V| = n`, `|E| ≈ density · n`.
pub fn scaling_graph(seed: u64, n: usize, density: f64) -> Instance {
    let m = ((n as f64) * density) as usize;
    let max_edges = n * (n - 1);
    InstanceRng::seeded(seed).gnm(n, m.min(max_edges))
}

/// Random move-graphs for win-move scaling.
pub fn scaling_game(seed: u64, n: usize, max_out: usize) -> Instance {
    InstanceRng::seeded(seed).move_graph(n, max_out)
}

/// The structured graph family used by the engine benchmark: chains,
/// cycles, grids.
pub fn structured(kind: &str, n: usize) -> Instance {
    match kind {
        "chain" => calm_common::generator::path(n),
        "cycle" => calm_common::generator::cycle(n),
        "grid" => {
            let side = (n as f64).sqrt().ceil() as usize;
            calm_common::generator::grid(side, side)
        }
        other => panic!("unknown structured workload {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_graph_has_requested_edges() {
        let g = scaling_graph(1, 10, 2.0);
        assert_eq!(g.len(), 20);
    }

    #[test]
    fn structured_kinds() {
        assert_eq!(structured("chain", 5).len(), 5);
        assert_eq!(structured("cycle", 5).len(), 5);
        assert!(!structured("grid", 9).is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown")]
    fn unknown_kind_panics() {
        let _ = structured("torus", 5);
    }
}
