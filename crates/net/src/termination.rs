//! Safra/Dijkstra-style termination detection (the EWD998 token ring).
//!
//! Quiescence of an asynchronous transducer network is a *global*
//! property — no worker can observe it locally, because a message may
//! always be in flight toward it. The classical solution (Dijkstra,
//! Feijen, van Gasteren; Safra's refinement for non-FIFO message
//! counting) circulates a token around a ring of workers:
//!
//! * every worker keeps a **counter** (basic messages sent − received)
//!   and a **color** — it turns *black* when it receives a basic
//!   message, because that receipt may have reactivated it after the
//!   token already passed by;
//! * worker 0 initiates a **probe** when it is passive: a white token
//!   with count 0 sent around the ring `0 → 1 → … → W−1 → 0`;
//! * a worker only forwards the token when it is **passive** (no
//!   undelivered inbox facts, every local node at fixpoint), adding its
//!   counter, OR-ing in its color, and whitening itself;
//! * when the token returns, worker 0 declares termination iff the
//!   token is white, worker 0 itself is white, and the token's count
//!   plus worker 0's counter is zero (no message in flight anywhere).
//!   Otherwise the probe is inconclusive and a fresh one starts.
//!
//! The irony is worth savoring: the paper's hierarchy is about
//! computing *without* coordination, and here is the harness running a
//! textbook coordination protocol. The two live at different levels.
//! The *program* (the transducer strategy) never waits on any other
//! node — its output facts are emitted monotonically, correct under
//! every interleaving, which is exactly what the equivalence tests
//! check. The *harness* coordinates only to answer a meta-question the
//! program never asks: "has the fixpoint been reached, so the process
//! can exit?" — the same role the sequential simulator's
//! quiescence-detection sweep plays, and precisely the `Ω`-style
//! eventual-detection oracle the paper allows outside the model.
//! Detection of termination is not coordination *for output*: remove
//! the ring and every output fact still appears; only the exit does
//! not.

/// The probe token circulating `0 → 1 → … → W−1 → 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Sum of the counters (messages sent − received) of the workers
    /// the token has passed, this probe.
    pub count: i64,
    /// Whether any passed worker was black (received a basic message
    /// since it last forwarded a token).
    pub black: bool,
    /// Total ring hops across all probes — a cost metric, not part of
    /// the algorithm.
    pub passes: u64,
}

impl Token {
    /// A fresh white probe token.
    pub fn probe() -> Token {
        Token {
            count: 0,
            black: false,
            passes: 0,
        }
    }
}
