//! Safra/Dijkstra-style termination detection (the EWD998 token ring).
//!
//! Quiescence of an asynchronous transducer network is a *global*
//! property — no worker can observe it locally, because a message may
//! always be in flight toward it. The classical solution (Dijkstra,
//! Feijen, van Gasteren; Safra's refinement for non-FIFO message
//! counting) circulates a token around a ring of workers:
//!
//! * every worker keeps a **counter** (basic messages sent − received)
//!   and a **color** — it turns *black* when it receives a basic
//!   message, because that receipt may have reactivated it after the
//!   token already passed by;
//! * worker 0 initiates a **probe** when it is passive: a white token
//!   with count 0 sent around the ring `0 → 1 → … → W−1 → 0`;
//! * a worker only forwards the token when it is **passive** (no
//!   undelivered inbox facts, every local node at fixpoint), adding its
//!   counter, OR-ing in its color, and whitening itself;
//! * when the token returns, worker 0 declares termination iff the
//!   token is white, worker 0 itself is white, and the token's count
//!   plus worker 0's counter is zero (no message in flight anywhere).
//!   Otherwise the probe is inconclusive and a fresh one starts.
//!
//! The irony is worth savoring: the paper's hierarchy is about
//! computing *without* coordination, and here is the harness running a
//! textbook coordination protocol. The two live at different levels.
//! The *program* (the transducer strategy) never waits on any other
//! node — its output facts are emitted monotonically, correct under
//! every interleaving, which is exactly what the equivalence tests
//! check. The *harness* coordinates only to answer a meta-question the
//! program never asks: "has the fixpoint been reached, so the process
//! can exit?" — the same role the sequential simulator's
//! quiescence-detection sweep plays, and precisely the `Ω`-style
//! eventual-detection oracle the paper allows outside the model.
//! Detection of termination is not coordination *for output*: remove
//! the ring and every output fact still appears; only the exit does
//! not.
//!
//! ## Crashes and the ring
//!
//! The classical algorithm assumes stable membership: a passive worker
//! stays passive until it *receives a basic message*. Fault injection
//! ([`crate::faults`]) breaks that assumption in two ways, and each
//! needs a rule to keep detection sound:
//!
//! * **Crash rollback re-activates silently.** When a node crashes and
//!   restores an older snapshot, its worker becomes active again — but
//!   no message receipt announced that, so a white token already past
//!   the worker could conclude on stale evidence. The rule: *a crash
//!   blackens its worker*, exactly as a basic-message receipt would.
//!   This matters even for a node with zero outstanding messages — the
//!   rollback itself (re-deriving and re-sending from older state) is
//!   the hidden activity the probe must be told about.
//! * **Reliability obligations are invisible to the counters.** A
//!   dropped wire never decrements any counter, so Safra's `count == 0`
//!   test alone would see a network with unacked sends as quiet. The
//!   rule: a worker with standing obligations — unacked outbox entries,
//!   wires in the delay buffer, nodes inside a recovery window —
//!   *withholds the token* (it is not passive), so retransmission
//!   timers keep firing until the substrate drains or a retry budget
//!   gives up (which forfeits the quiescence claim instead).

/// The probe token circulating `0 → 1 → … → W−1 → 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Sum of the counters (messages sent − received) of the workers
    /// the token has passed, this probe.
    pub count: i64,
    /// Whether any passed worker was black (received a basic message
    /// since it last forwarded a token).
    pub black: bool,
    /// Total ring hops across all probes — a cost metric, not part of
    /// the algorithm.
    pub passes: u64,
    /// Ring epoch the token was minted in. A worker crash can lose a
    /// token written to the dead worker's socket; the coordinator
    /// bumps the epoch on every recovery event (respawn or shard
    /// re-assignment) and broadcasts a reset, after which every worker
    /// drops tokens from older epochs and the initiator mints a fresh
    /// probe. Without the fence, a stale token resurfacing from a
    /// respawned worker's backlog could race a fresh probe and
    /// double-count a round.
    pub epoch: u64,
}

impl Token {
    /// A fresh white probe token for ring epoch `epoch`.
    pub fn probe(epoch: u64) -> Token {
        Token {
            count: 0,
            black: false,
            passes: 0,
            epoch,
        }
    }

    /// A passive worker forwards the token: add its counter, OR in its
    /// color, count the hop. (The worker whitens itself afterwards;
    /// that is its own state, not the token's.)
    pub fn absorb(&mut self, counter: i64, black: bool) {
        self.count += counter;
        self.black |= black;
        self.passes += 1;
    }

    /// Worker 0's verdict when the probe returns: termination iff the
    /// token stayed white, the initiator is white, and the token's
    /// count plus the initiator's counter is zero.
    pub fn concludes(&self, initiator_counter: i64, initiator_black: bool) -> bool {
        !self.black && !initiator_black && self.count + initiator_counter == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// A model worker for driving the ring protocol in isolation: the
    /// executor's Safra state without threads or channels.
    struct Model {
        counter: i64,
        black: bool,
        passive: bool,
    }

    impl Model {
        fn quiet() -> Model {
            Model {
                counter: 0,
                black: false,
                passive: true,
            }
        }

        /// Receive a basic message: blacken, reactivate.
        fn receive(&mut self) {
            self.counter -= 1;
            self.black = true;
            self.passive = false;
        }

        fn send(&mut self) {
            self.counter += 1;
        }

        /// Crash a node owned by this worker. The snapshot rollback may
        /// restart work with no message receipt announcing it — the
        /// worker blackens, exactly as the executor does.
        fn crash(&mut self) {
            self.black = true;
            self.passive = false;
        }

        /// Recovery complete: local fixpoint again.
        fn settle(&mut self) {
            self.passive = true;
        }
    }

    /// Drive one full probe around the ring; returns worker 0's
    /// verdict. Workers that are not passive hold the token until they
    /// are — modeled here by simply failing the probe (`None`).
    fn probe_round(ring: &mut [Model]) -> Option<bool> {
        let mut token = Token::probe(0);
        let initiator_black = ring[0].black;
        ring[0].black = false;
        for w in ring.iter_mut().skip(1) {
            if !w.passive {
                return None; // token withheld: probe never returns
            }
            token.absorb(w.counter, w.black);
            w.black = false;
        }
        Some(token.concludes(ring[0].counter, initiator_black))
    }

    #[test]
    fn quiet_ring_concludes() {
        let mut ring = vec![Model::quiet(), Model::quiet(), Model::quiet()];
        assert_eq!(probe_round(&mut ring), Some(true));
    }

    #[test]
    fn in_flight_message_defers_conclusion() {
        let mut ring = vec![Model::quiet(), Model::quiet(), Model::quiet()];
        ring[1].send(); // counted at the sender, not yet received
        assert_eq!(probe_round(&mut ring), Some(false));
        ring[2].receive(); // arrival blackens the receiver
        ring[2].settle();
        assert_eq!(probe_round(&mut ring), Some(false), "black round is void");
        assert_eq!(probe_round(&mut ring), Some(true), "next round is white");
    }

    /// The satellite case: a node with *zero outstanding messages*
    /// crashes mid-round, after the token already passed its worker.
    /// Without the crash-blackens rule the probe would conclude while
    /// the rolled-back node is about to re-derive and re-send.
    #[test]
    fn crash_with_zero_outstanding_messages_voids_the_round() {
        let mut ring = vec![Model::quiet(), Model::quiet(), Model::quiet()];

        // Mid-round crash at worker 1: token passes worker 1 (white,
        // counter 0), then the crash fires, then the token finishes.
        let mut token = Token::probe(0);
        let initiator_black = ring[0].black;
        ring[0].black = false;
        token.absorb(ring[1].counter, ring[1].black);
        ring[1].black = false;
        ring[1].crash(); // zero outstanding messages — counter stays 0
        token.absorb(ring[2].counter, ring[2].black);
        ring[2].black = false;

        // The token itself is white with count 0: only the crashed
        // worker's *own* blackness can save the round — and it is not
        // consulted again this round. The verdict must therefore be
        // taken as inconclusive by the protocol's other rule: worker 1
        // is not passive, so in the real executor it would have
        // withheld the token. Model both protections:
        assert!(token.concludes(ring[0].counter, initiator_black));
        assert!(!ring[1].passive, "crashed worker must not look passive");
        assert!(ring[1].black, "crash must blacken for the *next* round");

        // Recovery: the node re-derives and re-sends (counter +1), the
        // peer receives. The blackened workers void the next full round
        // even though every counter reconciles; the round after that —
        // all white, counters balanced — concludes.
        ring[1].send();
        ring[1].settle();
        ring[2].receive();
        ring[2].settle();
        assert_eq!(probe_round(&mut ring), Some(false), "crash round is void");
        assert_eq!(probe_round(&mut ring), Some(true), "quiet ring concludes");
    }

    /// Regression for the executor's withhold rule: a probe never
    /// returns past a non-passive worker, so a crashed worker stalls
    /// the ring rather than letting it conclude.
    #[test]
    fn crashed_worker_withholds_the_token() {
        let mut ring = vec![Model::quiet(), Model::quiet(), Model::quiet()];
        ring[2].crash();
        assert_eq!(probe_round(&mut ring), None, "ring stalls, never concludes");
        ring[2].settle();
        assert_eq!(probe_round(&mut ring), Some(false), "black after recovery");
        assert_eq!(probe_round(&mut ring), Some(true));
    }

    /// `absorb` accumulates counters and colors around a longer ring,
    /// and a single black worker anywhere poisons the verdict.
    #[test]
    fn absorb_accumulates_and_black_poisons() {
        for black_at in 1..6 {
            let mut token = Token::probe(0);
            for w in 1..6 {
                token.absorb(0, w == black_at);
            }
            assert_eq!(token.passes, 5);
            assert!(!token.concludes(0, false));
        }
        let mut token = Token::probe(0);
        let deltas = [3i64, -1, 0, -2, 1];
        for d in deltas {
            token.absorb(d, false);
        }
        assert_eq!(token.count, 1, "one message still in flight");
        assert!(!token.concludes(0, false));
        assert!(token.concludes(-1, false), "initiator's receipt balances");
    }

    /// A token minted before a recovery event must not conclude a round
    /// after it: workers compare the token's epoch against their ring
    /// epoch and drop stale tokens, and the initiator re-probes in the
    /// new epoch. This models the filter the executor applies.
    #[test]
    fn stale_epoch_tokens_are_fenced_out() {
        let ring_epoch = 3u64;
        let stale = Token::probe(2);
        let fresh = Token::probe(3);
        assert!(stale.epoch < ring_epoch, "pre-recovery token is stale");
        assert!(fresh.epoch >= ring_epoch, "post-reset probe is accepted");
        // A stale token, even if it *would* conclude, never reaches the
        // verdict — the executor drops it before absorb/concludes.
        assert!(stale.concludes(0, false), "verdict alone is not the fence");
    }

    /// FIFO channels deliver a queued basic message before the token
    /// that followed it — the receipt blackens the worker before it can
    /// forward, which is what makes counting sound without timestamps.
    #[test]
    fn fifo_receipt_blackens_before_forward() {
        let mut w = Model::quiet();
        let mut inbox: VecDeque<&str> = VecDeque::from(["basic", "token"]);
        let mut token = Token::probe(0);
        while let Some(msg) = inbox.pop_front() {
            match msg {
                "basic" => w.receive(),
                _ => {
                    w.settle();
                    token.absorb(w.counter, w.black);
                    w.black = false;
                }
            }
        }
        assert!(token.black, "the receipt voided the round");
        assert_eq!(token.count, -1);
    }
}
