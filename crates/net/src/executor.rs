//! The threaded executor: nodes sharded over worker threads, per-worker
//! `mpsc` channels carrying fact batches, Safra-ring termination.

use crate::faults::{FaultPlan, FaultStats, LinkCounters, NodeSnapshot, ReliableNet, Wire};
use crate::termination::Token;
use crate::transport::proto::{decode_snapshot_blob, encode_snapshot_blob};
use crate::wirefmt;
use calm_common::fact::Fact;
use calm_common::instance::Instance;
use calm_obs::{ArgValue, Obs};
use calm_transducer::engine::NodeEngine;
use calm_transducer::multiset::Multiset;
use calm_transducer::network::NodeId;
use calm_transducer::policy::{distribute, DistributionPolicy};
use calm_transducer::runtime::Metrics;
use calm_transducer::schema::SystemConfig;
use calm_transducer::strategy::class_arg_counts;
use calm_transducer::transducer::Transducer;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::mpsc::{Receiver, RecvError, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a worker with standing reliability obligations (unacked
/// sends, delayed wires, recovering nodes) waits for traffic before
/// advancing its fault clock and firing due timers.
const TIMER_WAIT: Duration = Duration::from_micros(200);

/// Supervised mode: how often an otherwise-idle worker proves liveness
/// to the coordinator. Hung-but-connected workers miss this deadline
/// (several times over, per the coordinator's grace multiple) and get
/// killed and respawned like a dead socket.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(200);

/// How workers obtain their per-node transducer program.
///
/// `Shared` hands every worker the same instance — correct for any
/// `Transducer` (the trait is `Send + Sync`), but a `DatalogTransducer`
/// serializes concurrent steps on its internal scratch-context mutex,
/// so sharing one across workers caps parallel speedup. `PerWorker`
/// gives each worker its own instance from a factory (each with its own
/// scratch database and symbol interner), which is what the CLI and the
/// benches use.
pub enum Programs<'a> {
    /// One transducer instance shared by every worker.
    Shared(&'a dyn Transducer),
    /// A factory invoked once per worker, on that worker's thread.
    PerWorker(&'a (dyn Fn() -> Box<dyn Transducer> + Sync)),
}

enum ProgramHandle<'a> {
    Borrowed(&'a dyn Transducer),
    Owned(Box<dyn Transducer>),
}

impl ProgramHandle<'_> {
    fn as_dyn(&self) -> &dyn Transducer {
        match self {
            ProgramHandle::Borrowed(t) => *t,
            ProgramHandle::Owned(b) => b.as_ref(),
        }
    }
}

impl<'a> Programs<'a> {
    fn instantiate(&self) -> ProgramHandle<'a> {
        match self {
            Programs::Shared(t) => ProgramHandle::Borrowed(*t),
            Programs::PerWorker(f) => ProgramHandle::Owned(f()),
        }
    }
}

/// A transducer network ready to run threaded: the same ingredients as
/// the sequential [`calm_transducer::TransducerNetwork`], with the
/// program supplied per worker.
pub struct ThreadedNetwork<'a> {
    /// The per-node transducer program(s).
    pub programs: Programs<'a>,
    /// The distribution policy (also supplies the network).
    pub policy: &'a dyn DistributionPolicy,
    /// Which system relations nodes see (model variant).
    pub config: SystemConfig,
}

/// Execution parameters of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Worker threads. Clamped to `[1, |N|]` (a worker with no nodes
    /// would only slow the ring down).
    pub workers: usize,
    /// Per-worker step budget: the most node transitions one worker may
    /// execute. A run that exhausts any worker's budget reports
    /// `quiescent: false`.
    pub step_budget: usize,
    /// Fault injection + reliable delivery (see [`crate::faults`]).
    /// `None` — the default — runs the PR 3 perfect-channel path with
    /// zero reliability overhead; `Some(plan)` interposes the fault
    /// gauntlet on every send (local and remote) and rides the
    /// seq/ack/retransmit/snapshot substrate underneath it.
    pub faults: Option<FaultPlan>,
}

impl ThreadedConfig {
    /// `workers` threads with the default step budget (1M per worker).
    pub fn new(workers: usize) -> ThreadedConfig {
        ThreadedConfig {
            workers,
            step_budget: 1_000_000,
            faults: None,
        }
    }

    /// Override the per-worker step budget.
    pub fn with_budget(mut self, step_budget: usize) -> ThreadedConfig {
        self.step_budget = step_budget;
        self
    }

    /// Run under a fault plan (with the reliability substrate enabled).
    pub fn with_faults(mut self, plan: FaultPlan) -> ThreadedConfig {
        self.faults = Some(plan);
        self
    }
}

/// Per-worker accounting, reported at join.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Worker index (ring position).
    pub worker: usize,
    /// The nodes this worker owned.
    pub nodes: Vec<NodeId>,
    /// This worker's share of the run counters. `metrics.transitions`
    /// is the worker's step count; the executor's merged metrics are
    /// the fold of these in worker order.
    pub metrics: Metrics,
    /// Message occurrences enqueued *to* this worker's nodes (from its
    /// own nodes directly, from other workers via channel batches).
    /// Per-worker conservation: `enqueued == metrics.messages_delivered
    /// + buffered` at exit.
    pub enqueued: usize,
    /// Occurrences still undelivered in this worker's inboxes at exit
    /// (zero on a clean quiescent run).
    pub buffered: usize,
    /// Ring hops this worker performed (token forwards + probes).
    pub token_passes: u64,
    /// Whether the worker hit its step budget.
    pub exhausted: bool,
    /// Fault/reliability counters (all zero on a fault-free run).
    pub faults: FaultStats,
    /// This worker's half of the per-link wire accounting: sender-side
    /// counters live at the sending worker, receiver-side at the
    /// receiving worker; the merged map reconciles (see
    /// [`LinkCounters`]).
    pub link_counters: BTreeMap<(usize, usize), LinkCounters>,
    /// Delta-encoded payload bytes this worker put on the wire:
    /// cross-worker `Msg::Batch` payloads on the fault-free path, every
    /// transmitted copy (retransmissions and duplicates included) under
    /// a fault plan. Same-worker deliveries move in memory and cost no
    /// wire bytes.
    pub wire_bytes: u64,
    /// What the same traffic would have cost under the pre-v2 per-fact
    /// payload encoding — the E23 baseline.
    pub wire_bytes_naive: u64,
}

/// The result of a threaded run — same shape as the sequential
/// [`calm_transducer::RunResult`], plus the per-worker breakdown.
#[derive(Debug)]
pub struct ThreadedRunResult {
    /// `out(R)` — the union of output facts across nodes.
    pub output: Instance,
    /// Final per-node states (output ∪ memory facts).
    pub states: BTreeMap<NodeId, Instance>,
    /// Merged run counters (fold of the per-worker metrics, in worker
    /// order — deterministic given the per-worker values).
    pub metrics: Metrics,
    /// Per-worker accounting.
    pub per_worker: Vec<WorkerStats>,
    /// Whether the network reached quiescence (every node at local
    /// fixpoint, nothing in flight, no message abandoned to a retry
    /// budget) within every worker's budget.
    pub quiescent: bool,
    /// Merged fault/reliability counters (all zero without a plan).
    pub faults: FaultStats,
    /// Merged per-link wire accounting. On a quiescent faulty run every
    /// link satisfies `attempts == delivered + suppressed + dropped`
    /// (and `buffered == 0`).
    pub link_counters: BTreeMap<(usize, usize), LinkCounters>,
    /// Merged delta-encoded bytes on the wire (fold of the per-worker
    /// [`WorkerStats::wire_bytes`]).
    pub wire_bytes: u64,
    /// Merged pre-v2 baseline bytes ([`WorkerStats::wire_bytes_naive`]).
    pub wire_bytes_naive: u64,
}

/// Messages on the per-worker channels. `Batch` is the basic message of
/// the termination-detection algorithm (counted in Safra counters);
/// `Token` and `Terminate` are control traffic (not counted).
pub(crate) enum Msg {
    /// Facts for one destination node, batched per sending step.
    Batch {
        /// Destination node, as a global node index.
        node: usize,
        /// One step's send in the delta wire format of
        /// [`crate::wirefmt`] (a multiset: the same fact may be in
        /// flight several times from different senders). Encoded once
        /// per step and shared (`Arc`) across destinations; decoded at
        /// the receiving worker.
        payload: Arc<[u8]>,
    },
    /// A wire of the reliability substrate (fault mode only): sequenced
    /// data or a cumulative ack. Like `Batch`, a basic message of the
    /// termination-detection algorithm (counted in Safra counters).
    Wire(Wire),
    /// The termination probe token.
    Token(Token),
    /// The initiator detected termination: finish up and report.
    Terminate,
    /// Supervised process engine only: the coordinator opened ring
    /// epoch `epoch` (a worker died or recovered). Receivers at an
    /// older epoch zero their Safra counter, blacken, drop any held
    /// token and clear their probe state; tokens minted in older epochs
    /// are fenced out on receipt.
    Reset {
        /// The new ring epoch.
        epoch: u64,
    },
    /// Supervised process engine only: a dead worker's respawn budget
    /// ran out and its shards move to survivors. Carries the new
    /// node-to-worker owner map, the live mask, and — for the adoptive
    /// worker — the coordinator's retained snapshot blobs of the nodes
    /// it inherits.
    Reassign {
        /// New node → worker owner map.
        owner: Vec<usize>,
        /// Which ring positions are still alive.
        live: Vec<bool>,
        /// `(node, version, blob)` for nodes this recipient adopts.
        adopted: Vec<(usize, u64, Vec<u8>)>,
    },
}

/// How a worker reaches its peers. The worker loop is written against
/// this trait so the same Safra/step/fault logic drives both the
/// in-process executor (peers behind `mpsc` channels) and the
/// multi-process engine (peers behind TCP frames relayed by a
/// coordinator — see [`crate::transport`]).
pub(crate) trait Ports {
    /// Send `msg` toward worker `dst`. Transports must preserve
    /// per-(sender, receiver) FIFO order — Safra's message counting
    /// relies on a token never overtaking the basic messages that
    /// precede it on the same path.
    fn send(&self, dst: usize, msg: Msg);
    /// Non-blocking receive.
    fn try_recv(&self) -> Result<Msg, TryRecvError>;
    /// Blocking receive.
    fn recv(&self) -> Result<Msg, RecvError>;
    /// Blocking receive with a timeout (fault mode's timer wait).
    fn recv_timeout(&self, timeout: Duration) -> Result<Msg, RecvTimeoutError>;
    /// Whether the transport is still healthy. A lost link (TCP reset,
    /// peer EOF) makes this `false`: the worker finishes non-clean —
    /// a counted fault, never a panic.
    fn link_ok(&self) -> bool {
        true
    }
    /// Supervised process engine only: ship a versioned snapshot blob
    /// of `node` to the coordinator. MUST be written to the transport
    /// *before* any wire the snapshot released — the coordinator then
    /// retains version `v` before any peer can observe a `v`-released
    /// message, which is what makes restoring the latest retained blob
    /// sound. The in-process transport has no supervisor: no-op.
    fn ship_snapshot(&self, _node: usize, _version: u64, _blob: Vec<u8>) {}
    /// Supervised process engine only: a liveness heartbeat to the
    /// coordinator. No-op in-process.
    fn heartbeat(&self) {}
}

/// The in-process transport: one `mpsc` receiver per worker, senders to
/// every peer. Channels cannot fail short of a peer panic, so a send
/// error is a harness bug and panics loudly.
pub(crate) struct ChannelPorts {
    rx: Receiver<Msg>,
    senders: Vec<Sender<Msg>>,
}

impl Ports for ChannelPorts {
    fn send(&self, dst: usize, msg: Msg) {
        self.senders[dst].send(msg).expect("worker channel closed");
    }

    fn try_recv(&self) -> Result<Msg, TryRecvError> {
        self.rx.try_recv()
    }

    fn recv(&self) -> Result<Msg, RecvError> {
        self.rx.recv()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Msg, RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }
}

/// Run the network to quiescence on `input`. See [`run_threaded_with`].
pub fn run_threaded(
    tn: &ThreadedNetwork<'_>,
    input: &Instance,
    cfg: &ThreadedConfig,
) -> ThreadedRunResult {
    run_threaded_with(tn, input, cfg, &Obs::noop())
}

/// As [`run_threaded`], reporting per-transition events, message-class
/// counters and queue-depth gauges to `obs` with the same categories,
/// names and tracks as the sequential engine, plus `net`-category
/// events for executor start and termination detection.
///
/// Node `i` (in network order) runs on worker `i mod W`. Each worker
/// owns its nodes' [`Instance`] states and inboxes and a local
/// [`Metrics`]; nothing is shared between workers but the channels (and
/// the read-only program/policy/input). Workers step their nodes to
/// local fixpoint, exchange fact batches, and detect global quiescence
/// with the Safra ring in [`crate::termination`]. At join the per-worker
/// metrics are folded in worker order with [`Metrics::merge`] — the
/// merged totals are deterministic given the per-worker values, and the
/// *output* is deterministic for coordination-free programs by the
/// paper's confluence guarantee (the equivalence tests check it against
/// the sequential engine).
pub fn run_threaded_with(
    tn: &ThreadedNetwork<'_>,
    input: &Instance,
    cfg: &ThreadedConfig,
    obs: &Obs,
) -> ThreadedRunResult {
    let node_ids: Vec<NodeId> = tn.policy.network().nodes().cloned().collect();
    let total_nodes = node_ids.len();
    let workers = cfg.workers.clamp(1, total_nodes.max(1));
    let dist = distribute(tn.policy, input);
    let empty = Instance::new();

    obs.event("net", "executor_start", 0, || {
        vec![
            ("workers", ArgValue::U64(workers as u64)),
            ("nodes", ArgValue::U64(total_nodes as u64)),
        ]
    });

    // One channel per worker; every worker holds senders to all.
    let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(workers);
    let mut receivers: Vec<Receiver<Msg>> = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = std::sync::mpsc::channel();
        senders.push(tx);
        receivers.push(rx);
    }

    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (id, rx) in receivers.into_iter().enumerate() {
            let senders = senders.clone();
            let node_ids = &node_ids;
            let dist = &dist;
            let empty = &empty;
            let programs = &tn.programs;
            let policy = tn.policy;
            let sys = tn.config;
            let faults = cfg.faults.as_ref();
            handles.push(scope.spawn(move || {
                let program = programs.instantiate();
                let ports = ChannelPorts { rx, senders };
                run_worker(WorkerCtx {
                    id,
                    workers,
                    node_ids,
                    transducer: program.as_dyn(),
                    policy,
                    sys,
                    dist,
                    empty,
                    ports: &ports,
                    budget: cfg.step_budget,
                    faults,
                    obs,
                    proc: None,
                })
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    // Deterministic join: fold in worker order.
    let probe = tn.programs.instantiate();
    let out_schema = &probe.as_dyn().schema().output;
    let mut metrics = Metrics::default();
    let mut states: BTreeMap<NodeId, Instance> = BTreeMap::new();
    let mut per_worker = Vec::with_capacity(workers);
    let mut quiescent = true;
    let mut token_passes = 0u64;
    let mut faults = FaultStats::default();
    let mut link_counters: BTreeMap<(usize, usize), LinkCounters> = BTreeMap::new();
    let mut wire_bytes = 0u64;
    let mut wire_bytes_naive = 0u64;
    for outcome in outcomes {
        metrics.merge(&outcome.stats.metrics);
        quiescent &= outcome.clean;
        token_passes += outcome.stats.token_passes;
        faults.merge(&outcome.stats.faults);
        wire_bytes += outcome.stats.wire_bytes;
        wire_bytes_naive += outcome.stats.wire_bytes_naive;
        for (link, counters) in &outcome.stats.link_counters {
            link_counters.entry(*link).or_default().merge(counters);
        }
        for (node, state) in outcome.states {
            states.insert(node, state);
        }
        per_worker.push(outcome.stats);
    }
    let mut output = Instance::new();
    for state in states.values() {
        output.extend(state.restrict(out_schema).facts());
    }

    obs.event("net", "termination", 0, || {
        vec![
            ("quiescent", ArgValue::Bool(quiescent)),
            ("token_passes", ArgValue::U64(token_passes)),
            ("workers", ArgValue::U64(workers as u64)),
        ]
    });
    if cfg.faults.is_some() && obs.enabled() {
        for (name, value) in faults.as_pairs() {
            obs.counter("net", &format!("faults.{name}"), value);
        }
        obs.event("net", "fault_summary", 0, || {
            vec![
                ("attempts", ArgValue::U64(faults.attempts)),
                ("retransmissions", ArgValue::U64(faults.retransmissions)),
                (
                    "duplicates_suppressed",
                    ArgValue::U64(faults.duplicates_suppressed),
                ),
                ("dropped", ArgValue::U64(faults.dropped)),
                ("crashes", ArgValue::U64(faults.crashes)),
                ("snapshots", ArgValue::U64(faults.snapshots)),
                ("retry_exhausted", ArgValue::U64(faults.retry_exhausted)),
            ]
        });
    }
    if obs.enabled() {
        obs.counter("net", "wire.bytes", wire_bytes);
        obs.counter("net", "wire.bytes_naive", wire_bytes_naive);
        obs.event("runtime", "run_summary", 0, || {
            vec![
                ("quiescent", ArgValue::Bool(quiescent)),
                ("transitions", ArgValue::U64(metrics.transitions as u64)),
                ("heartbeats", ArgValue::U64(metrics.heartbeats as u64)),
                ("messages_sent", ArgValue::U64(metrics.messages_sent as u64)),
                (
                    "messages_delivered",
                    ArgValue::U64(metrics.messages_delivered as u64),
                ),
                (
                    "max_queue_depth",
                    ArgValue::U64(metrics.max_queue_depth() as u64),
                ),
            ]
        });
    }

    ThreadedRunResult {
        output,
        states,
        metrics,
        per_worker,
        quiescent,
        faults,
        link_counters,
        wire_bytes,
        wire_bytes_naive,
    }
}

/// Everything one worker needs to run: its ring position, its share of
/// the network, the program, and its transport. Built by
/// [`run_threaded_with`] (channel ports) and by the process engine's
/// remote worker ([`crate::transport::worker`], socket ports).
pub(crate) struct WorkerCtx<'a> {
    pub(crate) id: usize,
    pub(crate) workers: usize,
    pub(crate) node_ids: &'a [NodeId],
    pub(crate) transducer: &'a dyn Transducer,
    pub(crate) policy: &'a dyn DistributionPolicy,
    pub(crate) sys: SystemConfig,
    pub(crate) dist: &'a BTreeMap<NodeId, Instance>,
    pub(crate) empty: &'a Instance,
    pub(crate) ports: &'a dyn Ports,
    pub(crate) budget: usize,
    pub(crate) faults: Option<&'a FaultPlan>,
    pub(crate) obs: &'a Obs,
    /// Process-engine context: `Some` only under the socket transport.
    /// `None` (threaded engine) disables pkills, supervision, epochs
    /// and ownership overrides — the PR 3/4 behavior, unchanged.
    pub(crate) proc: Option<ProcCtx>,
}

/// What the process engine's worker knows beyond the threaded engine:
/// its incarnation, the ring epoch it starts in, whether a supervisor
/// retains its snapshots, and any ownership/restore state handed back
/// in a recovery `Assign`.
pub(crate) struct ProcCtx {
    /// 0 for a worker's first process, +1 per respawn. Selects which
    /// `pkill` entries this incarnation still honors.
    pub(crate) incarnation: u64,
    /// Ring epoch at Assign time (0 on a fresh run).
    pub(crate) epoch: u64,
    /// Whether the coordinator supervises (retains snapshots, expects
    /// heartbeats, respawns). `false` keeps the PR 8 abort semantics.
    pub(crate) supervised: bool,
    /// Node → worker owner map override (`None`: `g % workers`).
    pub(crate) owner: Option<Vec<usize>>,
    /// Live mask over ring positions (empty: all live).
    pub(crate) live: Vec<bool>,
    /// Decoded restore state handed back on respawn:
    /// `(node, version, snapshot, transitions, trace_next_seq)`.
    pub(crate) restore: Vec<(usize, u64, NodeSnapshot, u64, u64)>,
}

pub(crate) struct WorkerOutcome {
    pub(crate) states: Vec<(NodeId, Instance)>,
    pub(crate) stats: WorkerStats,
    /// No pending inbox facts and every node at local fixpoint at exit.
    pub(crate) clean: bool,
    /// A `pkill` fired: the caller must die abruptly — no `Final`
    /// frame, no ack flush, a nonzero exit.
    pub(crate) killed: bool,
}

/// One node's worker-local slot: its state, inbox, and send-dedup set.
struct Slot {
    global: usize,
    state: Instance,
    /// The node's inbox — `b(x)` in the formal model, fed by channel
    /// batches instead of a global buffer map.
    pending: Multiset<Fact>,
    /// Every message fact this node ever sent (see
    /// [`NodeEngine::apply`]'s `sent_filter`).
    ever_sent: BTreeSet<Fact>,
    /// Needs another step: never stepped, or the last step delivered
    /// facts, changed state, or sent messages.
    dirty: bool,
    /// Monotone transition count (fault mode: does *not* roll back with
    /// the state, so each crash point fires at most once).
    transitions: usize,
    /// Transitions since the last snapshot (fault mode).
    since_snapshot: usize,
    /// Last crash-recovery checkpoint (fault mode only; `None` on the
    /// fault-free fast path).
    snap: Option<NodeSnapshot>,
    /// Version of `snap`, monotone per node *across incarnations*
    /// (restore hands the retained version back, and the respawned
    /// worker resumes numbering above it), so the coordinator's
    /// keep-the-latest rule is a simple max.
    snap_version: u64,
    /// Next message id this node mints (tracing only). Like
    /// `transitions`, monotone across crash rollbacks: a re-derived
    /// send after a restore is a *new* send event with a fresh id.
    next_seq: u64,
    /// Id of the last message delivered into this node's inbox — the
    /// causal parent of its next send (tracing only). `None` until the
    /// first traced delivery, so sends triggered by the input
    /// distribution alone are causal roots.
    last_arrival: Option<(u64, u64)>,
}

/// Mint a message id for one step's send, emit the `trace/send` event
/// (id, causal parent, fan-out, fact count, per-class counts), and
/// return the context to stamp into the wire payloads. `None` — and no
/// event, and untouched wire bytes — when tracing is off.
fn mint_trace(
    obs: &Obs,
    slot: &mut Slot,
    total_nodes: usize,
    facts: &Multiset<Fact>,
) -> Option<wirefmt::TraceCtx> {
    if !obs.enabled() {
        return None;
    }
    let origin = slot.global as u64;
    let seq = slot.next_seq;
    slot.next_seq += 1;
    let cause = slot.last_arrival;
    obs.event("trace", "send", slot.global as u32 + 1, || {
        let mut args = vec![
            ("origin", ArgValue::U64(origin)),
            ("seq", ArgValue::U64(seq)),
            ("fanout", ArgValue::U64(total_nodes as u64 - 1)),
            ("facts", ArgValue::U64(facts.len() as u64)),
        ];
        if let Some((co, cs)) = cause {
            args.push(("cause_origin", ArgValue::U64(co)));
            args.push(("cause_seq", ArgValue::U64(cs)));
        }
        for (name, n) in class_arg_counts(facts) {
            args.push((name, ArgValue::U64(n)));
        }
        args
    });
    Some(wirefmt::TraceCtx {
        origin_node: origin,
        origin_seq: seq,
        cause,
    })
}

/// Take a crash-recovery snapshot of one node: capture state, inbox,
/// send-dedup set and link state atomically. Cumulative acks for any
/// receive-cursor advance are pushed into `out` (to be pumped by the
/// caller) — the ack-on-snapshot discipline that makes rollback sound.
fn take_snapshot(slot: &mut Slot, rnet: &mut ReliableNet<'_>, out: &mut Vec<Wire>) {
    let links = rnet.snapshot(slot.global, out);
    slot.snap = Some(NodeSnapshot {
        state: slot.state.clone(),
        pending: slot.pending.clone(),
        ever_sent: slot.ever_sent.clone(),
        links,
    });
    slot.since_snapshot = 0;
}

/// Route wires until none remain: local arrivals run through the
/// substrate's receive path (which may emit re-ack wires, queued back
/// here); remote wires go onto the owning worker's channel as
/// [`Msg::Wire`] — counted in the Safra counter like any basic message,
/// unless `count` is off (supervised mode, where ring epochs reset the
/// counters asymmetrically and passivity is carried by the substrate's
/// obligations instead — see `run_worker`).
#[allow(clippy::too_many_arguments)]
fn pump_wires(
    start: Vec<Wire>,
    rnet: &mut ReliableNet<'_>,
    id: usize,
    owner: &[usize],
    ports: &dyn Ports,
    counter: &mut i64,
    count: bool,
    deliver: &mut dyn FnMut(usize, Multiset<Fact>, Option<(u64, u64)>),
) {
    let mut queue: VecDeque<Wire> = start.into();
    while let Some(wire) = queue.pop_front() {
        let dst = wire.dst();
        if owner[dst] == id {
            let mut replies = Vec::new();
            let accepted = rnet.receive(wire, &mut replies);
            queue.extend(replies);
            if let Some((node, facts, mid)) = accepted {
                deliver(node, facts, mid);
            }
        } else {
            if count {
                *counter += 1;
            }
            ports.send(owner[dst], Msg::Wire(wire));
        }
    }
}

/// Supervised mode: encode and ship `slot`'s current snapshot to the
/// coordinator, *before* the caller pumps any wire the snapshot
/// released (same transport, same writer — the frame order is the
/// output-commit guarantee).
fn ship_snapshot(slot: &Slot, rnet: &mut ReliableNet<'_>, ports: &dyn Ports) {
    let snap = slot.snap.as_ref().expect("shipped snapshot exists");
    let blob = encode_snapshot_blob(snap, slot.transitions as u64, slot.next_seq);
    rnet.stats.snapshot_bytes += blob.len() as u64;
    ports.ship_snapshot(slot.global, slot.snap_version, blob);
}

/// The next live ring position after `id` (wrapping). With every
/// position live this is `(id + 1) % W` — the classical ring.
fn next_live(live: &[bool], id: usize) -> usize {
    let w = live.len();
    (1..w)
        .map(|d| (id + d) % w)
        .find(|&p| live[p])
        .unwrap_or(id)
}

/// Everything `apply_reassign` needs to mint engines and slots for
/// adopted nodes — the same read-only ingredients `run_worker` builds
/// its own from.
struct NodeFactory<'a> {
    node_ids: &'a [NodeId],
    transducer: &'a dyn Transducer,
    policy: &'a dyn DistributionPolicy,
    sys: SystemConfig,
    dist: &'a BTreeMap<NodeId, Instance>,
    empty: &'a Instance,
}

/// Apply a `Msg::Reassign`: install the new owner map and live mask,
/// and adopt every node newly owned by this worker — restoring it from
/// the coordinator's retained snapshot blob when one was shipped,
/// starting it fresh from the input distribution otherwise (a node
/// whose worker died before its first snapshot never released any
/// output, so a fresh start is exactly its committed history).
#[allow(clippy::too_many_arguments)]
fn apply_reassign<'a>(
    id: usize,
    new_owner: Vec<usize>,
    new_live: Vec<bool>,
    adopted: Vec<(usize, u64, Vec<u8>)>,
    owner: &mut Vec<usize>,
    live: &mut Vec<bool>,
    local_index: &mut [Option<usize>],
    engines: &mut Vec<NodeEngine<'a>>,
    slots: &mut Vec<Slot>,
    mut rnet: Option<&mut ReliableNet<'_>>,
    fab: &NodeFactory<'a>,
    ports: &dyn Ports,
    supervised: bool,
    obs: &Obs,
) {
    *owner = new_owner;
    *live = new_live;
    let blobs: BTreeMap<usize, (u64, Vec<u8>)> =
        adopted.into_iter().map(|(g, v, b)| (g, (v, b))).collect();
    for g in 0..owner.len().min(local_index.len()) {
        if owner[g] != id || local_index[g].is_some() {
            continue;
        }
        let node = fab.node_ids[g].clone();
        let input = fab.dist.get(&node).unwrap_or(fab.empty);
        engines.push(NodeEngine::new(
            fab.transducer,
            fab.policy,
            fab.sys,
            node,
            input,
        ));
        let mut slot = Slot {
            global: g,
            state: Instance::new(),
            pending: Multiset::new(),
            ever_sent: BTreeSet::new(),
            dirty: true,
            transitions: 0,
            since_snapshot: 0,
            snap: None,
            snap_version: 0,
            next_seq: 0,
            last_arrival: None,
        };
        let mut restored = false;
        if let Some(rnet) = rnet.as_mut() {
            rnet.adopt(g);
            if let Some((version, blob)) = blobs.get(&g) {
                match decode_snapshot_blob(blob) {
                    Ok((snap, transitions, next_seq)) => {
                        slot.state = snap.state.clone();
                        slot.pending = snap.pending.clone();
                        slot.ever_sent = snap.ever_sent.clone();
                        slot.transitions = transitions as usize;
                        slot.next_seq = next_seq;
                        slot.snap_version = *version;
                        rnet.restore(g, snap.links.clone());
                        slot.snap = Some(snap);
                        restored = true;
                    }
                    Err(_) => rnet.stats.decode_failures += 1,
                }
            }
            if slot.snap.is_none() {
                // Never snapshotted before its worker died: nothing was
                // ever committed to the wire, so its fresh start is its
                // committed history. Checkpoint it (crash points need a
                // restore target) and publish v0 to the supervisor.
                let mut none = Vec::new();
                take_snapshot(&mut slot, rnet, &mut none);
                debug_assert!(none.is_empty(), "fresh links cannot emit acks");
                if supervised {
                    ship_snapshot(&slot, rnet, ports);
                }
            }
        }
        if obs.enabled() {
            let version = slot.snap_version;
            obs.event("net", "adopt", g as u32 + 1, || {
                vec![
                    ("node", ArgValue::U64(g as u64)),
                    ("worker", ArgValue::U64(id as u64)),
                    ("version", ArgValue::U64(version)),
                    ("restored", ArgValue::Bool(restored)),
                ]
            });
        }
        local_index[g] = Some(slots.len());
        slots.push(slot);
    }
}

pub(crate) fn run_worker(ctx: WorkerCtx<'_>) -> WorkerOutcome {
    let WorkerCtx {
        id,
        workers,
        node_ids,
        transducer,
        policy,
        sys,
        dist,
        empty,
        ports,
        budget,
        faults,
        obs,
        proc,
    } = ctx;
    let total_nodes = node_ids.len();
    // Process-engine context; the threaded engine runs the defaults.
    let (supervised, incarnation, mut ring_epoch, owner_override, live_init, restore) = match proc {
        Some(p) => (
            p.supervised,
            p.incarnation,
            p.epoch,
            p.owner,
            p.live,
            p.restore,
        ),
        None => (false, 0, 0, None, Vec::new(), Vec::new()),
    };
    // Supervised mode does not count basic messages in the Safra
    // counters: a ring reset (epoch bump on worker death/recovery)
    // zeroes the sender's count while the receipt lands after the
    // reset, so counting would skew permanently negative and the ring
    // could never conclude. Soundness is carried by the substrate
    // instead — supervision forces a fault plan, so every data message
    // rides `Msg::Wire` and stays a sender obligation until the
    // receiver's snapshot acks it; a worker with obligations withholds
    // the token. Epochs still fence *tokens*: one written to a dead
    // worker's socket must not resurface and race a fresh probe.
    let count_msgs = !supervised;
    // Node -> owning worker. `g % W` until a `Reassign` overrides it
    // (shard adoption after a respawn budget runs out).
    let mut owner: Vec<usize> = match owner_override {
        Some(o) if o.len() == total_nodes => o,
        _ => (0..total_nodes).map(|g| g % workers).collect(),
    };
    // Live ring positions; dead positions are skipped when forwarding
    // the token and never sent Terminate.
    let mut live: Vec<bool> = if live_init.len() == workers {
        live_init
    } else {
        vec![true; workers]
    };
    let locals: Vec<usize> = (0..total_nodes).filter(|&g| owner[g] == id).collect();
    let mut local_index: Vec<Option<usize>> = vec![None; total_nodes];
    for (l, &g) in locals.iter().enumerate() {
        local_index[g] = Some(l);
    }
    let mut engines: Vec<NodeEngine<'_>> = locals
        .iter()
        .map(|&g| {
            let node = node_ids[g].clone();
            let input = dist.get(&node).unwrap_or(empty);
            NodeEngine::new(transducer, policy, sys, node, input)
        })
        .collect();
    let mut slots: Vec<Slot> = locals
        .iter()
        .map(|&g| Slot {
            global: g,
            state: Instance::new(),
            pending: Multiset::new(),
            ever_sent: BTreeSet::new(),
            dirty: true,
            transitions: 0,
            since_snapshot: 0,
            snap: None,
            snap_version: 0,
            next_seq: 0,
            last_arrival: None,
        })
        .collect();
    let fab = NodeFactory {
        node_ids,
        transducer,
        policy,
        sys,
        dist,
        empty,
    };

    // Fault mode: the reliability substrate for this worker's nodes,
    // plus an initial (empty) snapshot per node so the first crash
    // point always has a checkpoint to restore. On a respawn the nodes
    // handed back in the Assign restore their retained snapshot instead
    // — state, inbox, dedup sets, link floors — and `restore` re-arms
    // every unacked outbox entry for replay.
    let mut rnet: Option<ReliableNet<'_>> = faults.map(|plan| ReliableNet::new(plan, &locals, obs));
    if let Some(rnet) = rnet.as_mut() {
        for (g, version, snap, transitions, next_seq) in restore {
            let Some(l) = local_index.get(g).copied().flatten() else {
                continue;
            };
            let slot = &mut slots[l];
            slot.state = snap.state.clone();
            slot.pending = snap.pending.clone();
            slot.ever_sent = snap.ever_sent.clone();
            slot.transitions = transitions as usize;
            slot.next_seq = next_seq;
            slot.snap_version = version;
            slot.dirty = true;
            rnet.restore(g, snap.links.clone());
            slot.snap = Some(snap);
            if obs.enabled() {
                obs.event("net", "restore", g as u32 + 1, || {
                    vec![
                        ("node", ArgValue::U64(g as u64)),
                        ("worker", ArgValue::U64(id as u64)),
                        ("incarnation", ArgValue::U64(incarnation)),
                        ("version", ArgValue::U64(version)),
                    ]
                });
            }
        }
        let mut none = Vec::new();
        for slot in slots.iter_mut() {
            if slot.snap.is_none() {
                take_snapshot(slot, rnet, &mut none);
                if supervised {
                    // Publish v0 before any traffic so the supervisor
                    // always holds a restore point for this node.
                    ship_snapshot(slot, rnet, ports);
                }
            }
        }
        debug_assert!(none.is_empty(), "empty links cannot emit acks");
    }
    let snapshot_every = faults.map_or(usize::MAX, |plan| plan.snapshot_every);

    let mut metrics = Metrics::default();
    let mut stats = WorkerStats {
        worker: id,
        nodes: locals.iter().map(|&g| node_ids[g].clone()).collect(),
        ..WorkerStats::default()
    };
    let mut steps_left = budget;
    // Safra state.
    let mut counter: i64 = 0; // channel batches sent - received
    let mut black = false;
    let mut held_token: Option<Token> = None;
    let mut probe_outstanding = false;
    let mut terminate = false;
    // Deterministic process-kill plan: the step counts (in this
    // worker's own numbering, per incarnation) at which this process
    // dies in place of stepping. Only the first entry can fire — the
    // process is gone afterwards; later entries belong to later
    // incarnations.
    let my_kills: Vec<u64> = faults.map_or_else(Vec::new, |p| p.pkill_steps(id, incarnation));
    let mut steps_done: u64 = 0;
    let mut killed = false;
    let mut last_beat = Instant::now();

    // Enqueue `facts` into local node `g`'s inbox, with high-water and
    // gauge bookkeeping (mirrors the sequential engine's per-recipient
    // accounting). `mid` is the causal message id of the delivery (set
    // iff the batch was traced): it becomes the recipient's causal
    // parent and is echoed in the `trace/deliver` event.
    let enqueue = |slots: &mut Vec<Slot>,
                   metrics: &mut Metrics,
                   stats: &mut WorkerStats,
                   local_index: &[Option<usize>],
                   g: usize,
                   facts: Multiset<Fact>,
                   mid: Option<(u64, u64)>| {
        let l = local_index[g].expect("fact routed to non-local node");
        let n = facts.len();
        if n == 0 {
            return;
        }
        stats.enqueued += n;
        let slot = &mut slots[l];
        slot.pending.extend_from(facts);
        slot.dirty = true;
        if mid.is_some() {
            slot.last_arrival = mid;
        }
        let depth = slot.pending.len();
        let hw = metrics
            .buffered_high_water
            .entry(node_ids[g].clone())
            .or_insert(0);
        if depth > *hw {
            *hw = depth;
        }
        if obs.enabled() {
            if let Some((origin, seq)) = mid {
                obs.event("trace", "deliver", g as u32 + 1, || {
                    vec![
                        ("origin", ArgValue::U64(origin)),
                        ("seq", ArgValue::U64(seq)),
                        ("dst", ArgValue::U64(g as u64)),
                        ("facts", ArgValue::U64(n as u64)),
                    ]
                });
            }
            obs.gauge("runtime", "queue_depth", g as u32 + 1, depth as u64);
        }
    };

    loop {
        // Supervised: prove liveness on a clock, not on progress — a
        // busy loop that never idles must still beat.
        if supervised && last_beat.elapsed() >= HEARTBEAT_EVERY {
            ports.heartbeat();
            last_beat = Instant::now();
        }
        // 1. Drain the channel without blocking.
        loop {
            match ports.try_recv() {
                Ok(Msg::Batch { node, payload }) => {
                    if count_msgs {
                        counter -= 1;
                    }
                    black = true;
                    let (facts, ctx) =
                        wirefmt::decode_traced(&payload).expect("channel batch decodes");
                    let mid = ctx.map(|c| c.id());
                    enqueue(
                        &mut slots,
                        &mut metrics,
                        &mut stats,
                        &local_index,
                        node,
                        facts,
                        mid,
                    );
                }
                Ok(Msg::Wire(wire)) => {
                    if count_msgs {
                        counter -= 1;
                    }
                    black = true;
                    let rnet = rnet.as_mut().expect("wire received without a fault plan");
                    let mut deliver = |g: usize, facts: Multiset<Fact>, mid: Option<(u64, u64)>| {
                        enqueue(
                            &mut slots,
                            &mut metrics,
                            &mut stats,
                            &local_index,
                            g,
                            facts,
                            mid,
                        )
                    };
                    pump_wires(
                        vec![wire],
                        rnet,
                        id,
                        &owner,
                        ports,
                        &mut counter,
                        count_msgs,
                        &mut deliver,
                    );
                }
                Ok(Msg::Token(t)) => {
                    if t.epoch == ring_epoch {
                        held_token = Some(t);
                    }
                }
                Ok(Msg::Terminate) => terminate = true,
                Ok(Msg::Reset { epoch }) => {
                    if epoch > ring_epoch {
                        ring_epoch = epoch;
                        counter = 0;
                        black = true;
                        held_token = None;
                        probe_outstanding = false;
                    }
                }
                Ok(Msg::Reassign {
                    owner: new_owner,
                    live: new_live,
                    adopted,
                }) => {
                    black = true;
                    apply_reassign(
                        id,
                        new_owner,
                        new_live,
                        adopted,
                        &mut owner,
                        &mut live,
                        &mut local_index,
                        &mut engines,
                        &mut slots,
                        rnet.as_mut(),
                        &fab,
                        ports,
                        supervised,
                        obs,
                    );
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break,
            }
        }
        if terminate {
            break;
        }

        // 1b. Fault mode: advance the logical clock — release due
        // delayed wires and fire due retransmissions.
        if let Some(rnet) = rnet.as_mut() {
            let mut wires = Vec::new();
            rnet.advance(&mut wires);
            if !wires.is_empty() {
                let mut deliver = |g: usize, facts: Multiset<Fact>, mid: Option<(u64, u64)>| {
                    enqueue(
                        &mut slots,
                        &mut metrics,
                        &mut stats,
                        &local_index,
                        g,
                        facts,
                        mid,
                    )
                };
                pump_wires(
                    wires,
                    rnet,
                    id,
                    &owner,
                    ports,
                    &mut counter,
                    count_msgs,
                    &mut deliver,
                );
            }
        }

        // 2. Local work: step every node that has inbox facts or is not
        // yet at its local fixpoint.
        let has_work = slots.iter().any(|s| s.dirty || !s.pending.is_empty());
        if has_work && steps_left > 0 {
            for l in 0..slots.len() {
                if !slots[l].dirty && slots[l].pending.is_empty() {
                    continue;
                }
                if rnet.as_ref().is_some_and(|r| r.node_down(slots[l].global)) {
                    continue; // crashed: no steps until the recovery window closes
                }
                if steps_left == 0 {
                    break;
                }
                steps_left -= 1;
                steps_done += 1;
                if my_kills.first().is_some_and(|&s| steps_done >= s) {
                    // `pkill(worker=K@step=S)`: this incarnation dies
                    // in place of its S-th step — nothing from the
                    // aborted step is derived, staged, or sent. The
                    // event triggers a flight dump so even the killed
                    // incarnation leaves a post-mortem behind.
                    obs.event("net", "worker_killed", id as u32 + 1, || {
                        vec![
                            ("worker", ArgValue::U64(id as u64)),
                            ("incarnation", ArgValue::U64(incarnation)),
                            ("step", ArgValue::U64(steps_done)),
                        ]
                    });
                    killed = true;
                    break;
                }
                // Delivery half: drain the inbox (m = b(x), the
                // deliver-everything choice; asynchrony comes from the
                // thread interleaving instead of submultiset sampling).
                let mut delivered_n = 0usize;
                let delivered: Vec<Fact> = slots[l]
                    .pending
                    .drain_all()
                    .map(|(f, c)| {
                        delivered_n += c;
                        f
                    })
                    .collect();
                metrics.messages_delivered += delivered_n;
                if delivered_n == 0 {
                    metrics.heartbeats += 1;
                }
                let outcome = {
                    let slot = &mut slots[l];
                    engines[l].apply(
                        &mut slot.state,
                        &delivered,
                        delivered_n,
                        Some(&mut slot.ever_sent),
                        &mut metrics,
                        obs,
                    )
                };
                slots[l].dirty =
                    outcome.state_changed || !outcome.sent.is_empty() || delivered_n > 0;
                slots[l].transitions += 1;
                slots[l].since_snapshot += 1;
                if let Some(rnet) = rnet.as_mut() {
                    // Fault mode: every send — local or remote — is
                    // staged in the substrate (sequence number + outbox
                    // entry); the next snapshot commits it to the wire
                    // through the fault gauntlet. Then crash points
                    // fire and periodic snapshots are taken.
                    let sender_global = slots[l].global;
                    if !outcome.sent.is_empty() {
                        // Sends are staged in the outbox; the next
                        // snapshot commits and transmits them. One
                        // encoding serves every destination — with the
                        // trace context stamped in when tracing is on.
                        let facts: Multiset<Fact> = outcome.sent.iter().cloned().collect();
                        let ctx = mint_trace(obs, &mut slots[l], total_nodes, &facts);
                        let payload: Arc<[u8]> =
                            wirefmt::encode_traced(&facts, ctx.as_ref()).into();
                        let naive_len = wirefmt::naive_len(&facts) as u64;
                        for g in 0..total_nodes {
                            if g == sender_global {
                                continue;
                            }
                            rnet.send_payload(sender_global, g, payload.clone(), naive_len);
                        }
                    }
                    if let Some(point) = rnet.due_crash(sender_global, slots[l].transitions) {
                        // Crash: roll back to the last snapshot, drop
                        // in-flight outgoing wires, go down. Blacken
                        // the worker — the rollback may have erased
                        // receipts the current probe round already
                        // observed (see `termination.rs`).
                        black = true;
                        let snap = slots[l]
                            .snap
                            .clone()
                            .expect("every node snapshots before it can crash");
                        slots[l].state = snap.state;
                        slots[l].pending = snap.pending;
                        slots[l].ever_sent = snap.ever_sent;
                        slots[l].dirty = true;
                        slots[l].since_snapshot = 0;
                        rnet.restore(sender_global, snap.links);
                        rnet.crash(sender_global, point.down_ticks);
                        if obs.enabled() {
                            obs.event("net", "crash", sender_global as u32 + 1, || {
                                vec![
                                    ("node", ArgValue::U64(sender_global as u64)),
                                    ("down_ticks", ArgValue::U64(point.down_ticks)),
                                ]
                            });
                        }
                    } else if slots[l].since_snapshot >= snapshot_every {
                        let mut acks = Vec::new();
                        take_snapshot(&mut slots[l], rnet, &mut acks);
                        if supervised {
                            // Output commit: the snapshot frame goes on
                            // the socket *before* any wire it released,
                            // so the supervisor's retained version
                            // always covers everything peers may see.
                            slots[l].snap_version += 1;
                            ship_snapshot(&slots[l], rnet, ports);
                        }
                        if !acks.is_empty() {
                            let mut deliver =
                                |g: usize, facts: Multiset<Fact>, mid: Option<(u64, u64)>| {
                                    enqueue(
                                        &mut slots,
                                        &mut metrics,
                                        &mut stats,
                                        &local_index,
                                        g,
                                        facts,
                                        mid,
                                    )
                                };
                            pump_wires(
                                acks,
                                rnet,
                                id,
                                &owner,
                                ports,
                                &mut counter,
                                count_msgs,
                                &mut deliver,
                            );
                        }
                    }
                    continue;
                }
                if outcome.sent.is_empty() {
                    continue;
                }
                // Route: every other node gets every sent fact — local
                // inboxes directly (in memory, no encoding), remote
                // workers as one encoded batch per destination node
                // (the Safra counter counts batches). One encoding
                // serves every remote destination.
                let sender_global = slots[l].global;
                let facts: Multiset<Fact> = outcome.sent.iter().cloned().collect();
                let ctx = mint_trace(obs, &mut slots[l], total_nodes, &facts);
                let mid = ctx.as_ref().map(|c| c.id());
                let mut encoded: Option<(Arc<[u8]>, u64)> = None;
                for (g, &owner_w) in owner.iter().enumerate() {
                    if g == sender_global {
                        continue;
                    }
                    if owner_w == id {
                        enqueue(
                            &mut slots,
                            &mut metrics,
                            &mut stats,
                            &local_index,
                            g,
                            facts.clone(),
                            mid,
                        );
                    } else {
                        let (payload, naive_len) = encoded.get_or_insert_with(|| {
                            (
                                wirefmt::encode_traced(&facts, ctx.as_ref()).into(),
                                wirefmt::naive_len(&facts) as u64,
                            )
                        });
                        stats.wire_bytes += payload.len() as u64;
                        stats.wire_bytes_naive += *naive_len;
                        if count_msgs {
                            counter += 1;
                        }
                        ports.send(
                            owner_w,
                            Msg::Batch {
                                node: g,
                                payload: payload.clone(),
                            },
                        );
                    }
                }
            }
            if killed {
                break;
            }
            continue; // re-drain before deciding passivity
        }
        if has_work && steps_left == 0 {
            stats.exhausted = true;
            // Fall through: act passive so the ring can still conclude
            // (the run will report quiescent: false).
        }

        // 2b. Fault mode: the extended passivity predicate. Before
        // joining the token protocol, flush snapshots for slots whose
        // receive cursors can advance (emitting the cumulative acks
        // peers are waiting for) or that hold staged sends (committing
        // them to the wire). If the substrate still has obligations —
        // unacked sends, wires in the delay buffer, nodes in recovery —
        // the worker is *not* passive: it withholds the token and waits
        // with a timeout so the fault clock keeps ticking and due
        // retransmissions fire. This is how Safra is taught about
        // retransmissions and in-recovery nodes.
        if let Some(rnet_ref) = rnet.as_mut() {
            let mut acks = Vec::new();
            for slot in slots.iter_mut() {
                // Supervised adds a third flush reason: *any* progress
                // since the last shipped snapshot. The supervisor's
                // retained version then equals the final state once the
                // ring concludes — a kill landing after Terminate can
                // still be restored byte-identically.
                if rnet_ref.ackable(slot.global)
                    || rnet_ref.staged(slot.global)
                    || (supervised && slot.since_snapshot > 0)
                {
                    take_snapshot(slot, rnet_ref, &mut acks);
                    if supervised {
                        slot.snap_version += 1;
                        ship_snapshot(slot, rnet_ref, ports);
                    }
                }
            }
            if !acks.is_empty() {
                let mut deliver = |g: usize, facts: Multiset<Fact>, mid: Option<(u64, u64)>| {
                    enqueue(
                        &mut slots,
                        &mut metrics,
                        &mut stats,
                        &local_index,
                        g,
                        facts,
                        mid,
                    )
                };
                pump_wires(
                    acks,
                    rnet_ref,
                    id,
                    &owner,
                    ports,
                    &mut counter,
                    count_msgs,
                    &mut deliver,
                );
            }
            if rnet_ref.has_obligations() {
                match ports.recv_timeout(TIMER_WAIT) {
                    Ok(Msg::Batch { node, payload }) => {
                        if count_msgs {
                            counter -= 1;
                        }
                        black = true;
                        let (facts, ctx) =
                            wirefmt::decode_traced(&payload).expect("channel batch decodes");
                        let mid = ctx.map(|c| c.id());
                        enqueue(
                            &mut slots,
                            &mut metrics,
                            &mut stats,
                            &local_index,
                            node,
                            facts,
                            mid,
                        );
                    }
                    Ok(Msg::Wire(wire)) => {
                        if count_msgs {
                            counter -= 1;
                        }
                        black = true;
                        let mut deliver =
                            |g: usize, facts: Multiset<Fact>, mid: Option<(u64, u64)>| {
                                enqueue(
                                    &mut slots,
                                    &mut metrics,
                                    &mut stats,
                                    &local_index,
                                    g,
                                    facts,
                                    mid,
                                )
                            };
                        pump_wires(
                            vec![wire],
                            rnet_ref,
                            id,
                            &owner,
                            ports,
                            &mut counter,
                            count_msgs,
                            &mut deliver,
                        );
                    }
                    Ok(Msg::Token(t)) => {
                        if t.epoch == ring_epoch {
                            held_token = Some(t);
                        }
                    }
                    Ok(Msg::Terminate) => break,
                    Ok(Msg::Reset { epoch }) => {
                        if epoch > ring_epoch {
                            ring_epoch = epoch;
                            counter = 0;
                            black = true;
                            held_token = None;
                            probe_outstanding = false;
                        }
                    }
                    Ok(Msg::Reassign {
                        owner: new_owner,
                        live: new_live,
                        adopted,
                    }) => {
                        black = true;
                        apply_reassign(
                            id,
                            new_owner,
                            new_live,
                            adopted,
                            &mut owner,
                            &mut live,
                            &mut local_index,
                            &mut engines,
                            &mut slots,
                            Some(&mut *rnet_ref),
                            &fab,
                            ports,
                            supervised,
                            obs,
                        );
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
                continue;
            }
        }

        // 3. Passive: token protocol, over the *live* ring. The
        // initiator is the lowest live position (worker 0 unless its
        // budget ran out and its shard was adopted), and the token
        // skips dead positions.
        let live_count = live.iter().filter(|&&b| b).count();
        if live_count <= 1 {
            // Sole live worker: passivity is global quiescence.
            break;
        }
        let initiator = live.iter().position(|&b| b).unwrap_or(0);
        if id == initiator {
            match held_token.take() {
                Some(token) => {
                    // The probe is back: either we terminate or we
                    // launch a fresh one (probe_outstanding stays true).
                    if token.concludes(counter, black) {
                        // Termination: nothing in flight, all passive
                        // through a full white round.
                        for (w, &alive) in live.iter().enumerate() {
                            if w != id && alive {
                                ports.send(w, Msg::Terminate);
                            }
                        }
                        break;
                    }
                    // Inconclusive: whiten and re-probe.
                    black = false;
                    probe_outstanding = true;
                    stats.token_passes += 1;
                    let mut t = Token::probe(ring_epoch);
                    t.passes = token.passes + 1;
                    ports.send(next_live(&live, id), Msg::Token(t));
                }
                None if !probe_outstanding => {
                    probe_outstanding = true;
                    black = false;
                    stats.token_passes += 1;
                    ports.send(next_live(&live, id), Msg::Token(Token::probe(ring_epoch)));
                }
                None => {}
            }
        } else if let Some(mut token) = held_token.take() {
            token.absorb(counter, black);
            black = false;
            stats.token_passes += 1;
            ports.send(next_live(&live, id), Msg::Token(token));
        }

        // 4. Block until something arrives (a batch reactivates us, a
        // token resumes the probe, Terminate ends the run). Supervised:
        // wake on the heartbeat clock so an idle worker still proves
        // liveness (and its supervisor never mistakes waiting for a
        // token withheld across a crash window for a hang).
        let msg = if supervised {
            match ports.recv_timeout(HEARTBEAT_EVERY) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => {
                    ports.heartbeat();
                    last_beat = Instant::now();
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        } else {
            match ports.recv() {
                Ok(m) => m,
                Err(_) => break,
            }
        };
        match msg {
            Msg::Batch { node, payload } => {
                if count_msgs {
                    counter -= 1;
                }
                black = true;
                let (facts, ctx) = wirefmt::decode_traced(&payload).expect("channel batch decodes");
                let mid = ctx.map(|c| c.id());
                enqueue(
                    &mut slots,
                    &mut metrics,
                    &mut stats,
                    &local_index,
                    node,
                    facts,
                    mid,
                );
            }
            Msg::Wire(wire) => {
                if count_msgs {
                    counter -= 1;
                }
                black = true;
                let rnet = rnet.as_mut().expect("wire received without a fault plan");
                let mut deliver = |g: usize, facts: Multiset<Fact>, mid: Option<(u64, u64)>| {
                    enqueue(
                        &mut slots,
                        &mut metrics,
                        &mut stats,
                        &local_index,
                        g,
                        facts,
                        mid,
                    )
                };
                pump_wires(
                    vec![wire],
                    rnet,
                    id,
                    &owner,
                    ports,
                    &mut counter,
                    count_msgs,
                    &mut deliver,
                );
            }
            Msg::Token(t) => {
                if t.epoch == ring_epoch {
                    held_token = Some(t);
                }
            }
            Msg::Terminate => break,
            Msg::Reset { epoch } => {
                if epoch > ring_epoch {
                    ring_epoch = epoch;
                    counter = 0;
                    black = true;
                    held_token = None;
                    probe_outstanding = false;
                }
            }
            Msg::Reassign {
                owner: new_owner,
                live: new_live,
                adopted,
            } => {
                black = true;
                apply_reassign(
                    id,
                    new_owner,
                    new_live,
                    adopted,
                    &mut owner,
                    &mut live,
                    &mut local_index,
                    &mut engines,
                    &mut slots,
                    rnet.as_mut(),
                    &fab,
                    ports,
                    supervised,
                    obs,
                );
            }
        }
    }

    // A lost transport link forfeits the quiescence claim: facts may
    // have been abandoned in flight. So does a scripted kill — the
    // process is about to die without flushing anything.
    let mut clean = slots.iter().all(|s| !s.dirty && s.pending.is_empty())
        && !stats.exhausted
        && ports.link_ok()
        && !killed;
    if let Some(rnet) = rnet.as_mut() {
        // A message abandoned to the retry budget means fairness was
        // not restored: the run must not claim quiescence.
        rnet.finalize();
        clean &= rnet.stats.retry_exhausted == 0;
        stats.faults = rnet.stats;
        stats.link_counters = std::mem::take(&mut rnet.link_counters);
        stats.wire_bytes += rnet.wire_bytes;
        stats.wire_bytes_naive += rnet.wire_bytes_naive;
    }
    // Adoption may have grown the shard since the initial assignment.
    stats.nodes = slots.iter().map(|s| node_ids[s.global].clone()).collect();
    stats.buffered = slots.iter().map(|s| s.pending.len()).sum();
    stats.metrics = metrics;
    WorkerOutcome {
        states: slots
            .into_iter()
            .map(|s| (node_ids[s.global].clone(), s.state))
            .collect(),
        stats,
        clean,
        killed,
    }
}
