//! # calm-net
//!
//! A threaded executor for relational transducer networks: each node of
//! the network is owned by a worker thread (nodes are sharded over a
//! pool when the network is larger than the worker count), message
//! buffers are `mpsc` channels carrying fact batches, and global
//! quiescence is detected with a Safra-style token ring
//! ([`termination`]).
//!
//! The sequential simulator in `calm-transducer` is the semantic
//! oracle: both engines run the same per-node step core
//! ([`calm_transducer::engine::NodeEngine`]), so they can differ only
//! in *scheduling* — and for coordination-free programs the paper's
//! confluence guarantee says scheduling cannot matter. The equivalence
//! tests in this crate execute that guarantee: threaded
//! [`ThreadedRunResult::output`] equals the sequential
//! [`calm_transducer::RunResult::output`] for all three strategy
//! families, across seeds and worker counts.
//!
//! ```
//! use calm_net::{run_threaded, Programs, ThreadedConfig, ThreadedNetwork};
//! use calm_transducer::{
//!     expected_output, run, HashPolicy, MonotoneBroadcast, Network, Scheduler,
//!     SystemConfig, TransducerNetwork,
//! };
//! use calm_common::{fact, FnQuery, Instance, Schema};
//!
//! let copy = FnQuery::new(
//!     "copy",
//!     Schema::from_pairs([("E", 2)]),
//!     Schema::from_pairs([("E2", 2)]),
//!     |i: &Instance| Instance::from_facts(
//!         i.tuples("E").map(|t| fact("E2", [t[0].clone(), t[1].clone()])),
//!     ),
//! );
//! let strategy = MonotoneBroadcast::new(Box::new(copy));
//! let input = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3])]);
//! let policy = HashPolicy::new(Network::of_size(3));
//!
//! // Sequential oracle…
//! let seq = run(
//!     &TransducerNetwork { transducer: &strategy, policy: &policy, config: SystemConfig::ORIGINAL },
//!     &input,
//!     &Scheduler::RoundRobin,
//!     10_000,
//! );
//! // …and the threaded engine agree, per the CALM confluence guarantee.
//! let thr = run_threaded(
//!     &ThreadedNetwork { programs: Programs::Shared(&strategy), policy: &policy, config: SystemConfig::ORIGINAL },
//!     &input,
//!     &ThreadedConfig::new(2),
//! );
//! assert!(seq.quiescent && thr.quiescent);
//! assert_eq!(thr.output, seq.output);
//! ```

#![warn(missing_docs)]

pub mod executor;
pub mod faults;
pub mod termination;
pub mod transport;
pub mod wirefmt;

pub use executor::{
    run_threaded, run_threaded_with, Programs, ThreadedConfig, ThreadedNetwork, ThreadedRunResult,
    WorkerStats,
};
pub use faults::{
    CrashPoint, FaultPlan, FaultStats, LinkCounters, LinkFaults, Partition, ReliableNet, Wire,
};
pub use termination::Token;
pub use transport::{
    run_net_worker, run_process, Assign, FinalReport, JobSpec, NetError, ProcessConfig,
    ProcessRunResult, SpawnHandle, Spawner, WorkerBuilder, WorkerSetup, PROTOCOL_VERSION,
};
pub use wirefmt::WireError;
