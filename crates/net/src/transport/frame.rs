//! The length-prefixed frame codec: how control-plane messages and
//! `wirefmt` batches cross a TCP stream.
//!
//! A frame is `[0xCF, 0x01, u32-le length, payload]`. The payload is an
//! encoded [`super::proto`] message — which in turn carries the existing
//! canonical batch encoding (trace extension headers included)
//! untouched. The per-frame magic makes desynchronization loud: after
//! any correctly read frame the next two bytes must be the magic again,
//! so garbage following a frame surfaces as [`FrameError::Corrupt`]
//! instead of being reinterpreted as a length.
//!
//! Partial reads and writes are handled explicitly: both directions
//! loop until the buffer is complete, retrying `Interrupted`. A reset,
//! broken pipe, or EOF mid-frame is [`FrameError::LinkDown`] — the
//! caller counts it as a link fault; nothing here panics. An EOF
//! *between* frames (the peer closed cleanly) is [`FrameError::Closed`].

use std::fmt;
use std::io::{ErrorKind, Read, Write};

/// The two magic bytes opening every frame (codec id + version).
pub const FRAME_MAGIC: [u8; 2] = [0xCF, 0x01];

/// Upper bound on a frame payload. Generous — final-state reports carry
/// whole node states — but finite, so a desynchronized or hostile
/// length prefix cannot demand an absurd allocation.
pub const MAX_FRAME_LEN: usize = 256 << 20;

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream cleanly, at a frame boundary.
    Closed,
    /// The link failed: connection reset, broken pipe, or EOF in the
    /// middle of a frame. Counted as a link fault by callers.
    LinkDown(std::io::Error),
    /// The stream is not speaking the protocol: bad magic bytes or an
    /// implausible length. After this the stream position is
    /// meaningless; the link must be torn down.
    Corrupt(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "peer closed the stream"),
            FrameError::LinkDown(e) => write!(f, "link down: {e}"),
            FrameError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Write all of `buf`, looping over partial writes and retrying
/// `Interrupted`. A zero-length write or any other error is the link
/// going down.
fn write_full(w: &mut dyn Write, mut buf: &[u8]) -> Result<(), FrameError> {
    while !buf.is_empty() {
        match w.write(buf) {
            Ok(0) => {
                return Err(FrameError::LinkDown(std::io::Error::new(
                    ErrorKind::WriteZero,
                    "wrote zero bytes",
                )))
            }
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::LinkDown(e)),
        }
    }
    Ok(())
}

/// Read exactly `buf.len()` bytes, looping over partial reads and
/// retrying `Interrupted`. `clean_eof_ok` distinguishes the two EOF
/// meanings: at offset 0 of a frame header an EOF is a clean close
/// ([`FrameError::Closed`]); anywhere else it tears the frame and is
/// [`FrameError::LinkDown`].
fn read_full(r: &mut dyn Read, buf: &mut [u8], clean_eof_ok: bool) -> Result<(), FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && clean_eof_ok {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::LinkDown(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "eof mid-frame",
                    )))
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::LinkDown(e)),
        }
    }
    Ok(())
}

/// Frame `payload` onto the stream.
pub fn write_frame(w: &mut dyn Write, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(FrameError::Corrupt("frame too large to send"));
    }
    let mut header = [0u8; 6];
    header[..2].copy_from_slice(&FRAME_MAGIC);
    header[2..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    write_full(w, &header)?;
    write_full(w, payload)
}

/// Read the next frame payload off the stream. Strict: bad magic or an
/// oversized length is [`FrameError::Corrupt`]; a stream ending inside
/// the header or payload is [`FrameError::LinkDown`]; a stream ending
/// exactly between frames is [`FrameError::Closed`].
pub fn read_frame(r: &mut dyn Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 6];
    read_full(r, &mut header, true)?;
    if header[..2] != FRAME_MAGIC {
        return Err(FrameError::Corrupt("bad frame magic"));
    }
    let len = u32::from_le_bytes(header[2..].try_into().expect("4 header bytes")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Corrupt("frame length implausible"));
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload, false)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A reader that hands out one byte per call — the worst-case
    /// partial-read schedule a socket can produce.
    struct Trickle<'a>(&'a [u8]);

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.0.split_first() {
                Some((b, rest)) if !buf.is_empty() => {
                    buf[0] = *b;
                    self.0 = rest;
                    Ok(1)
                }
                _ => Ok(0),
            }
        }
    }

    /// A writer that accepts one byte per call.
    struct Dribble(Vec<u8>);

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            match buf.first() {
                Some(b) => {
                    self.0.push(*b);
                    Ok(1)
                }
                None => Ok(0),
            }
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn round_trips_through_partial_reads_and_writes() {
        for payload in [&b""[..], b"x", b"hello frames", &[0u8; 4096]] {
            let mut dribbled = Dribble(Vec::new());
            write_frame(&mut dribbled, payload).unwrap();
            assert_eq!(dribbled.0, framed(payload), "one-byte writes agree");
            let back = read_frame(&mut Trickle(&dribbled.0)).unwrap();
            assert_eq!(back, payload, "one-byte reads recover the payload");
            let back = read_frame(&mut Cursor::new(&dribbled.0)).unwrap();
            assert_eq!(back, payload);
        }
    }

    #[test]
    fn every_strict_prefix_is_rejected_and_never_closed() {
        let bytes = framed(b"prefix-test payload");
        for cut in 1..bytes.len() {
            match read_frame(&mut Cursor::new(&bytes[..cut])) {
                Err(FrameError::LinkDown(_)) => {}
                other => panic!("prefix of {cut} bytes must be LinkDown, got {other:?}"),
            }
        }
        // The empty stream is the one clean case.
        assert!(matches!(
            read_frame(&mut Cursor::new(&[][..])),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn garbage_after_a_frame_is_detected() {
        let mut bytes = framed(b"good frame");
        bytes.extend_from_slice(b"zzzzzz");
        let mut cur = Cursor::new(&bytes);
        assert_eq!(read_frame(&mut cur).unwrap(), b"good frame");
        assert!(matches!(
            read_frame(&mut cur),
            Err(FrameError::Corrupt("bad frame magic"))
        ));
    }

    #[test]
    fn implausible_length_is_corrupt_not_an_allocation() {
        let mut bytes = Vec::from(FRAME_MAGIC);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes)),
            Err(FrameError::Corrupt("frame length implausible"))
        ));
    }

    #[test]
    fn back_to_back_frames_read_in_order() {
        let mut bytes = framed(b"one");
        bytes.extend(framed(b"two"));
        bytes.extend(framed(b""));
        let mut cur = Cursor::new(&bytes);
        assert_eq!(read_frame(&mut cur).unwrap(), b"one");
        assert_eq!(read_frame(&mut cur).unwrap(), b"two");
        assert_eq!(read_frame(&mut cur).unwrap(), b"");
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Closed)));
    }
}
