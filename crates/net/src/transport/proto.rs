//! Control-plane messages of the process engine, and their binary
//! codec.
//!
//! Five message kinds cross the coordinator↔worker streams, each one
//! frame ([`super::frame`]):
//!
//! * `Hello` — worker → coordinator, first frame of a connection:
//!   protocol version + the worker's ring position.
//! * `Assign` — coordinator → worker, the reply: the full job hand-off
//!   (program + input sources, strategy, node count, fault spec, obs
//!   paths) plus this worker's index and the ring size. Node-shard
//!   assignment is implied: node `i` runs on worker `i mod W`, the same
//!   rule as the threaded executor.
//! * `Route` — worker → coordinator: an executor message ([`Msg`])
//!   addressed to another worker. The coordinator relays it; batch
//!   payloads pass through verbatim in the canonical [`crate::wirefmt`]
//!   encoding, trace extension headers included.
//! * `Deliver` — coordinator → worker: a relayed executor message.
//! * `Final` — worker → coordinator, last frame: the worker's final
//!   node states, its [`WorkerStats`], and its clean/quiescent verdict.
//! * `Snapshot` — worker → coordinator (supervised runs): a versioned,
//!   canonically encoded checkpoint of one node (instance state,
//!   undelivered inbox, send-dedup set, outbox and seq/ack floors).
//!   The coordinator retains the latest per node and hands it back in
//!   the re-`Assign` after a respawn, or inside a `Reassign` when a
//!   survivor adopts a dead worker's shard.
//! * `Heartbeat` — worker → coordinator: liveness beacon, so a
//!   hung-but-connected worker trips the supervisor's timeout instead
//!   of stalling the run forever.
//!
//! The codec reuses the varint/value primitives of [`crate::wirefmt`],
//! and decoding is strict in the same spirit: unknown tags, truncation
//! and trailing bytes all surface as [`WireError`]s.

use crate::executor::Msg;
use crate::faults::{FaultStats, LinkCounters, NodeLinks, NodeSnapshot, OutEntry, Wire};
use crate::termination::Token;
use crate::wirefmt::{put_bytes, put_value, put_varint, zigzag, Reader, WireError};
use crate::WorkerStats;
use calm_common::fact::Fact;
use calm_common::instance::Instance;
use calm_transducer::multiset::Multiset;
use calm_transducer::network::NodeId;
use calm_transducer::runtime::Metrics;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The process-engine protocol version, checked at handshake. A
/// coordinator refuses a worker speaking a different version — the two
/// sides are expected to be the same binary, so a mismatch means a
/// stale spawn, not a negotiation opportunity.
///
/// v2 adds supervision: `Snapshot`/`Heartbeat` control frames, ring
/// epochs on tokens, `Reset`/`Reassign` executor messages, and the
/// incarnation/epoch/restore fields of `Assign`.
pub const PROTOCOL_VERSION: u32 = 2;

/// The job a coordinator hands every worker: sources and knobs, all
/// engine-agnostic strings the worker's builder interprets (the
/// transport never parses the program itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Datalog program source (not a path — the hand-off is by value,
    /// so workers need no shared filesystem).
    pub program: String,
    /// Input facts source.
    pub facts: String,
    /// Strategy family name (`monotone` | `distinct` | `disjoint`).
    pub strategy: String,
    /// Network size (node `i` runs on worker `i mod W`).
    pub nodes: usize,
    /// Data-parallel eval threads inside each node-local fixpoint.
    pub eval_threads: usize,
    /// Per-worker step budget (the threaded engine's default is 1M).
    pub step_budget: usize,
    /// Fault-plan spec string (see [`crate::FaultPlan::parse`]), or
    /// `None` for the perfect-channel fast path.
    pub faults: Option<String>,
    /// Per-worker `--trace-out` prefix, already suffixed by the
    /// coordinator (e.g. `PREFIX.worker3`) so concurrent writers never
    /// interleave into one file.
    pub trace_prefix: Option<String>,
    /// Per-worker flight-recorder path, already suffixed likewise.
    pub flight_path: Option<String>,
}

/// The `Assign` hand-off: the job plus this worker's identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assign {
    /// This worker's ring position.
    pub worker: usize,
    /// Ring size W.
    pub workers: usize,
    /// The job.
    pub spec: JobSpec,
    /// How many times this ring position has been (re)spawned: 0 on
    /// the first spawn, k after the k-th respawn. A worker uses it to
    /// skip the kill-plan entries its prior incarnations consumed.
    pub incarnation: u64,
    /// Current ring epoch — tokens minted in earlier epochs are stale
    /// and dropped (a token written to a dead worker's socket is lost;
    /// the coordinator bumps the epoch at every recovery event).
    pub epoch: u64,
    /// Whether the coordinator supervises this run: when true the
    /// worker ships versioned `Snapshot` frames so a respawn can
    /// restore its shard instead of aborting the run.
    pub supervised: bool,
    /// Explicit node→worker ownership map, or `None` for the default
    /// `node i mod W` rule. Becomes `Some` after shard adoption.
    pub owner: Option<Vec<usize>>,
    /// Liveness mask over ring positions (`empty` = all live). Dead
    /// positions are skipped by the token ring and receive no traffic.
    pub live: Vec<bool>,
    /// Snapshot hand-back for a respawned or adoptive worker: for each
    /// restored node, its latest retained `(node, version, blob)`.
    pub restore: Vec<(usize, u64, Vec<u8>)>,
}

impl Assign {
    /// A first-spawn assignment with default topology (no supervision
    /// extras): incarnation 0, epoch 0, implicit ownership, all live.
    pub fn new(worker: usize, workers: usize, spec: JobSpec) -> Assign {
        Assign {
            worker,
            workers,
            spec,
            incarnation: 0,
            epoch: 0,
            supervised: false,
            owner: None,
            live: Vec::new(),
            restore: Vec::new(),
        }
    }
}

/// A worker's final report: its share of the run, mirroring what a
/// threaded worker returns at join.
#[derive(Debug, Clone)]
pub struct FinalReport {
    /// Per-worker accounting (metrics, token passes, fault counters,
    /// wire bytes).
    pub stats: WorkerStats,
    /// Final state of every node this worker owned.
    pub states: Vec<(NodeId, Instance)>,
    /// No pending inbox facts, every node at local fixpoint, no retry
    /// exhaustion, transport link intact.
    pub clean: bool,
}

/// A control-plane message (one per frame).
// One CtrlMsg lives at a time per connection thread; the small/large
// variant spread is irrelevant to memory, so boxing would only add hops.
#[allow(clippy::large_enum_variant)]
pub(crate) enum CtrlMsg {
    /// Worker → coordinator: version + ring position.
    Hello { version: u32, worker: usize },
    /// Coordinator → worker: the job hand-off.
    Assign(Assign),
    /// Worker → coordinator: relay `msg` to worker `dst`.
    Route { dst: usize, msg: Msg },
    /// Coordinator → worker: a relayed message.
    Deliver(Msg),
    /// Worker → coordinator: final states + accounting.
    Final(FinalReport),
    /// Worker → coordinator: a versioned node checkpoint (see
    /// [`encode_snapshot_blob`] for the blob layout). Shipped *before*
    /// the wires the snapshot released, so by per-link FIFO the
    /// coordinator retains version v before any peer can observe a
    /// message released at v — restoring the latest retained blob is
    /// therefore always output-commit sound.
    Snapshot {
        /// Global node id.
        node: usize,
        /// Monotone per-node version counter.
        version: u64,
        /// Canonical blob bytes.
        blob: Vec<u8>,
    },
    /// Worker → coordinator: liveness beacon.
    Heartbeat { worker: usize },
}

const TAG_HELLO: u8 = 0;
const TAG_ASSIGN: u8 = 1;
const TAG_ROUTE: u8 = 2;
const TAG_DELIVER: u8 = 3;
const TAG_FINAL: u8 = 4;
const TAG_SNAPSHOT: u8 = 5;
const TAG_HEARTBEAT: u8 = 6;

const MSG_BATCH: u8 = 0;
const MSG_WIRE_DATA: u8 = 1;
const MSG_WIRE_ACK: u8 = 2;
const MSG_TOKEN: u8 = 3;
const MSG_TERMINATE: u8 = 4;
const MSG_RESET: u8 = 5;
const MSG_REASSIGN: u8 = 6;

fn put_opt_str(out: &mut Vec<u8>, s: &Option<String>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_bytes(out, s.as_bytes());
        }
    }
}

fn read_opt_str(r: &mut Reader<'_>) -> Result<Option<String>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.str()?.to_string())),
        _ => Err(WireError::NonCanonical("bad option flag")),
    }
}

fn put_opt_varint(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_varint(out, v);
        }
    }
}

fn read_opt_varint(r: &mut Reader<'_>) -> Result<Option<u64>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.varint()?)),
        _ => Err(WireError::NonCanonical("bad option flag")),
    }
}

/// Shared list layout for snapshot hand-backs: `(node, version, blob)`
/// triples, used by both `Assign.restore` and `Msg::Reassign.adopted`.
fn put_restores(out: &mut Vec<u8>, rs: &[(usize, u64, Vec<u8>)]) {
    put_varint(out, rs.len() as u64);
    for (node, version, blob) in rs {
        put_varint(out, *node as u64);
        put_varint(out, *version);
        put_bytes(out, blob);
    }
}

fn read_restores(r: &mut Reader<'_>) -> Result<Vec<(usize, u64, Vec<u8>)>, WireError> {
    let n = r.varint()? as usize;
    if n > r.remaining() {
        return Err(WireError::Truncated);
    }
    let mut rs = Vec::with_capacity(n);
    for _ in 0..n {
        let node = r.varint()? as usize;
        let version = r.varint()?;
        let blob = r.prefixed_bytes()?.to_vec();
        rs.push((node, version, blob));
    }
    Ok(rs)
}

fn put_owner(out: &mut Vec<u8>, owner: &Option<Vec<usize>>) {
    match owner {
        None => out.push(0),
        Some(map) => {
            out.push(1);
            put_varint(out, map.len() as u64);
            for w in map {
                put_varint(out, *w as u64);
            }
        }
    }
}

fn read_owner(r: &mut Reader<'_>) -> Result<Option<Vec<usize>>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let n = r.varint()? as usize;
            if n > r.remaining() {
                return Err(WireError::Truncated);
            }
            let mut map = Vec::with_capacity(n);
            for _ in 0..n {
                map.push(r.varint()? as usize);
            }
            Ok(Some(map))
        }
        _ => Err(WireError::NonCanonical("bad option flag")),
    }
}

fn put_live(out: &mut Vec<u8>, live: &[bool]) {
    put_varint(out, live.len() as u64);
    for b in live {
        out.push(*b as u8);
    }
}

fn read_live(r: &mut Reader<'_>) -> Result<Vec<bool>, WireError> {
    let n = r.varint()? as usize;
    if n > r.remaining() {
        return Err(WireError::Truncated);
    }
    let mut live = Vec::with_capacity(n);
    for _ in 0..n {
        live.push(match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(WireError::NonCanonical("bad bool")),
        });
    }
    Ok(live)
}

fn put_msg(out: &mut Vec<u8>, msg: &Msg) {
    match msg {
        Msg::Batch { node, payload } => {
            out.push(MSG_BATCH);
            put_varint(out, *node as u64);
            put_bytes(out, payload);
        }
        Msg::Wire(Wire::Data {
            src,
            dst,
            seq,
            payload,
        }) => {
            out.push(MSG_WIRE_DATA);
            put_varint(out, *src as u64);
            put_varint(out, *dst as u64);
            put_varint(out, *seq);
            put_bytes(out, payload);
        }
        Msg::Wire(Wire::Ack { src, dst, cum }) => {
            out.push(MSG_WIRE_ACK);
            put_varint(out, *src as u64);
            put_varint(out, *dst as u64);
            put_varint(out, *cum);
        }
        Msg::Token(t) => {
            out.push(MSG_TOKEN);
            put_varint(out, zigzag(t.count));
            out.push(t.black as u8);
            put_varint(out, t.passes);
            put_varint(out, t.epoch);
        }
        Msg::Terminate => out.push(MSG_TERMINATE),
        Msg::Reset { epoch } => {
            out.push(MSG_RESET);
            put_varint(out, *epoch);
        }
        Msg::Reassign {
            owner,
            live,
            adopted,
        } => {
            out.push(MSG_REASSIGN);
            put_varint(out, owner.len() as u64);
            for w in owner {
                put_varint(out, *w as u64);
            }
            put_live(out, live);
            put_restores(out, adopted);
        }
    }
}

fn read_msg(r: &mut Reader<'_>) -> Result<Msg, WireError> {
    Ok(match r.u8()? {
        MSG_BATCH => Msg::Batch {
            node: r.varint()? as usize,
            payload: Arc::from(r.prefixed_bytes()?),
        },
        MSG_WIRE_DATA => Msg::Wire(Wire::Data {
            src: r.varint()? as usize,
            dst: r.varint()? as usize,
            seq: r.varint()?,
            payload: Arc::from(r.prefixed_bytes()?),
        }),
        MSG_WIRE_ACK => Msg::Wire(Wire::Ack {
            src: r.varint()? as usize,
            dst: r.varint()? as usize,
            cum: r.varint()?,
        }),
        MSG_TOKEN => Msg::Token(Token {
            count: crate::wirefmt::unzigzag(r.varint()?),
            black: match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::NonCanonical("bad bool")),
            },
            passes: r.varint()?,
            epoch: r.varint()?,
        }),
        MSG_TERMINATE => Msg::Terminate,
        MSG_RESET => Msg::Reset { epoch: r.varint()? },
        MSG_REASSIGN => {
            let n = r.varint()? as usize;
            if n > r.remaining() {
                return Err(WireError::Truncated);
            }
            let mut owner = Vec::with_capacity(n);
            for _ in 0..n {
                owner.push(r.varint()? as usize);
            }
            Msg::Reassign {
                owner,
                live: read_live(r)?,
                adopted: read_restores(r)?,
            }
        }
        _ => return Err(WireError::NonCanonical("unknown msg tag")),
    })
}

/// One fact: relation name, arity, values.
fn put_fact(out: &mut Vec<u8>, f: &Fact) {
    put_bytes(out, f.relation().as_bytes());
    put_varint(out, f.arity() as u64);
    for v in f.values() {
        put_value(out, v);
    }
}

fn read_fact(r: &mut Reader<'_>) -> Result<Fact, WireError> {
    let name: Arc<str> = Arc::from(r.str()?);
    let arity = r.varint()? as usize;
    if arity == 0 {
        // The paper's model has no nullary relations; `Fact` enforces
        // arity >= 1, so a zero here is a corrupt or hostile frame.
        return Err(WireError::NonCanonical("nullary fact"));
    }
    if arity > r.remaining() {
        return Err(WireError::Truncated);
    }
    let mut args = Vec::with_capacity(arity);
    for _ in 0..arity {
        args.push(r.value(0)?);
    }
    Ok(Fact::from_rel(name, args))
}

fn put_instance(out: &mut Vec<u8>, i: &Instance) {
    let facts: Vec<Fact> = i.facts().collect();
    put_varint(out, facts.len() as u64);
    for f in &facts {
        put_fact(out, f);
    }
}

fn read_instance(r: &mut Reader<'_>) -> Result<Instance, WireError> {
    let n = r.varint()? as usize;
    if n > r.remaining() {
        return Err(WireError::Truncated);
    }
    let mut i = Instance::new();
    for _ in 0..n {
        i.insert(read_fact(r)?);
    }
    Ok(i)
}

fn put_metrics(out: &mut Vec<u8>, m: &Metrics) {
    put_varint(out, m.transitions as u64);
    put_varint(out, m.heartbeats as u64);
    put_varint(out, m.messages_sent as u64);
    put_varint(out, m.messages_delivered as u64);
    put_opt_varint(out, m.first_output_at.map(|v| v as u64));
    put_opt_varint(out, m.last_output_growth_at.map(|v| v as u64));
    for n in [
        m.by_class.fact,
        m.by_class.absence,
        m.by_class.value,
        m.by_class.request,
        m.by_class.ok,
        m.by_class.ack,
        m.by_class.other,
    ] {
        put_varint(out, n as u64);
    }
    put_varint(out, m.buffered_high_water.len() as u64);
    for (node, hw) in &m.buffered_high_water {
        put_value(out, node);
        put_varint(out, *hw as u64);
    }
    for n in [
        m.eval.iterations,
        m.eval.derivations,
        m.eval.new_facts,
        m.eval.index_probes,
        m.eval.index_hits,
        m.eval.merge_probes,
        m.eval.merge_hits,
        m.eval.bytes_moved,
    ] {
        put_varint(out, n as u64);
    }
}

// Decoders assign field-by-field because each `varint()?` is an ordered,
// fallible read — a struct literal would hide the wire order.
#[allow(clippy::field_reassign_with_default)]
fn read_metrics(r: &mut Reader<'_>) -> Result<Metrics, WireError> {
    let mut m = Metrics::default();
    m.transitions = r.varint()? as usize;
    m.heartbeats = r.varint()? as usize;
    m.messages_sent = r.varint()? as usize;
    m.messages_delivered = r.varint()? as usize;
    m.first_output_at = read_opt_varint(r)?.map(|v| v as usize);
    m.last_output_growth_at = read_opt_varint(r)?.map(|v| v as usize);
    m.by_class.fact = r.varint()? as usize;
    m.by_class.absence = r.varint()? as usize;
    m.by_class.value = r.varint()? as usize;
    m.by_class.request = r.varint()? as usize;
    m.by_class.ok = r.varint()? as usize;
    m.by_class.ack = r.varint()? as usize;
    m.by_class.other = r.varint()? as usize;
    let hw_count = r.varint()? as usize;
    if hw_count > r.remaining() {
        return Err(WireError::Truncated);
    }
    for _ in 0..hw_count {
        let node = r.value(0)?;
        let hw = r.varint()? as usize;
        m.buffered_high_water.insert(node, hw);
    }
    m.eval.iterations = r.varint()? as usize;
    m.eval.derivations = r.varint()? as usize;
    m.eval.new_facts = r.varint()? as usize;
    m.eval.index_probes = r.varint()? as usize;
    m.eval.index_hits = r.varint()? as usize;
    m.eval.merge_probes = r.varint()? as usize;
    m.eval.merge_hits = r.varint()? as usize;
    m.eval.bytes_moved = r.varint()? as usize;
    Ok(m)
}

fn put_fault_stats(out: &mut Vec<u8>, f: &FaultStats) {
    for n in [
        f.attempts,
        f.retransmissions,
        f.duplicates_injected,
        f.dropped,
        f.delayed,
        f.delivered_batches,
        f.duplicates_suppressed,
        f.replayed_facts_suppressed,
        f.acks_sent,
        f.snapshots,
        f.crashes,
        f.retry_exhausted,
        f.decode_failures,
        f.replayed,
        f.snapshot_bytes,
    ] {
        put_varint(out, n);
    }
}

#[allow(clippy::field_reassign_with_default)]
fn read_fault_stats(r: &mut Reader<'_>) -> Result<FaultStats, WireError> {
    let mut f = FaultStats::default();
    f.attempts = r.varint()?;
    f.retransmissions = r.varint()?;
    f.duplicates_injected = r.varint()?;
    f.dropped = r.varint()?;
    f.delayed = r.varint()?;
    f.delivered_batches = r.varint()?;
    f.duplicates_suppressed = r.varint()?;
    f.replayed_facts_suppressed = r.varint()?;
    f.acks_sent = r.varint()?;
    f.snapshots = r.varint()?;
    f.crashes = r.varint()?;
    f.retry_exhausted = r.varint()?;
    f.decode_failures = r.varint()?;
    f.replayed = r.varint()?;
    f.snapshot_bytes = r.varint()?;
    Ok(f)
}

/// Encode one node checkpoint into the blob carried by
/// `CtrlMsg::Snapshot` and handed back in `Assign.restore` /
/// `Msg::Reassign.adopted`.
///
/// Layout (all lengths varint-prefixed, canonical wirefmt values):
/// instance state, pending inbox as a `(fact, multiplicity)` multiset,
/// the send-dedup set, the link state (`out` outboxes with payload
/// bytes verbatim + naive length + staged flag, `cum`, `seen`,
/// `sent_floor`, `recv_dedup`), then the node's monotone transition
/// count and trace-seq allocator. Retry timers (`attempt`, `retry_at`)
/// are deliberately *not* shipped: a restore re-arms every unacked
/// entry from zero, since the old backoff schedule belonged to a dead
/// incarnation's clock.
pub(crate) fn encode_snapshot_blob(
    snap: &NodeSnapshot,
    transitions: u64,
    trace_next_seq: u64,
) -> Vec<u8> {
    let mut out = Vec::new();
    put_instance(&mut out, &snap.state);
    put_varint(&mut out, snap.pending.iter().count() as u64);
    for (f, n) in snap.pending.iter() {
        put_fact(&mut out, f);
        put_varint(&mut out, n as u64);
    }
    put_varint(&mut out, snap.ever_sent.len() as u64);
    for f in &snap.ever_sent {
        put_fact(&mut out, f);
    }
    let l = &snap.links;
    put_varint(&mut out, l.out.len() as u64);
    for (dst, entries) in &l.out {
        put_varint(&mut out, *dst as u64);
        put_varint(&mut out, entries.len() as u64);
        for (seq, e) in entries {
            put_varint(&mut out, *seq);
            put_bytes(&mut out, &e.payload);
            put_varint(&mut out, e.naive_len);
            out.push(e.staged as u8);
        }
    }
    put_varint(&mut out, l.cum.len() as u64);
    for (src, cum) in &l.cum {
        put_varint(&mut out, *src as u64);
        put_varint(&mut out, *cum);
    }
    put_varint(&mut out, l.seen.len() as u64);
    for (src, seqs) in &l.seen {
        put_varint(&mut out, *src as u64);
        put_varint(&mut out, seqs.len() as u64);
        for s in seqs {
            put_varint(&mut out, *s);
        }
    }
    put_varint(&mut out, l.sent_floor.len() as u64);
    for (dst, floor) in &l.sent_floor {
        put_varint(&mut out, *dst as u64);
        put_varint(&mut out, *floor);
    }
    put_varint(&mut out, l.recv_dedup.len() as u64);
    for (src, facts) in &l.recv_dedup {
        put_varint(&mut out, *src as u64);
        put_varint(&mut out, facts.len() as u64);
        for f in facts {
            put_fact(&mut out, f);
        }
    }
    put_varint(&mut out, transitions);
    put_varint(&mut out, trace_next_seq);
    out
}

/// Decode a snapshot blob. Strict: truncation and trailing bytes are
/// errors, like every other frame in this protocol.
pub(crate) fn decode_snapshot_blob(bytes: &[u8]) -> Result<(NodeSnapshot, u64, u64), WireError> {
    let mut r = Reader::new(bytes);
    let state = read_instance(&mut r)?;
    let pending_count = r.varint()? as usize;
    if pending_count > r.remaining() {
        return Err(WireError::Truncated);
    }
    let mut pending = Multiset::new();
    for _ in 0..pending_count {
        let f = read_fact(&mut r)?;
        let n = r.varint()? as usize;
        pending.insert_n(f, n);
    }
    let sent_count = r.varint()? as usize;
    if sent_count > r.remaining() {
        return Err(WireError::Truncated);
    }
    let mut ever_sent = BTreeSet::new();
    for _ in 0..sent_count {
        ever_sent.insert(read_fact(&mut r)?);
    }
    let mut links = NodeLinks::default();
    let out_count = r.varint()? as usize;
    if out_count > r.remaining() {
        return Err(WireError::Truncated);
    }
    for _ in 0..out_count {
        let dst = r.varint()? as usize;
        let entry_count = r.varint()? as usize;
        if entry_count > r.remaining() {
            return Err(WireError::Truncated);
        }
        let mut entries = BTreeMap::new();
        for _ in 0..entry_count {
            let seq = r.varint()?;
            let payload: Arc<[u8]> = Arc::from(r.prefixed_bytes()?);
            let naive_len = r.varint()?;
            let staged = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::NonCanonical("bad bool")),
            };
            entries.insert(
                seq,
                OutEntry {
                    payload,
                    naive_len,
                    attempt: 0,
                    retry_at: 0,
                    staged,
                },
            );
        }
        links.out.insert(dst, entries);
    }
    let cum_count = r.varint()? as usize;
    if cum_count > r.remaining() {
        return Err(WireError::Truncated);
    }
    for _ in 0..cum_count {
        let src = r.varint()? as usize;
        let cum = r.varint()?;
        links.cum.insert(src, cum);
    }
    let seen_count = r.varint()? as usize;
    if seen_count > r.remaining() {
        return Err(WireError::Truncated);
    }
    for _ in 0..seen_count {
        let src = r.varint()? as usize;
        let n = r.varint()? as usize;
        if n > r.remaining() {
            return Err(WireError::Truncated);
        }
        let mut seqs = BTreeSet::new();
        for _ in 0..n {
            seqs.insert(r.varint()?);
        }
        links.seen.insert(src, seqs);
    }
    let floor_count = r.varint()? as usize;
    if floor_count > r.remaining() {
        return Err(WireError::Truncated);
    }
    for _ in 0..floor_count {
        let dst = r.varint()? as usize;
        let floor = r.varint()?;
        links.sent_floor.insert(dst, floor);
    }
    let dedup_count = r.varint()? as usize;
    if dedup_count > r.remaining() {
        return Err(WireError::Truncated);
    }
    for _ in 0..dedup_count {
        let src = r.varint()? as usize;
        let n = r.varint()? as usize;
        if n > r.remaining() {
            return Err(WireError::Truncated);
        }
        let mut facts = BTreeSet::new();
        for _ in 0..n {
            facts.insert(read_fact(&mut r)?);
        }
        links.recv_dedup.insert(src, facts);
    }
    let transitions = r.varint()?;
    let trace_next_seq = r.varint()?;
    if r.remaining() > 0 {
        return Err(WireError::TrailingBytes);
    }
    Ok((
        NodeSnapshot {
            state,
            pending,
            ever_sent,
            links,
        },
        transitions,
        trace_next_seq,
    ))
}

fn put_worker_stats(out: &mut Vec<u8>, s: &WorkerStats) {
    put_varint(out, s.worker as u64);
    put_varint(out, s.nodes.len() as u64);
    for n in &s.nodes {
        put_value(out, n);
    }
    put_metrics(out, &s.metrics);
    put_varint(out, s.enqueued as u64);
    put_varint(out, s.buffered as u64);
    put_varint(out, s.token_passes);
    out.push(s.exhausted as u8);
    put_fault_stats(out, &s.faults);
    put_varint(out, s.link_counters.len() as u64);
    for ((src, dst), c) in &s.link_counters {
        put_varint(out, *src as u64);
        put_varint(out, *dst as u64);
        for n in [c.attempts, c.dropped, c.delivered, c.suppressed, c.buffered] {
            put_varint(out, n);
        }
    }
    put_varint(out, s.wire_bytes);
    put_varint(out, s.wire_bytes_naive);
}

#[allow(clippy::field_reassign_with_default)]
fn read_worker_stats(r: &mut Reader<'_>) -> Result<WorkerStats, WireError> {
    let mut s = WorkerStats {
        worker: r.varint()? as usize,
        ..WorkerStats::default()
    };
    let node_count = r.varint()? as usize;
    if node_count > r.remaining() {
        return Err(WireError::Truncated);
    }
    for _ in 0..node_count {
        s.nodes.push(r.value(0)?);
    }
    s.metrics = read_metrics(r)?;
    s.enqueued = r.varint()? as usize;
    s.buffered = r.varint()? as usize;
    s.token_passes = r.varint()?;
    s.exhausted = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(WireError::NonCanonical("bad bool")),
    };
    s.faults = read_fault_stats(r)?;
    let link_count = r.varint()? as usize;
    if link_count > r.remaining() {
        return Err(WireError::Truncated);
    }
    let mut links: BTreeMap<(usize, usize), LinkCounters> = BTreeMap::new();
    for _ in 0..link_count {
        let src = r.varint()? as usize;
        let dst = r.varint()? as usize;
        let mut c = LinkCounters::default();
        c.attempts = r.varint()?;
        c.dropped = r.varint()?;
        c.delivered = r.varint()?;
        c.suppressed = r.varint()?;
        c.buffered = r.varint()?;
        links.insert((src, dst), c);
    }
    s.link_counters = links;
    s.wire_bytes = r.varint()?;
    s.wire_bytes_naive = r.varint()?;
    Ok(s)
}

/// Encode a control-plane message into one frame payload.
pub(crate) fn encode_ctrl(msg: &CtrlMsg) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        CtrlMsg::Hello { version, worker } => {
            out.push(TAG_HELLO);
            put_varint(&mut out, *version as u64);
            put_varint(&mut out, *worker as u64);
        }
        CtrlMsg::Assign(a) => {
            out.push(TAG_ASSIGN);
            put_varint(&mut out, a.worker as u64);
            put_varint(&mut out, a.workers as u64);
            put_bytes(&mut out, a.spec.program.as_bytes());
            put_bytes(&mut out, a.spec.facts.as_bytes());
            put_bytes(&mut out, a.spec.strategy.as_bytes());
            put_varint(&mut out, a.spec.nodes as u64);
            put_varint(&mut out, a.spec.eval_threads as u64);
            put_varint(&mut out, a.spec.step_budget as u64);
            put_opt_str(&mut out, &a.spec.faults);
            put_opt_str(&mut out, &a.spec.trace_prefix);
            put_opt_str(&mut out, &a.spec.flight_path);
            put_varint(&mut out, a.incarnation);
            put_varint(&mut out, a.epoch);
            out.push(a.supervised as u8);
            put_owner(&mut out, &a.owner);
            put_live(&mut out, &a.live);
            put_restores(&mut out, &a.restore);
        }
        CtrlMsg::Route { dst, msg } => {
            out.push(TAG_ROUTE);
            put_varint(&mut out, *dst as u64);
            put_msg(&mut out, msg);
        }
        CtrlMsg::Deliver(msg) => {
            out.push(TAG_DELIVER);
            put_msg(&mut out, msg);
        }
        CtrlMsg::Final(f) => {
            out.push(TAG_FINAL);
            put_worker_stats(&mut out, &f.stats);
            put_varint(&mut out, f.states.len() as u64);
            for (node, state) in &f.states {
                put_value(&mut out, node);
                put_instance(&mut out, state);
            }
            out.push(f.clean as u8);
        }
        CtrlMsg::Snapshot {
            node,
            version,
            blob,
        } => {
            out.push(TAG_SNAPSHOT);
            put_varint(&mut out, *node as u64);
            put_varint(&mut out, *version);
            put_bytes(&mut out, blob);
        }
        CtrlMsg::Heartbeat { worker } => {
            out.push(TAG_HEARTBEAT);
            put_varint(&mut out, *worker as u64);
        }
    }
    out
}

/// Decode one frame payload. Strict: unknown tags, truncation and
/// trailing bytes are all errors.
pub(crate) fn decode_ctrl(bytes: &[u8]) -> Result<CtrlMsg, WireError> {
    let mut r = Reader::new(bytes);
    let msg = match r.u8()? {
        TAG_HELLO => CtrlMsg::Hello {
            version: r.varint()? as u32,
            worker: r.varint()? as usize,
        },
        TAG_ASSIGN => CtrlMsg::Assign(Assign {
            worker: r.varint()? as usize,
            workers: r.varint()? as usize,
            spec: JobSpec {
                program: r.str()?.to_string(),
                facts: r.str()?.to_string(),
                strategy: r.str()?.to_string(),
                nodes: r.varint()? as usize,
                eval_threads: r.varint()? as usize,
                step_budget: r.varint()? as usize,
                faults: read_opt_str(&mut r)?,
                trace_prefix: read_opt_str(&mut r)?,
                flight_path: read_opt_str(&mut r)?,
            },
            incarnation: r.varint()?,
            epoch: r.varint()?,
            supervised: match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::NonCanonical("bad bool")),
            },
            owner: read_owner(&mut r)?,
            live: read_live(&mut r)?,
            restore: read_restores(&mut r)?,
        }),
        TAG_ROUTE => CtrlMsg::Route {
            dst: r.varint()? as usize,
            msg: read_msg(&mut r)?,
        },
        TAG_DELIVER => CtrlMsg::Deliver(read_msg(&mut r)?),
        TAG_FINAL => {
            let stats = read_worker_stats(&mut r)?;
            let state_count = r.varint()? as usize;
            if state_count > r.remaining() {
                return Err(WireError::Truncated);
            }
            let mut states = Vec::with_capacity(state_count);
            for _ in 0..state_count {
                let node = r.value(0)?;
                let state = read_instance(&mut r)?;
                states.push((node, state));
            }
            let clean = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::NonCanonical("bad bool")),
            };
            CtrlMsg::Final(FinalReport {
                stats,
                states,
                clean,
            })
        }
        TAG_SNAPSHOT => CtrlMsg::Snapshot {
            node: r.varint()? as usize,
            version: r.varint()?,
            blob: r.prefixed_bytes()?.to_vec(),
        },
        TAG_HEARTBEAT => CtrlMsg::Heartbeat {
            worker: r.varint()? as usize,
        },
        _ => return Err(WireError::NonCanonical("unknown ctrl tag")),
    };
    if r.remaining() > 0 {
        return Err(WireError::TrailingBytes);
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wirefmt;
    use calm_common::fact::fact;
    use calm_common::value::Value;
    use calm_transducer::multiset::Multiset;

    fn round(msg: &CtrlMsg) -> CtrlMsg {
        let bytes = encode_ctrl(msg);
        // Every strict prefix of a ctrl frame must fail to decode.
        for cut in 0..bytes.len() {
            assert!(
                decode_ctrl(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        // Trailing garbage fails.
        let mut long = bytes.clone();
        long.push(7);
        assert!(decode_ctrl(&long).is_err(), "trailing byte must not decode");
        decode_ctrl(&bytes).expect("round trip")
    }

    fn spec() -> JobSpec {
        JobSpec {
            program: "@output T.\nT(x,y) :- E(x,y).".into(),
            facts: "E(1,2).".into(),
            strategy: "monotone".into(),
            nodes: 4,
            eval_threads: 2,
            step_budget: 1_000_000,
            faults: Some("seed=7,drop=0.1".into()),
            trace_prefix: Some("/tmp/run.worker3".into()),
            flight_path: None,
        }
    }

    #[test]
    fn hello_and_assign_round_trip() {
        match round(&CtrlMsg::Hello {
            version: PROTOCOL_VERSION,
            worker: 3,
        }) {
            CtrlMsg::Hello { version, worker } => {
                assert_eq!(version, PROTOCOL_VERSION);
                assert_eq!(worker, 3);
            }
            _ => panic!("wrong tag"),
        }
        let assign = Assign::new(1, 4, spec());
        match round(&CtrlMsg::Assign(assign.clone())) {
            CtrlMsg::Assign(a) => assert_eq!(a, assign),
            _ => panic!("wrong tag"),
        }
        // A recovery re-Assign: every supervision field populated.
        let reassign = Assign {
            incarnation: 2,
            epoch: 5,
            supervised: true,
            owner: Some(vec![0, 1, 0, 1]),
            live: vec![true, true, false, true],
            restore: vec![(2, 7, vec![1, 2, 3]), (6, 1, Vec::new())],
            ..Assign::new(2, 4, spec())
        };
        match round(&CtrlMsg::Assign(reassign.clone())) {
            CtrlMsg::Assign(a) => assert_eq!(a, reassign),
            _ => panic!("wrong tag"),
        }
    }

    #[test]
    fn routed_messages_round_trip_with_payloads_verbatim() {
        let mut batch: Multiset<Fact> = Multiset::new();
        batch.insert_n(fact("E", [1, 2]), 2);
        let ctx = wirefmt::TraceCtx {
            origin_node: 3,
            origin_seq: 9,
            cause: Some((1, 4)),
        };
        let payload: Arc<[u8]> = wirefmt::encode_traced(&batch, Some(&ctx)).into();
        match round(&CtrlMsg::Route {
            dst: 2,
            msg: Msg::Batch {
                node: 5,
                payload: payload.clone(),
            },
        }) {
            CtrlMsg::Route {
                dst: 2,
                msg:
                    Msg::Batch {
                        node: 5,
                        payload: p,
                    },
            } => {
                // The canonical batch bytes — trace header included —
                // survive the relay hop byte-for-byte.
                assert_eq!(&p[..], &payload[..]);
                assert_eq!(wirefmt::peek_trace(&p), Some(ctx));
            }
            _ => panic!("wrong shape"),
        }
        match round(&CtrlMsg::Deliver(Msg::Wire(Wire::Data {
            src: 1,
            dst: 6,
            seq: 44,
            payload: payload.clone(),
        }))) {
            CtrlMsg::Deliver(Msg::Wire(Wire::Data {
                src: 1,
                dst: 6,
                seq: 44,
                payload: p,
            })) => {
                assert_eq!(&p[..], &payload[..]);
            }
            _ => panic!("wrong shape"),
        }
        match round(&CtrlMsg::Deliver(Msg::Wire(Wire::Ack {
            src: 2,
            dst: 0,
            cum: 17,
        }))) {
            CtrlMsg::Deliver(Msg::Wire(Wire::Ack {
                src: 2,
                dst: 0,
                cum: 17,
            })) => {}
            _ => panic!("wrong shape"),
        }
        match round(&CtrlMsg::Deliver(Msg::Token(Token {
            count: -3,
            black: true,
            passes: 12,
            epoch: 4,
        }))) {
            CtrlMsg::Deliver(Msg::Token(t)) => {
                assert_eq!(t.count, -3);
                assert!(t.black);
                assert_eq!(t.passes, 12);
                assert_eq!(t.epoch, 4);
            }
            _ => panic!("wrong shape"),
        }
        assert!(matches!(
            round(&CtrlMsg::Deliver(Msg::Terminate)),
            CtrlMsg::Deliver(Msg::Terminate)
        ));
    }

    #[test]
    fn recovery_messages_round_trip() {
        match round(&CtrlMsg::Deliver(Msg::Reset { epoch: 9 })) {
            CtrlMsg::Deliver(Msg::Reset { epoch: 9 }) => {}
            _ => panic!("wrong shape"),
        }
        let reassign = Msg::Reassign {
            owner: vec![0, 1, 0, 1, 0, 1],
            live: vec![true, false],
            adopted: vec![(1, 3, vec![9, 9, 9]), (3, 2, vec![7])],
        };
        match round(&CtrlMsg::Deliver(reassign)) {
            CtrlMsg::Deliver(Msg::Reassign {
                owner,
                live,
                adopted,
            }) => {
                assert_eq!(owner, vec![0, 1, 0, 1, 0, 1]);
                assert_eq!(live, vec![true, false]);
                assert_eq!(adopted.len(), 2);
                assert_eq!(adopted[0], (1, 3, vec![9, 9, 9]));
                assert_eq!(adopted[1], (3, 2, vec![7]));
            }
            _ => panic!("wrong shape"),
        }
        match round(&CtrlMsg::Heartbeat { worker: 3 }) {
            CtrlMsg::Heartbeat { worker: 3 } => {}
            _ => panic!("wrong shape"),
        }
    }

    /// Build a realistic node snapshot for blob round-trip tests.
    fn snapshot_fixture(salt: u64) -> NodeSnapshot {
        let mut state = Instance::new();
        state.insert(fact("T", [salt as i64, 2]));
        state.insert(fact("Ready", ["up"]));
        let mut pending: Multiset<Fact> = Multiset::new();
        pending.insert_n(fact("E", [1, salt as i64]), 2);
        pending.insert_n(fact("E", [4, 5]), 1);
        let mut ever_sent = BTreeSet::new();
        ever_sent.insert(fact("T", [salt as i64, 2]));
        let mut links = NodeLinks::default();
        let mut entries = BTreeMap::new();
        entries.insert(
            salt + 3,
            OutEntry {
                payload: Arc::from(&[1u8, 2, 3][..]),
                naive_len: 40,
                attempt: 7, // deliberately non-zero: must NOT survive
                retry_at: 99,
                staged: false,
            },
        );
        links.out.insert(2, entries);
        links.cum.insert(0, salt);
        links.seen.insert(0, BTreeSet::from([salt + 2, salt + 4]));
        links.sent_floor.insert(2, salt + 4);
        links
            .recv_dedup
            .insert(0, BTreeSet::from([fact("E", [1, 1])]));
        NodeSnapshot {
            state,
            pending,
            ever_sent,
            links,
        }
    }

    #[test]
    fn snapshot_blobs_round_trip_and_reset_retry_timers() {
        let snap = snapshot_fixture(10);
        let blob = encode_snapshot_blob(&snap, 17, 23);
        let (back, transitions, trace_seq) = decode_snapshot_blob(&blob).expect("blob round trip");
        assert_eq!(transitions, 17);
        assert_eq!(trace_seq, 23);
        assert_eq!(back.state, snap.state);
        assert_eq!(
            back.pending
                .iter()
                .map(|(f, n)| (f.clone(), n))
                .collect::<Vec<_>>(),
            snap.pending
                .iter()
                .map(|(f, n)| (f.clone(), n))
                .collect::<Vec<_>>()
        );
        assert_eq!(back.ever_sent, snap.ever_sent);
        assert_eq!(back.links.cum, snap.links.cum);
        assert_eq!(back.links.seen, snap.links.seen);
        assert_eq!(back.links.sent_floor, snap.links.sent_floor);
        assert_eq!(back.links.recv_dedup, snap.links.recv_dedup);
        let e = &back.links.out[&2][&13];
        assert_eq!(&e.payload[..], &[1, 2, 3]);
        assert_eq!(e.naive_len, 40);
        assert!(!e.staged);
        // The dead incarnation's retry schedule is not shipped: the
        // restorer re-arms entries on its own clock.
        assert_eq!(e.attempt, 0);
        assert_eq!(e.retry_at, 0);
        // Strictness of the blob codec itself.
        for cut in 0..blob.len() {
            assert!(decode_snapshot_blob(&blob[..cut]).is_err());
        }
        let mut long = blob.clone();
        long.push(0);
        assert!(decode_snapshot_blob(&long).is_err());
    }

    /// Satellite proptest: *any* strict prefix of *any* Snapshot frame
    /// is rejected. Frames are generated from a deterministic LCG so
    /// the case set is reproducible; `round` checks every prefix cut.
    #[test]
    fn any_snapshot_frame_strict_prefix_is_rejected() {
        let mut lcg = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        for case in 0..24 {
            let snap = snapshot_fixture(next() % 1000);
            let blob = if case % 4 == 0 {
                Vec::new() // empty blob is legal at the frame layer
            } else {
                encode_snapshot_blob(&snap, next(), next())
            };
            match round(&CtrlMsg::Snapshot {
                node: (next() % 64) as usize,
                version: next(),
                blob: blob.clone(),
            }) {
                CtrlMsg::Snapshot { blob: b, .. } => assert_eq!(b, blob),
                _ => panic!("wrong tag"),
            }
        }
    }

    #[test]
    fn final_reports_round_trip() {
        let mut stats = WorkerStats {
            worker: 2,
            nodes: vec![Value::Int(2), Value::Int(6)],
            enqueued: 31,
            buffered: 0,
            token_passes: 5,
            exhausted: false,
            wire_bytes: 900,
            wire_bytes_naive: 2100,
            ..WorkerStats::default()
        };
        stats.metrics.transitions = 19;
        stats.metrics.messages_sent = 40;
        stats.metrics.by_class.fact = 40;
        stats.metrics.first_output_at = Some(3);
        stats.metrics.buffered_high_water.insert(Value::Int(2), 7);
        stats.metrics.eval.derivations = 88;
        stats.faults.attempts = 12;
        stats.faults.dropped = 2;
        stats.link_counters.insert(
            (0, 2),
            LinkCounters {
                attempts: 12,
                dropped: 2,
                delivered: 9,
                suppressed: 1,
                buffered: 0,
            },
        );
        let mut state = Instance::new();
        state.insert(fact("T", [1, 2]));
        state.insert(fact("Ready", ["up"]));
        let report = FinalReport {
            stats: stats.clone(),
            states: vec![(Value::Int(2), state.clone())],
            clean: true,
        };
        match round(&CtrlMsg::Final(report)) {
            CtrlMsg::Final(f) => {
                assert!(f.clean);
                assert_eq!(f.stats.worker, 2);
                assert_eq!(f.stats.nodes, stats.nodes);
                assert_eq!(f.stats.metrics.transitions, 19);
                assert_eq!(f.stats.metrics.by_class.fact, 40);
                assert_eq!(f.stats.metrics.first_output_at, Some(3));
                assert_eq!(f.stats.metrics.eval.derivations, 88);
                assert_eq!(f.stats.faults, stats.faults);
                assert_eq!(f.stats.link_counters, stats.link_counters);
                assert_eq!(f.stats.wire_bytes, 900);
                assert_eq!(f.states.len(), 1);
                assert_eq!(f.states[0].0, Value::Int(2));
                assert_eq!(f.states[0].1, state);
            }
            _ => panic!("wrong tag"),
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(decode_ctrl(&[99]).is_err());
        assert!(decode_ctrl(&[]).is_err());
        assert!(decode_ctrl(&[TAG_ROUTE, 0, 77]).is_err(), "unknown msg tag");
    }
}
