//! The coordinator side of the process engine: listen, spawn W
//! workers, relay their traffic, collect final states, merge
//! accounting.
//!
//! Topology is a star: every worker holds exactly one TCP connection —
//! to the coordinator — and worker-to-worker messages travel as
//! `Route` frames that the coordinator forwards as `Deliver` frames.
//! The relay preserves per-(sender, receiver) FIFO order (one reader
//! thread per source reads frames in order and appends to the
//! destination's write queue in order), which is the property Safra's
//! message counting needs: a token can never overtake the basic
//! messages sent before it on the same path.
//!
//! Crash semantics: a worker connection that ends before its `Final`
//! frame is a failed worker. The coordinator does not try to resurrect
//! it — it broadcasts `Terminate` so the surviving workers (whose token
//! ring is now broken and would otherwise block forever) finish up and
//! report, then returns a non-quiescent result listing the failures.
//! Non-quiescent termination fires the flight-recorder trigger, so a
//! killed worker produces a dump, not a hang.

use super::proto::{
    decode_ctrl, encode_ctrl, Assign, CtrlMsg, FinalReport, JobSpec, PROTOCOL_VERSION,
};
use super::{frame, NetError};
use crate::executor::Msg;
use crate::faults::{FaultStats, LinkCounters};
use crate::WorkerStats;
use calm_common::instance::Instance;
use calm_obs::{ArgValue, Obs};
use calm_transducer::network::NodeId;
use calm_transducer::runtime::Metrics;
use std::collections::BTreeMap;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Ephemeral-port binding is retried: a transient `EADDRINUSE` (the OS
/// briefly exhausting the ephemeral range under parallel test load)
/// should not fail the run.
const BIND_RETRIES: u32 = 5;
const BIND_BACKOFF: Duration = Duration::from_millis(50);

/// How long the coordinator waits for all W workers to connect and say
/// hello. Covers process spawn latency; a worker that dies before
/// connecting surfaces here.
const HANDSHAKE_DEADLINE: Duration = Duration::from_secs(30);

/// Per-stream timeout for the `Hello` frame once a connection is
/// accepted (a connected-but-silent peer must not stall the others).
const HELLO_TIMEOUT: Duration = Duration::from_secs(10);

/// After a worker failure, how long the coordinator waits for the
/// survivors to honor the `Terminate` broadcast and report their
/// finals before giving up on them too.
const DRAIN_DEADLINE: Duration = Duration::from_secs(30);

/// Poll granularity of the event loop.
const TICK: Duration = Duration::from_millis(50);

/// Parameters of a process-engine run.
pub struct ProcessConfig {
    /// Worker processes. Clamped to `[1, |N|]` like the threaded
    /// engine's worker count.
    pub procs: usize,
    /// The job, handed to every worker. `trace_prefix` / `flight_path`
    /// here are the *base* paths; the coordinator suffixes them per
    /// worker (`PREFIX.worker3`, plus `.rN` per respawn) before sending
    /// each `Assign`, so concurrent writers never share a file.
    pub spec: JobSpec,
    /// Respawns allowed per ring position before its shard is adopted
    /// by survivors. `0` disables supervision entirely: no snapshot
    /// retention, no heartbeats, and a worker death aborts the run the
    /// PR 8 way (Terminate broadcast, non-quiescent result, flight
    /// dump).
    pub respawn_budget: u32,
    /// Backoff before the first respawn of a position; doubled on each
    /// further respawn of the same position.
    pub respawn_backoff: Duration,
    /// How long the handshake barrier waits for all W workers to
    /// connect *and* say Hello. A worker that misses it is named in the
    /// error (nonzero exit, never a hang).
    pub handshake_deadline: Duration,
    /// Supervised runs only: a worker whose last frame (heartbeats
    /// count) is older than this is declared hung, killed, and handled
    /// exactly like a dead socket. `None` disables the check.
    pub liveness_timeout: Option<Duration>,
}

impl ProcessConfig {
    /// `procs` workers with default supervision: a small respawn
    /// budget, exponential backoff from 100ms, the standard handshake
    /// deadline, and a 10s liveness timeout.
    pub fn new(procs: usize, spec: JobSpec) -> ProcessConfig {
        ProcessConfig {
            procs,
            spec,
            respawn_budget: 3,
            respawn_backoff: Duration::from_millis(100),
            handshake_deadline: HANDSHAKE_DEADLINE,
            liveness_timeout: Some(Duration::from_secs(10)),
        }
    }

    /// Override the respawn budget (0 restores the PR 8 abort path).
    pub fn with_respawn_budget(mut self, budget: u32) -> ProcessConfig {
        self.respawn_budget = budget;
        self
    }

    /// Override the handshake barrier deadline.
    pub fn with_handshake_deadline(mut self, deadline: Duration) -> ProcessConfig {
        self.handshake_deadline = deadline;
        self
    }
}

/// A spawned worker, however it was started: a real OS process (the
/// CLI re-invoking its own binary as `calm net-worker`) or a thread
/// driving [`run_net_worker`](super::run_net_worker) directly (the
/// equivalence tests, which still exercise real TCP sockets).
pub enum SpawnHandle {
    /// An OS child process.
    Process(std::process::Child),
    /// An in-process worker thread.
    Thread(std::thread::JoinHandle<()>),
}

/// Starts worker `k`, telling it the coordinator's address.
pub type Spawner<'a> = dyn Fn(usize, &str) -> Result<SpawnHandle, String> + 'a;

/// The result of a process-engine run. Same accounting as
/// [`ThreadedRunResult`](crate::ThreadedRunResult) minus the output
/// instance: the transport is program-agnostic, so the caller (which
/// knows the output schema) projects `out(R)` from `states`.
#[derive(Debug)]
pub struct ProcessRunResult {
    /// Final per-node states (missing the nodes of failed workers).
    pub states: BTreeMap<NodeId, Instance>,
    /// Merged run counters (fold of per-worker metrics in worker
    /// order).
    pub metrics: Metrics,
    /// Per-worker accounting, in worker order; failed workers are
    /// absent.
    pub per_worker: Vec<WorkerStats>,
    /// Every worker reported, clean. `false` whenever `failed_workers`
    /// is non-empty.
    pub quiescent: bool,
    /// Workers whose connection ended before their `Final` frame (or
    /// that never honored the drain deadline) and whose shard could not
    /// be recovered. Empty when every death was absorbed by a respawn
    /// or an adoption.
    pub failed_workers: Vec<usize>,
    /// Ring positions whose respawn budget ran out and whose shard was
    /// re-assigned to survivors (graceful degradation — the run can
    /// still be quiescent and byte-identical).
    pub adopted_workers: Vec<usize>,
    /// Worker processes respawned by the supervisor over the run.
    pub respawns: u64,
    /// Merged fault counters. Each failed worker adds one `crashes`
    /// tick on top of whatever the survivors report.
    pub faults: FaultStats,
    /// Merged per-link wire accounting.
    pub link_counters: BTreeMap<(usize, usize), LinkCounters>,
    /// Merged delta-encoded payload bytes (workers count them exactly
    /// as the threaded engine does — the transport framing itself is
    /// not payload and is not counted).
    pub wire_bytes: u64,
    /// Merged pre-v2 baseline bytes.
    pub wire_bytes_naive: u64,
}

impl ProcessRunResult {
    /// Total ring hops across workers.
    pub fn token_passes(&self) -> u64 {
        self.per_worker.iter().map(|w| w.token_passes).sum()
    }
}

// Short-lived channel payloads, one in flight per worker thread — the
// variant size spread does not matter.
#[allow(clippy::large_enum_variant)]
enum Event {
    /// `(worker, incarnation, report)` — a final report. The
    /// incarnation tag lets the supervisor ignore frames from an
    /// incarnation it already replaced.
    Final(usize, u64, FinalReport),
    /// The connection ended (cleanly or not) — only a failure if no
    /// `Final` was seen first from the *same* incarnation.
    Gone(usize, u64, String),
    /// `(worker, node, version, blob)` — a shipped checkpoint to
    /// retain (keep the highest version per node).
    Snapshot(usize, usize, u64, Vec<u8>),
    /// Liveness beacon from a worker.
    Heartbeat(usize),
    /// A relayed `Route` carried `Msg::Terminate`: the ring concluded.
    /// A death after this point only needs a respawn + immediate
    /// Terminate (no ring recovery — the survivors are already gone).
    TerminateSeen,
}

fn bind_with_retry() -> Result<TcpListener, NetError> {
    let mut last: Option<std::io::Error> = None;
    for _ in 0..BIND_RETRIES {
        match TcpListener::bind("127.0.0.1:0") {
            Ok(l) => return Ok(l),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(BIND_BACKOFF);
            }
        }
    }
    Err(NetError::Listen(last.expect("at least one bind attempt")))
}

fn suffixed(base: &Option<String>, worker: usize, incarnation: u64) -> Option<String> {
    base.as_ref().map(|p| {
        if incarnation == 0 {
            format!("{p}.worker{worker}")
        } else {
            // A respawn must not clobber the dead incarnation's dump —
            // that file is the post-mortem.
            format!("{p}.worker{worker}.r{incarnation}")
        }
    })
}

/// Accept one connection and read its `Hello`, enforcing the protocol
/// version. The per-stream read timeout is capped by the remaining
/// barrier time, so a connected-but-silent peer cannot stall past the
/// deadline.
/// One accepted connection's Hello verdict: a worker that spoke, or a
/// dud connection (connected, then hung up / went silent) that should
/// not doom the barrier while the deadline still has time on it.
enum HelloOutcome {
    Worker(usize, TcpStream),
    Dud(String),
}

fn accept_hello(listener: &TcpListener, deadline: Instant) -> Result<HelloOutcome, NetError> {
    let mut stream = loop {
        match listener.accept() {
            Ok((s, _)) => break s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() > deadline {
                    return Err(NetError::Handshake("never connected".into()));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(NetError::Listen(e)),
        }
    };
    stream.set_nonblocking(false).map_err(NetError::Listen)?;
    stream.set_nodelay(true).ok();
    let remaining = deadline
        .saturating_duration_since(Instant::now())
        .max(Duration::from_millis(10));
    stream
        .set_read_timeout(Some(remaining.min(HELLO_TIMEOUT)))
        .ok();
    // A connection that never produces a Hello frame is a dud, not a
    // fatal barrier failure: other workers may still be dialing in, and
    // the barrier's own deadline decides when to give up.
    let payload = match frame::read_frame(&mut stream) {
        Ok(p) => p,
        Err(e) => return Ok(HelloOutcome::Dud(format!("hello frame: {e}"))),
    };
    let (version, worker) = match decode_ctrl(&payload) {
        Ok(CtrlMsg::Hello { version, worker }) => (version, worker),
        Ok(_) => return Err(NetError::Handshake("first frame was not Hello".into())),
        Err(e) => return Err(NetError::Handshake(format!("hello did not decode: {e}"))),
    };
    if version != PROTOCOL_VERSION {
        return Err(NetError::Handshake(format!(
            "worker {worker} speaks protocol v{version}, coordinator v{PROTOCOL_VERSION}"
        )));
    }
    stream.set_read_timeout(None).ok();
    Ok(HelloOutcome::Worker(worker, stream))
}

/// Accept `workers` connections and read each one's `Hello`, enforcing
/// protocol version and index uniqueness. Returns streams indexed by
/// worker. Any failure names the ring positions still missing, so a
/// worker that never connects — or connects and never speaks — produces
/// a diagnosable error, not a hang.
fn handshake(
    listener: &TcpListener,
    workers: usize,
    deadline: Duration,
) -> Result<Vec<TcpStream>, NetError> {
    listener.set_nonblocking(true).map_err(NetError::Listen)?;
    let deadline = Instant::now() + deadline;
    let mut streams: Vec<Option<TcpStream>> = (0..workers).map(|_| None).collect();
    let mut connected = 0usize;
    let mut last_dud: Option<String> = None;
    while connected < workers {
        let missing: Vec<String> = streams
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(k, _)| k.to_string())
            .collect();
        let (worker, stream) = match accept_hello(listener, deadline) {
            Ok(HelloOutcome::Worker(w, s)) => (w, s),
            Ok(HelloOutcome::Dud(why)) => {
                // A connection that went silent before Hello. Keep
                // accepting (the real worker may still be coming) until
                // the barrier deadline names whoever never made it.
                last_dud = Some(why);
                continue;
            }
            Err(NetError::Handshake(msg)) => {
                let msg = match &last_dud {
                    Some(dud) => format!("{msg} (a connection stalled earlier: {dud})"),
                    None => msg,
                };
                return Err(NetError::Handshake(format!(
                    "worker(s) {} missing from the handshake barrier: {msg}",
                    missing.join(",")
                )));
            }
            Err(e) => return Err(e),
        };
        if worker >= workers {
            return Err(NetError::Handshake(format!(
                "worker index {worker} out of range (W = {workers})"
            )));
        }
        if streams[worker].is_some() {
            return Err(NetError::Handshake(format!(
                "duplicate worker index {worker}"
            )));
        }
        streams[worker] = Some(stream);
        connected += 1;
    }
    Ok(streams
        .into_iter()
        .map(|s| s.expect("all connected"))
        .collect())
}

/// Lock the shared writer table, recovering from poisoning. A relay
/// thread that panics while holding this lock must degrade into the
/// counted link-fault path — its traffic is lost and re-covered by the
/// senders' retransmissions — not poison every other relay and abort
/// the coordinator. The table stays structurally valid across a
/// poisoned section: it only ever sees whole-`Sender` pushes and
/// single-slot swaps, never a partially-written entry.
fn lock_writers(
    writers: &Mutex<Vec<Sender<Vec<u8>>>>,
) -> std::sync::MutexGuard<'_, Vec<Sender<Vec<u8>>>> {
    writers
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One worker's relay reader: decode frames and forward. `Route`
/// frames go straight onto the destination's write queue (single
/// reader per source + in-order queue append = per-link FIFO through
/// the star). `Final` goes to the collector. Any transport or protocol
/// error ends the stream and reports `Gone`.
fn relay_reader(
    src: usize,
    incarnation: u64,
    mut stream: TcpStream,
    writers: Arc<Mutex<Vec<Sender<Vec<u8>>>>>,
    events: Sender<Event>,
) {
    let why = loop {
        let payload = match frame::read_frame(&mut stream) {
            Ok(p) => p,
            Err(frame::FrameError::Closed) => break "closed".to_string(),
            Err(e) => break e.to_string(),
        };
        match decode_ctrl(&payload) {
            Ok(CtrlMsg::Route { dst, msg }) => {
                if matches!(msg, Msg::Terminate) {
                    let _ = events.send(Event::TerminateSeen);
                }
                // The writer table is shared so a respawn can swap in
                // the new incarnation's queue: routes resolve at
                // delivery time, never against a stale snapshot of the
                // fabric. A send to a dead worker's queue fails; the
                // loss is re-covered by the sender's retransmissions.
                let writers = lock_writers(&writers);
                if dst >= writers.len() {
                    break format!("route to out-of-range worker {dst}");
                }
                let _ = writers[dst].send(encode_ctrl(&CtrlMsg::Deliver(msg)));
            }
            Ok(CtrlMsg::Final(report)) => {
                let _ = events.send(Event::Final(src, incarnation, report));
            }
            Ok(CtrlMsg::Snapshot {
                node,
                version,
                blob,
            }) => {
                let _ = events.send(Event::Snapshot(src, node, version, blob));
            }
            Ok(CtrlMsg::Heartbeat { .. }) => {
                let _ = events.send(Event::Heartbeat(src));
            }
            Ok(_) => break "out-of-phase control frame".to_string(),
            Err(e) => break format!("frame did not decode: {e}"),
        }
    };
    let _ = events.send(Event::Gone(src, incarnation, why));
}

/// One worker's relay writer: drain the queue onto the socket. A write
/// failure ends the thread — the reader side of the same worker
/// reports the loss.
fn relay_writer(mut stream: TcpStream, queue: std::sync::mpsc::Receiver<Vec<u8>>) {
    while let Ok(payload) = queue.recv() {
        if frame::write_frame(&mut stream, &payload).is_err() {
            break;
        }
    }
}

/// Reap a spawn handle: give an OS child a moment to exit on its own
/// (workers exit right after their `Final`), then kill it; join
/// threads (unblocked by the stream shutdowns that precede reaping).
fn reap(handle: SpawnHandle) {
    match handle {
        SpawnHandle::Process(mut child) => {
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => return,
                    Ok(None) if Instant::now() > deadline => {
                        let _ = child.kill();
                        let _ = child.wait();
                        return;
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                    Err(_) => return,
                }
            }
        }
        SpawnHandle::Thread(handle) => {
            let _ = handle.join();
        }
    }
}

/// Run a transducer network as `cfg.procs` worker processes plus this
/// coordinator. Spawns workers with `spawner`, performs the handshake
/// barrier (every `Assign` is sent only after *all* workers said
/// hello, so every relay target exists before any traffic flows),
/// relays until all finals are in, and merges exactly like the
/// threaded engine's join — same fold, same worker order, so the
/// merged metrics are deterministic given the per-worker values.
pub fn run_process(
    cfg: &ProcessConfig,
    spawner: &Spawner<'_>,
    obs: &Obs,
) -> Result<ProcessRunResult, NetError> {
    let workers = cfg.procs.clamp(1, cfg.spec.nodes.max(1));
    let listener = bind_with_retry()?;
    let addr = listener.local_addr().map_err(NetError::Listen)?.to_string();

    obs.event("net", "executor_start", 0, || {
        vec![
            ("workers", ArgValue::U64(workers as u64)),
            ("nodes", ArgValue::U64(cfg.spec.nodes as u64)),
            ("engine", ArgValue::Str("process".into())),
        ]
    });

    let mut handles: Vec<SpawnHandle> = Vec::with_capacity(workers);
    for k in 0..workers {
        match spawner(k, &addr) {
            Ok(h) => handles.push(h),
            Err(e) => {
                // Kill what we started; the partial fleet would
                // otherwise sit in connect-retry until its own timeout.
                drop(listener);
                for h in handles {
                    reap(h);
                }
                return Err(NetError::Spawn(format!("worker {k}: {e}")));
            }
        }
    }

    let supervised = cfg.respawn_budget > 0;
    let streams = match handshake(&listener, workers, cfg.handshake_deadline) {
        Ok(s) => s,
        Err(e) => {
            for h in handles {
                reap(h);
            }
            return Err(e);
        }
    };

    // Handshake barrier passed: hand every worker its assignment.
    let mut reader_streams = Vec::with_capacity(workers);
    let mut writer_streams = Vec::with_capacity(workers);
    for (k, mut stream) in streams.into_iter().enumerate() {
        let mut a = Assign::new(
            k,
            workers,
            JobSpec {
                trace_prefix: suffixed(&cfg.spec.trace_prefix, k, 0),
                flight_path: suffixed(&cfg.spec.flight_path, k, 0),
                ..cfg.spec.clone()
            },
        );
        a.supervised = supervised;
        if let Err(e) = frame::write_frame(&mut stream, &encode_ctrl(&CtrlMsg::Assign(a))) {
            for h in handles {
                reap(h);
            }
            return Err(NetError::Handshake(format!("assign to worker {k}: {e}")));
        }
        let clone = match stream.try_clone() {
            Ok(c) => c,
            Err(e) => {
                for h in handles {
                    reap(h);
                }
                return Err(NetError::Listen(e));
            }
        };
        reader_streams.push(stream);
        writer_streams.push(clone);
    }

    // Relay fabric: per-worker writer queues + per-worker readers. The
    // writer table sits behind a shared lock so a respawn can swap the
    // dead position's queue for the new incarnation's.
    let writer_txs: Arc<Mutex<Vec<Sender<Vec<u8>>>>> =
        Arc::new(Mutex::new(Vec::with_capacity(workers)));
    let mut writer_threads = Vec::with_capacity(workers);
    for stream in writer_streams {
        let (tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
        lock_writers(&writer_txs).push(tx);
        writer_threads.push(std::thread::spawn(move || relay_writer(stream, rx)));
    }
    let (events_tx, events_rx) = std::sync::mpsc::channel::<Event>();
    let mut reader_threads = Vec::with_capacity(workers);
    let mut shutdown_streams = Vec::with_capacity(workers);
    for (k, stream) in reader_streams.into_iter().enumerate() {
        shutdown_streams.push(stream.try_clone().ok());
        let writers = writer_txs.clone();
        let events = events_tx.clone();
        reader_threads.push(std::thread::spawn(move || {
            relay_reader(k, 0, stream, writers, events)
        }));
    }
    // The supervisor keeps a sender for respawned readers; without
    // supervision the receiver disconnects once every reader exits,
    // exactly as before.
    let respawn_events_tx = supervised.then(|| events_tx.clone());
    drop(events_tx);

    // Supervisor state. Without supervision (budget 0) everything
    // below degenerates to the old collect-finals loop: a death fails
    // the run, Terminate is broadcast, survivors drain.
    let mut finals: Vec<Option<FinalReport>> = (0..workers).map(|_| None).collect();
    let mut failed: Vec<usize> = Vec::new();
    let mut adopted_workers: Vec<usize> = Vec::new();
    let mut incarnation: Vec<u64> = vec![0; workers];
    let mut respawns_left: Vec<u32> = vec![cfg.respawn_budget; workers];
    let mut last_seen: Vec<Instant> = vec![Instant::now(); workers];
    let mut handles: Vec<Option<SpawnHandle>> = handles.into_iter().map(Some).collect();
    let mut live: Vec<bool> = vec![true; workers];
    let mut owner: Vec<usize> = (0..cfg.spec.nodes).map(|g| g % workers).collect();
    let mut retained: BTreeMap<usize, (u64, Vec<u8>)> = BTreeMap::new();
    let mut ring_epoch: u64 = 0;
    let mut terminate_seen = false;
    let mut respawn_count: u64 = 0;
    let mut downs: u64 = 0;
    let mut terminated = false;
    let mut drain_deadline: Option<Instant> = None;

    // Enqueue one encoded frame for worker `k`'s writer. A dead
    // position's queue swallows the send; the substrate's
    // retransmissions re-cover the loss.
    let push_to = |k: usize, payload: Vec<u8>| {
        let txs = lock_writers(&writer_txs);
        if k < txs.len() {
            let _ = txs[k].send(payload);
        }
    };

    loop {
        let done = (0..workers)
            .filter(|&w| finals[w].is_some() || !live[w] || failed.contains(&w))
            .count();
        if done >= workers {
            break;
        }
        if drain_deadline.is_some_and(|d| Instant::now() > d) {
            // Survivors that never honored the Terminate are failures
            // too.
            for (k, f) in finals.iter().enumerate() {
                if f.is_none() && live[k] && !failed.contains(&k) {
                    failed.push(k);
                }
            }
            break;
        }
        match events_rx.recv_timeout(TICK) {
            Ok(Event::Final(k, inc, report)) => {
                if inc == incarnation[k] {
                    last_seen[k] = Instant::now();
                    finals[k] = Some(report);
                }
            }
            Ok(Event::Snapshot(src, node, version, blob)) => {
                last_seen[src] = Instant::now();
                let entry = retained
                    .entry(node)
                    .or_insert_with(|| (version, Vec::new()));
                if version >= entry.0 {
                    *entry = (version, blob);
                }
            }
            Ok(Event::Heartbeat(src)) => last_seen[src] = Instant::now(),
            Ok(Event::TerminateSeen) => terminate_seen = true,
            Ok(Event::Gone(k, inc, why)) => {
                if inc != incarnation[k] || finals[k].is_some() || !live[k] || failed.contains(&k) {
                    continue; // zombie frame, clean close, or already handled
                }
                downs += 1;
                obs.event("net", "worker_down", k as u32 + 1, || {
                    vec![
                        ("worker", ArgValue::U64(k as u64)),
                        ("incarnation", ArgValue::U64(inc)),
                        ("reason", ArgValue::Str(why.clone())),
                    ]
                });
                if !supervised {
                    // The PR 8 abort path, unchanged: fail the run,
                    // break the survivors out of the ring, drain.
                    failed.push(k);
                    if !terminated {
                        terminated = true;
                        let term = encode_ctrl(&CtrlMsg::Deliver(Msg::Terminate));
                        for w in 0..workers {
                            push_to(w, term.clone());
                        }
                    }
                    drain_deadline = Some(Instant::now() + DRAIN_DEADLINE);
                    continue;
                }

                // Fence the ring for the crash window: bump the epoch
                // so tokens written to the dead socket die stale, and
                // every survivor blackens and withholds conclusions
                // until the post-recovery reset.
                ring_epoch += 1;
                let reset = encode_ctrl(&CtrlMsg::Deliver(Msg::Reset { epoch: ring_epoch }));
                for (w, &alive) in live.iter().enumerate() {
                    if w != k && alive {
                        push_to(w, reset.clone());
                    }
                }

                // Respawn with exponential backoff until one attempt
                // sticks or the budget runs out.
                let mut recovered = false;
                while !recovered && respawns_left[k] > 0 {
                    respawns_left[k] -= 1;
                    respawn_count += 1;
                    let attempt = cfg.respawn_budget - respawns_left[k];
                    if let Some(h) = handles[k].take() {
                        reap(h);
                    }
                    std::thread::sleep(
                        cfg.respawn_backoff * 2u32.saturating_pow(attempt.saturating_sub(1).min(8)),
                    );
                    incarnation[k] += 1;
                    let inc = incarnation[k];
                    let handle = match spawner(k, &addr) {
                        Ok(h) => h,
                        Err(_) => continue,
                    };
                    handles[k] = Some(handle);
                    let deadline = Instant::now() + cfg.handshake_deadline;
                    let mut stream = match accept_hello(&listener, deadline) {
                        Ok(HelloOutcome::Worker(w, s)) if w == k => s,
                        _ => continue,
                    };
                    // Recovery epoch: minted into the re-Assign and
                    // broadcast once the new incarnation is wired in.
                    ring_epoch += 1;
                    let restore: Vec<(usize, u64, Vec<u8>)> = (0..owner.len())
                        .filter(|&g| owner[g] == k)
                        .filter_map(|g| retained.get(&g).map(|(v, b)| (g, *v, b.clone())))
                        .collect();
                    let restored_nodes = restore.len() as u64;
                    let mut a = Assign::new(
                        k,
                        workers,
                        JobSpec {
                            trace_prefix: suffixed(&cfg.spec.trace_prefix, k, inc),
                            flight_path: suffixed(&cfg.spec.flight_path, k, inc),
                            ..cfg.spec.clone()
                        },
                    );
                    a.supervised = true;
                    a.incarnation = inc;
                    a.epoch = ring_epoch;
                    a.owner = Some(owner.clone());
                    a.live = live.clone();
                    a.restore = restore;
                    if frame::write_frame(&mut stream, &encode_ctrl(&CtrlMsg::Assign(a))).is_err() {
                        continue;
                    }
                    let write_half = match stream.try_clone() {
                        Ok(c) => c,
                        Err(_) => continue,
                    };
                    // Swap the write queue: the dead incarnation's
                    // queue dies with its writer thread, silently
                    // discarding crash-window traffic (the senders'
                    // outbox obligations replay it).
                    let (tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
                    lock_writers(&writer_txs)[k] = tx;
                    writer_threads.push(std::thread::spawn(move || relay_writer(write_half, rx)));
                    shutdown_streams[k] = stream.try_clone().ok();
                    let writers = writer_txs.clone();
                    let events = respawn_events_tx.clone().expect("supervised");
                    reader_threads.push(std::thread::spawn(move || {
                        relay_reader(k, inc, stream, writers, events)
                    }));
                    last_seen[k] = Instant::now();
                    // Recovery complete: reset the ring in the new
                    // epoch so the initiator relaunches the probe.
                    let reset = encode_ctrl(&CtrlMsg::Deliver(Msg::Reset { epoch: ring_epoch }));
                    for (w, &alive) in live.iter().enumerate() {
                        if alive {
                            push_to(w, reset.clone());
                        }
                    }
                    if terminate_seen {
                        // The ring already concluded; the respawn only
                        // needs to flush its restored states.
                        push_to(k, encode_ctrl(&CtrlMsg::Deliver(Msg::Terminate)));
                    }
                    obs.event("net", "worker_respawn", k as u32 + 1, || {
                        vec![
                            ("worker", ArgValue::U64(k as u64)),
                            ("incarnation", ArgValue::U64(inc)),
                            ("restored_nodes", ArgValue::U64(restored_nodes)),
                            ("epoch", ArgValue::U64(ring_epoch)),
                        ]
                    });
                    recovered = true;
                }

                if !recovered {
                    // Budget exhausted: degrade gracefully. Remove the
                    // position from the ring and hand its shard —
                    // latest retained snapshot per node — to the
                    // survivors, round-robin.
                    live[k] = false;
                    incarnation[k] += 1; // fence stragglers
                    let survivors: Vec<usize> = (0..workers)
                        .filter(|&w| live[w] && finals[w].is_none() && !failed.contains(&w))
                        .collect();
                    if survivors.is_empty() {
                        failed.push(k);
                        if !terminated {
                            terminated = true;
                            let term = encode_ctrl(&CtrlMsg::Deliver(Msg::Terminate));
                            for w in 0..workers {
                                push_to(w, term.clone());
                            }
                        }
                        drain_deadline = Some(Instant::now() + DRAIN_DEADLINE);
                    } else {
                        adopted_workers.push(k);
                        let mut blobs: BTreeMap<usize, Vec<(usize, u64, Vec<u8>)>> =
                            BTreeMap::new();
                        let mut rr = 0usize;
                        for (g, o) in owner.iter_mut().enumerate() {
                            if *o == k {
                                let w = survivors[rr % survivors.len()];
                                rr += 1;
                                *o = w;
                                let handed = retained.get(&g).map(|(v, b)| (g, *v, b.clone()));
                                blobs.entry(w).or_default().extend(handed);
                            }
                        }
                        ring_epoch += 1;
                        for &w in &survivors {
                            // Reassign before Reset, per-link FIFO: the
                            // adoptive worker installs its new shard,
                            // then joins the fresh ring epoch.
                            let msg = Msg::Reassign {
                                owner: owner.clone(),
                                live: live.clone(),
                                adopted: blobs.remove(&w).unwrap_or_default(),
                            };
                            push_to(w, encode_ctrl(&CtrlMsg::Deliver(msg)));
                            push_to(
                                w,
                                encode_ctrl(&CtrlMsg::Deliver(Msg::Reset { epoch: ring_epoch })),
                            );
                        }
                        obs.event("net", "reassign", k as u32 + 1, || {
                            vec![
                                ("worker", ArgValue::U64(k as u64)),
                                ("survivors", ArgValue::U64(survivors.len() as u64)),
                                ("epoch", ArgValue::U64(ring_epoch)),
                            ]
                        });
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                // Liveness sweep: a connected-but-silent worker past
                // the timeout is killed and recovered like a dead
                // socket (its reader reports Gone).
                if let (true, Some(lt)) = (supervised, cfg.liveness_timeout) {
                    for w in 0..workers {
                        if live[w]
                            && finals[w].is_none()
                            && !failed.contains(&w)
                            && last_seen[w].elapsed() > lt
                        {
                            obs.event("net", "worker_hung", w as u32 + 1, || {
                                vec![
                                    ("worker", ArgValue::U64(w as u64)),
                                    ("incarnation", ArgValue::U64(incarnation[w])),
                                ]
                            });
                            last_seen[w] = Instant::now();
                            if let Some(s) = &shutdown_streams[w] {
                                let _ = s.shutdown(std::net::Shutdown::Both);
                            }
                            if let Some(SpawnHandle::Process(child)) = handles[w].as_mut() {
                                let _ = child.kill();
                            }
                        }
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    failed.sort_unstable();
    adopted_workers.sort_unstable();

    // Teardown: close every stream (unblocks workers parked in recv and
    // our own reader threads), join readers, drop the write-queue table
    // (the readers' clones go with them), join writers, reap.
    for s in shutdown_streams.iter().flatten() {
        let _ = s.shutdown(std::net::Shutdown::Both);
    }
    drop(respawn_events_tx);
    for t in reader_threads {
        let _ = t.join();
    }
    drop(writer_txs);
    for t in writer_threads {
        let _ = t.join();
    }
    for h in handles.into_iter().flatten() {
        reap(h);
    }

    // Deterministic join: the same fold as the threaded engine, in
    // worker order.
    let mut metrics = Metrics::default();
    let mut states: BTreeMap<NodeId, Instance> = BTreeMap::new();
    let mut per_worker = Vec::new();
    let mut quiescent = failed.is_empty();
    let mut token_passes = 0u64;
    let mut faults = FaultStats::default();
    let mut link_counters: BTreeMap<(usize, usize), LinkCounters> = BTreeMap::new();
    let mut wire_bytes = 0u64;
    let mut wire_bytes_naive = 0u64;
    for report in finals.into_iter().flatten() {
        metrics.merge(&report.stats.metrics);
        quiescent &= report.clean;
        token_passes += report.stats.token_passes;
        faults.merge(&report.stats.faults);
        wire_bytes += report.stats.wire_bytes;
        wire_bytes_naive += report.stats.wire_bytes_naive;
        for (link, counters) in &report.stats.link_counters {
            link_counters.entry(*link).or_default().merge(counters);
        }
        for (node, state) in report.states {
            states.insert(node, state);
        }
        per_worker.push(report.stats);
    }
    // Every death counts as a crash, whether supervision absorbed it or
    // not; the unsupervised path has no `downs` beyond the failures.
    faults.crashes += if supervised {
        downs
    } else {
        failed.len() as u64
    };

    obs.event("net", "termination", 0, || {
        vec![
            ("quiescent", ArgValue::Bool(quiescent)),
            ("token_passes", ArgValue::U64(token_passes)),
            ("workers", ArgValue::U64(workers as u64)),
        ]
    });
    if cfg.spec.faults.is_some() && obs.enabled() {
        for (name, value) in faults.as_pairs() {
            obs.counter("net", &format!("faults.{name}"), value);
        }
        obs.event("net", "fault_summary", 0, || {
            vec![
                ("attempts", ArgValue::U64(faults.attempts)),
                ("retransmissions", ArgValue::U64(faults.retransmissions)),
                (
                    "duplicates_suppressed",
                    ArgValue::U64(faults.duplicates_suppressed),
                ),
                ("dropped", ArgValue::U64(faults.dropped)),
                ("crashes", ArgValue::U64(faults.crashes)),
                ("snapshots", ArgValue::U64(faults.snapshots)),
                ("retry_exhausted", ArgValue::U64(faults.retry_exhausted)),
            ]
        });
    }
    if obs.enabled() {
        obs.counter("net", "wire.bytes", wire_bytes);
        obs.counter("net", "wire.bytes_naive", wire_bytes_naive);
        obs.event("runtime", "run_summary", 0, || {
            vec![
                ("quiescent", ArgValue::Bool(quiescent)),
                ("transitions", ArgValue::U64(metrics.transitions as u64)),
                ("heartbeats", ArgValue::U64(metrics.heartbeats as u64)),
                ("messages_sent", ArgValue::U64(metrics.messages_sent as u64)),
                (
                    "messages_delivered",
                    ArgValue::U64(metrics.messages_delivered as u64),
                ),
                (
                    "max_queue_depth",
                    ArgValue::U64(metrics.max_queue_depth() as u64),
                ),
            ]
        });
    }

    Ok(ProcessRunResult {
        states,
        metrics,
        per_worker,
        quiescent,
        failed_workers: failed,
        adopted_workers,
        respawns: respawn_count,
        faults,
        link_counters,
        wire_bytes,
        wire_bytes_naive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Panic-injection regression for the lock-poisoning aborts: a
    /// relay thread dying mid-critical-section used to turn every
    /// subsequent `expect("writer table")` into a coordinator panic.
    /// `lock_writers` must recover the table and keep routing.
    #[test]
    fn writer_table_survives_poisoning() {
        let writers: Arc<Mutex<Vec<Sender<Vec<u8>>>>> = Arc::new(Mutex::new(Vec::new()));
        let (tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
        lock_writers(&writers).push(tx);

        // Inject a panic while the lock is held, as a crashing relay
        // thread would.
        let poisoner = writers.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("injected relay panic");
        })
        .join();
        assert!(writers.is_poisoned(), "injection must poison the mutex");

        // Every post-poison access pattern used by the coordinator
        // still works: route lookup + send, respawn slot swap, push.
        {
            let table = lock_writers(&writers);
            assert_eq!(table.len(), 1);
            table[0].send(b"frame".to_vec()).unwrap();
        }
        assert_eq!(rx.recv().unwrap(), b"frame");
        let (tx2, rx2) = std::sync::mpsc::channel::<Vec<u8>>();
        lock_writers(&writers)[0] = tx2;
        lock_writers(&writers)[0]
            .send(b"after swap".to_vec())
            .unwrap();
        assert_eq!(rx2.recv().unwrap(), b"after swap");
        assert!(rx.try_recv().is_err(), "old incarnation queue is dead");
    }
}
