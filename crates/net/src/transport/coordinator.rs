//! The coordinator side of the process engine: listen, spawn W
//! workers, relay their traffic, collect final states, merge
//! accounting.
//!
//! Topology is a star: every worker holds exactly one TCP connection —
//! to the coordinator — and worker-to-worker messages travel as
//! `Route` frames that the coordinator forwards as `Deliver` frames.
//! The relay preserves per-(sender, receiver) FIFO order (one reader
//! thread per source reads frames in order and appends to the
//! destination's write queue in order), which is the property Safra's
//! message counting needs: a token can never overtake the basic
//! messages sent before it on the same path.
//!
//! Crash semantics: a worker connection that ends before its `Final`
//! frame is a failed worker. The coordinator does not try to resurrect
//! it — it broadcasts `Terminate` so the surviving workers (whose token
//! ring is now broken and would otherwise block forever) finish up and
//! report, then returns a non-quiescent result listing the failures.
//! Non-quiescent termination fires the flight-recorder trigger, so a
//! killed worker produces a dump, not a hang.

use super::proto::{
    decode_ctrl, encode_ctrl, Assign, CtrlMsg, FinalReport, JobSpec, PROTOCOL_VERSION,
};
use super::{frame, NetError};
use crate::executor::Msg;
use crate::faults::{FaultStats, LinkCounters};
use crate::WorkerStats;
use calm_common::instance::Instance;
use calm_obs::{ArgValue, Obs};
use calm_transducer::network::NodeId;
use calm_transducer::runtime::Metrics;
use std::collections::BTreeMap;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// Ephemeral-port binding is retried: a transient `EADDRINUSE` (the OS
/// briefly exhausting the ephemeral range under parallel test load)
/// should not fail the run.
const BIND_RETRIES: u32 = 5;
const BIND_BACKOFF: Duration = Duration::from_millis(50);

/// How long the coordinator waits for all W workers to connect and say
/// hello. Covers process spawn latency; a worker that dies before
/// connecting surfaces here.
const HANDSHAKE_DEADLINE: Duration = Duration::from_secs(30);

/// Per-stream timeout for the `Hello` frame once a connection is
/// accepted (a connected-but-silent peer must not stall the others).
const HELLO_TIMEOUT: Duration = Duration::from_secs(10);

/// After a worker failure, how long the coordinator waits for the
/// survivors to honor the `Terminate` broadcast and report their
/// finals before giving up on them too.
const DRAIN_DEADLINE: Duration = Duration::from_secs(30);

/// Poll granularity of the event loop.
const TICK: Duration = Duration::from_millis(50);

/// Parameters of a process-engine run.
pub struct ProcessConfig {
    /// Worker processes. Clamped to `[1, |N|]` like the threaded
    /// engine's worker count.
    pub procs: usize,
    /// The job, handed to every worker. `trace_prefix` / `flight_path`
    /// here are the *base* paths; the coordinator suffixes them per
    /// worker (`PREFIX.worker3`) before sending each `Assign`, so
    /// concurrent writers never share a file.
    pub spec: JobSpec,
}

/// A spawned worker, however it was started: a real OS process (the
/// CLI re-invoking its own binary as `calm net-worker`) or a thread
/// driving [`run_net_worker`](super::run_net_worker) directly (the
/// equivalence tests, which still exercise real TCP sockets).
pub enum SpawnHandle {
    /// An OS child process.
    Process(std::process::Child),
    /// An in-process worker thread.
    Thread(std::thread::JoinHandle<()>),
}

/// Starts worker `k`, telling it the coordinator's address.
pub type Spawner<'a> = dyn Fn(usize, &str) -> Result<SpawnHandle, String> + 'a;

/// The result of a process-engine run. Same accounting as
/// [`ThreadedRunResult`](crate::ThreadedRunResult) minus the output
/// instance: the transport is program-agnostic, so the caller (which
/// knows the output schema) projects `out(R)` from `states`.
#[derive(Debug)]
pub struct ProcessRunResult {
    /// Final per-node states (missing the nodes of failed workers).
    pub states: BTreeMap<NodeId, Instance>,
    /// Merged run counters (fold of per-worker metrics in worker
    /// order).
    pub metrics: Metrics,
    /// Per-worker accounting, in worker order; failed workers are
    /// absent.
    pub per_worker: Vec<WorkerStats>,
    /// Every worker reported, clean. `false` whenever `failed_workers`
    /// is non-empty.
    pub quiescent: bool,
    /// Workers whose connection ended before their `Final` frame (or
    /// that never honored the drain deadline).
    pub failed_workers: Vec<usize>,
    /// Merged fault counters. Each failed worker adds one `crashes`
    /// tick on top of whatever the survivors report.
    pub faults: FaultStats,
    /// Merged per-link wire accounting.
    pub link_counters: BTreeMap<(usize, usize), LinkCounters>,
    /// Merged delta-encoded payload bytes (workers count them exactly
    /// as the threaded engine does — the transport framing itself is
    /// not payload and is not counted).
    pub wire_bytes: u64,
    /// Merged pre-v2 baseline bytes.
    pub wire_bytes_naive: u64,
}

impl ProcessRunResult {
    /// Total ring hops across workers.
    pub fn token_passes(&self) -> u64 {
        self.per_worker.iter().map(|w| w.token_passes).sum()
    }
}

// Short-lived channel payloads, one in flight per worker thread — the
// variant size spread does not matter.
#[allow(clippy::large_enum_variant)]
enum Event {
    Final(usize, FinalReport),
    /// The connection ended (cleanly or not) — only a failure if no
    /// `Final` was seen first.
    Gone(usize, String),
}

fn bind_with_retry() -> Result<TcpListener, NetError> {
    let mut last: Option<std::io::Error> = None;
    for _ in 0..BIND_RETRIES {
        match TcpListener::bind("127.0.0.1:0") {
            Ok(l) => return Ok(l),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(BIND_BACKOFF);
            }
        }
    }
    Err(NetError::Listen(last.expect("at least one bind attempt")))
}

fn suffixed(base: &Option<String>, worker: usize) -> Option<String> {
    base.as_ref().map(|p| format!("{p}.worker{worker}"))
}

/// Accept `workers` connections and read each one's `Hello`, enforcing
/// protocol version and index uniqueness. Returns streams indexed by
/// worker.
fn handshake(listener: &TcpListener, workers: usize) -> Result<Vec<TcpStream>, NetError> {
    listener.set_nonblocking(true).map_err(NetError::Listen)?;
    let deadline = Instant::now() + HANDSHAKE_DEADLINE;
    let mut streams: Vec<Option<TcpStream>> = (0..workers).map(|_| None).collect();
    let mut connected = 0usize;
    while connected < workers {
        let mut stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() > deadline {
                    return Err(NetError::Handshake(format!(
                        "{connected}/{workers} workers connected within {HANDSHAKE_DEADLINE:?}"
                    )));
                }
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(e) => return Err(NetError::Listen(e)),
        };
        stream.set_nonblocking(false).map_err(NetError::Listen)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(HELLO_TIMEOUT)).ok();
        let payload = frame::read_frame(&mut stream)
            .map_err(|e| NetError::Handshake(format!("hello frame: {e}")))?;
        let (version, worker) = match decode_ctrl(&payload) {
            Ok(CtrlMsg::Hello { version, worker }) => (version, worker),
            Ok(_) => return Err(NetError::Handshake("first frame was not Hello".into())),
            Err(e) => return Err(NetError::Handshake(format!("hello did not decode: {e}"))),
        };
        if version != PROTOCOL_VERSION {
            return Err(NetError::Handshake(format!(
                "worker {worker} speaks protocol v{version}, coordinator v{PROTOCOL_VERSION}"
            )));
        }
        if worker >= workers {
            return Err(NetError::Handshake(format!(
                "worker index {worker} out of range (W = {workers})"
            )));
        }
        if streams[worker].is_some() {
            return Err(NetError::Handshake(format!(
                "duplicate worker index {worker}"
            )));
        }
        stream.set_read_timeout(None).ok();
        streams[worker] = Some(stream);
        connected += 1;
    }
    Ok(streams
        .into_iter()
        .map(|s| s.expect("all connected"))
        .collect())
}

/// One worker's relay reader: decode frames and forward. `Route`
/// frames go straight onto the destination's write queue (single
/// reader per source + in-order queue append = per-link FIFO through
/// the star). `Final` goes to the collector. Any transport or protocol
/// error ends the stream and reports `Gone`.
fn relay_reader(
    src: usize,
    mut stream: TcpStream,
    writers: Vec<Sender<Vec<u8>>>,
    events: Sender<Event>,
) {
    let why = loop {
        let payload = match frame::read_frame(&mut stream) {
            Ok(p) => p,
            Err(frame::FrameError::Closed) => break "closed".to_string(),
            Err(e) => break e.to_string(),
        };
        match decode_ctrl(&payload) {
            Ok(CtrlMsg::Route { dst, msg }) => {
                if dst >= writers.len() {
                    break format!("route to out-of-range worker {dst}");
                }
                // A send to a dead worker's queue fails; the loss is
                // already accounted by the failure handling.
                let _ = writers[dst].send(encode_ctrl(&CtrlMsg::Deliver(msg)));
            }
            Ok(CtrlMsg::Final(report)) => {
                let _ = events.send(Event::Final(src, report));
            }
            Ok(_) => break "out-of-phase control frame".to_string(),
            Err(e) => break format!("frame did not decode: {e}"),
        }
    };
    let _ = events.send(Event::Gone(src, why));
}

/// One worker's relay writer: drain the queue onto the socket. A write
/// failure ends the thread — the reader side of the same worker
/// reports the loss.
fn relay_writer(mut stream: TcpStream, queue: std::sync::mpsc::Receiver<Vec<u8>>) {
    while let Ok(payload) = queue.recv() {
        if frame::write_frame(&mut stream, &payload).is_err() {
            break;
        }
    }
}

/// Reap a spawn handle: give an OS child a moment to exit on its own
/// (workers exit right after their `Final`), then kill it; join
/// threads (unblocked by the stream shutdowns that precede reaping).
fn reap(handle: SpawnHandle) {
    match handle {
        SpawnHandle::Process(mut child) => {
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => return,
                    Ok(None) if Instant::now() > deadline => {
                        let _ = child.kill();
                        let _ = child.wait();
                        return;
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                    Err(_) => return,
                }
            }
        }
        SpawnHandle::Thread(handle) => {
            let _ = handle.join();
        }
    }
}

/// Run a transducer network as `cfg.procs` worker processes plus this
/// coordinator. Spawns workers with `spawner`, performs the handshake
/// barrier (every `Assign` is sent only after *all* workers said
/// hello, so every relay target exists before any traffic flows),
/// relays until all finals are in, and merges exactly like the
/// threaded engine's join — same fold, same worker order, so the
/// merged metrics are deterministic given the per-worker values.
pub fn run_process(
    cfg: &ProcessConfig,
    spawner: &Spawner<'_>,
    obs: &Obs,
) -> Result<ProcessRunResult, NetError> {
    let workers = cfg.procs.clamp(1, cfg.spec.nodes.max(1));
    let listener = bind_with_retry()?;
    let addr = listener.local_addr().map_err(NetError::Listen)?.to_string();

    obs.event("net", "executor_start", 0, || {
        vec![
            ("workers", ArgValue::U64(workers as u64)),
            ("nodes", ArgValue::U64(cfg.spec.nodes as u64)),
            ("engine", ArgValue::Str("process".into())),
        ]
    });

    let mut handles: Vec<SpawnHandle> = Vec::with_capacity(workers);
    for k in 0..workers {
        match spawner(k, &addr) {
            Ok(h) => handles.push(h),
            Err(e) => {
                // Kill what we started; the partial fleet would
                // otherwise sit in connect-retry until its own timeout.
                drop(listener);
                for h in handles {
                    reap(h);
                }
                return Err(NetError::Spawn(format!("worker {k}: {e}")));
            }
        }
    }

    let streams = match handshake(&listener, workers) {
        Ok(s) => s,
        Err(e) => {
            for h in handles {
                reap(h);
            }
            return Err(e);
        }
    };

    // Handshake barrier passed: hand every worker its assignment.
    let mut reader_streams = Vec::with_capacity(workers);
    let mut writer_streams = Vec::with_capacity(workers);
    for (k, mut stream) in streams.into_iter().enumerate() {
        let assign = CtrlMsg::Assign(Assign {
            worker: k,
            workers,
            spec: JobSpec {
                trace_prefix: suffixed(&cfg.spec.trace_prefix, k),
                flight_path: suffixed(&cfg.spec.flight_path, k),
                ..cfg.spec.clone()
            },
        });
        if let Err(e) = frame::write_frame(&mut stream, &encode_ctrl(&assign)) {
            for h in handles {
                reap(h);
            }
            return Err(NetError::Handshake(format!("assign to worker {k}: {e}")));
        }
        let clone = match stream.try_clone() {
            Ok(c) => c,
            Err(e) => {
                for h in handles {
                    reap(h);
                }
                return Err(NetError::Listen(e));
            }
        };
        reader_streams.push(stream);
        writer_streams.push(clone);
    }

    // Relay fabric: per-worker writer queues + per-worker readers.
    let mut writer_txs: Vec<Sender<Vec<u8>>> = Vec::with_capacity(workers);
    let mut writer_threads = Vec::with_capacity(workers);
    for stream in writer_streams {
        let (tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
        writer_txs.push(tx);
        writer_threads.push(std::thread::spawn(move || relay_writer(stream, rx)));
    }
    let (events_tx, events_rx) = std::sync::mpsc::channel::<Event>();
    let mut reader_threads = Vec::with_capacity(workers);
    let mut shutdown_streams = Vec::with_capacity(workers);
    for (k, stream) in reader_streams.into_iter().enumerate() {
        shutdown_streams.push(stream.try_clone().ok());
        let writers = writer_txs.clone();
        let events = events_tx.clone();
        reader_threads.push(std::thread::spawn(move || {
            relay_reader(k, stream, writers, events)
        }));
    }
    drop(events_tx);

    // Collect finals. A worker going away without a Final is a
    // failure: broadcast Terminate (the survivors' token ring is
    // broken — without this they would block forever) and drain with a
    // deadline.
    let mut finals: Vec<Option<FinalReport>> = (0..workers).map(|_| None).collect();
    let mut failed: Vec<usize> = Vec::new();
    let mut terminated = false;
    let mut drain_deadline: Option<Instant> = None;
    loop {
        let done = finals.iter().filter(|f| f.is_some()).count() + failed.len();
        if done >= workers {
            break;
        }
        if drain_deadline.is_some_and(|d| Instant::now() > d) {
            // Survivors that never honored the Terminate are failures
            // too.
            for (k, f) in finals.iter().enumerate() {
                if f.is_none() && !failed.contains(&k) {
                    failed.push(k);
                }
            }
            break;
        }
        match events_rx.recv_timeout(TICK) {
            Ok(Event::Final(k, report)) => finals[k] = Some(report),
            Ok(Event::Gone(k, why)) => {
                if finals[k].is_none() && !failed.contains(&k) {
                    failed.push(k);
                    obs.event("net", "worker_down", k as u32 + 1, || {
                        vec![
                            ("worker", ArgValue::U64(k as u64)),
                            ("reason", ArgValue::Str(why.clone())),
                        ]
                    });
                    if !terminated {
                        terminated = true;
                        let term = encode_ctrl(&CtrlMsg::Deliver(Msg::Terminate));
                        for tx in &writer_txs {
                            let _ = tx.send(term.clone());
                        }
                    }
                    drain_deadline = Some(Instant::now() + DRAIN_DEADLINE);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    failed.sort_unstable();

    // Teardown: close every stream (unblocks workers parked in recv and
    // our own reader threads), drop the write queues, join, reap.
    for s in shutdown_streams.iter().flatten() {
        let _ = s.shutdown(std::net::Shutdown::Both);
    }
    drop(writer_txs);
    for t in writer_threads {
        let _ = t.join();
    }
    for t in reader_threads {
        let _ = t.join();
    }
    for h in handles {
        reap(h);
    }

    // Deterministic join: the same fold as the threaded engine, in
    // worker order.
    let mut metrics = Metrics::default();
    let mut states: BTreeMap<NodeId, Instance> = BTreeMap::new();
    let mut per_worker = Vec::new();
    let mut quiescent = failed.is_empty();
    let mut token_passes = 0u64;
    let mut faults = FaultStats::default();
    let mut link_counters: BTreeMap<(usize, usize), LinkCounters> = BTreeMap::new();
    let mut wire_bytes = 0u64;
    let mut wire_bytes_naive = 0u64;
    for report in finals.into_iter().flatten() {
        metrics.merge(&report.stats.metrics);
        quiescent &= report.clean;
        token_passes += report.stats.token_passes;
        faults.merge(&report.stats.faults);
        wire_bytes += report.stats.wire_bytes;
        wire_bytes_naive += report.stats.wire_bytes_naive;
        for (link, counters) in &report.stats.link_counters {
            link_counters.entry(*link).or_default().merge(counters);
        }
        for (node, state) in report.states {
            states.insert(node, state);
        }
        per_worker.push(report.stats);
    }
    faults.crashes += failed.len() as u64;

    obs.event("net", "termination", 0, || {
        vec![
            ("quiescent", ArgValue::Bool(quiescent)),
            ("token_passes", ArgValue::U64(token_passes)),
            ("workers", ArgValue::U64(workers as u64)),
        ]
    });
    if cfg.spec.faults.is_some() && obs.enabled() {
        for (name, value) in faults.as_pairs() {
            obs.counter("net", &format!("faults.{name}"), value);
        }
        obs.event("net", "fault_summary", 0, || {
            vec![
                ("attempts", ArgValue::U64(faults.attempts)),
                ("retransmissions", ArgValue::U64(faults.retransmissions)),
                (
                    "duplicates_suppressed",
                    ArgValue::U64(faults.duplicates_suppressed),
                ),
                ("dropped", ArgValue::U64(faults.dropped)),
                ("crashes", ArgValue::U64(faults.crashes)),
                ("snapshots", ArgValue::U64(faults.snapshots)),
                ("retry_exhausted", ArgValue::U64(faults.retry_exhausted)),
            ]
        });
    }
    if obs.enabled() {
        obs.counter("net", "wire.bytes", wire_bytes);
        obs.counter("net", "wire.bytes_naive", wire_bytes_naive);
        obs.event("runtime", "run_summary", 0, || {
            vec![
                ("quiescent", ArgValue::Bool(quiescent)),
                ("transitions", ArgValue::U64(metrics.transitions as u64)),
                ("heartbeats", ArgValue::U64(metrics.heartbeats as u64)),
                ("messages_sent", ArgValue::U64(metrics.messages_sent as u64)),
                (
                    "messages_delivered",
                    ArgValue::U64(metrics.messages_delivered as u64),
                ),
                (
                    "max_queue_depth",
                    ArgValue::U64(metrics.max_queue_depth() as u64),
                ),
            ]
        });
    }

    Ok(ProcessRunResult {
        states,
        metrics,
        per_worker,
        quiescent,
        failed_workers: failed,
        faults,
        link_counters,
        wire_bytes,
        wire_bytes_naive,
    })
}
