//! The process engine: a transducer network as W OS worker processes
//! plus a coordinator, over `std::net` TCP.
//!
//! Layered bottom-up:
//!
//! * [`frame`] — the length-prefixed frame codec. Explicit partial
//!   read/write handling; resets and EOFs surface as typed errors,
//!   never panics.
//! * [`proto`] — the control-plane messages (handshake, job hand-off,
//!   message relay, final-state collection) and their binary codec,
//!   built on the same varint/value primitives as the batch wire
//!   format.
//! * [`worker`] — the worker side: connect, handshake, then run the
//!   shared executor loop over a socket-backed [`Ports`] instead of
//!   channels.
//! * [`coordinator`] — the coordinator side: listen, spawn W workers,
//!   relay their messages (star topology — per-link FIFO survives the
//!   relay, so cross-process Safra counting stays sound), collect
//!   final states, and merge accounting exactly like the threaded
//!   engine's join.
//!
//! The executor logic is *identical* to the threaded engine — same
//! `run_worker`, same reliable-delivery substrate, same token ring —
//! parameterized only by the transport. That is what makes the process
//! engine byte-identical to `--engine sequential` by construction.
//!
//! [`Ports`]: crate::executor::Ports

pub mod coordinator;
pub mod frame;
pub mod proto;
pub mod worker;

pub use coordinator::{run_process, ProcessConfig, ProcessRunResult, SpawnHandle, Spawner};
pub use frame::{read_frame, write_frame, FrameError, FRAME_MAGIC, MAX_FRAME_LEN};
pub use proto::{Assign, FinalReport, JobSpec, PROTOCOL_VERSION};
pub use worker::{run_net_worker, WorkerBuilder, WorkerSetup};

use std::fmt;

/// Why a process-engine run could not complete.
#[derive(Debug)]
pub enum NetError {
    /// The coordinator could not bind or accept on its listener.
    Listen(std::io::Error),
    /// Spawning a worker failed.
    Spawn(String),
    /// A handshake violated the protocol (wrong version, duplicate or
    /// out-of-range worker index, wrong first frame).
    Handshake(String),
    /// A control frame failed to decode.
    Protocol(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Listen(e) => write!(f, "coordinator listen failed: {e}"),
            NetError::Spawn(e) => write!(f, "worker spawn failed: {e}"),
            NetError::Handshake(e) => write!(f, "handshake failed: {e}"),
            NetError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}
