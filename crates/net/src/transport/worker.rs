//! The worker side of the process engine: connect to the coordinator,
//! handshake, then run the *same* worker loop as the threaded engine
//! over socket-backed ports.
//!
//! The worker is program-agnostic: calm-net knows nothing about Datalog
//! parsing, so the caller supplies a [`WorkerBuilder`] that turns the
//! received [`Assign`] into a transducer + policy + input (the CLI's
//! builder parses the program and facts sources carried by value in the
//! [`JobSpec`](super::JobSpec); tests build toy networks directly).
//!
//! Transport failures never panic: a reset, broken pipe, or coordinator
//! EOF marks the link down, the worker loop exits non-clean (the lost
//! link forfeits the quiescence claim through
//! [`Ports::link_ok`](crate::executor::Ports::link_ok)), and every
//! message that could not be put on the wire is counted in
//! [`FaultStats::dropped`](crate::FaultStats::dropped).

use super::frame::{read_frame, write_frame, FrameError};
use super::proto::{
    decode_ctrl, decode_snapshot_blob, encode_ctrl, Assign, CtrlMsg, FinalReport, PROTOCOL_VERSION,
};
use crate::executor::{run_worker, Msg, Ports, ProcCtx, WorkerCtx};
use crate::faults::FaultPlan;
use calm_common::instance::Instance;
use calm_obs::Obs;
use calm_transducer::network::NodeId;
use calm_transducer::policy::{distribute, DistributionPolicy};
use calm_transducer::schema::SystemConfig;
use calm_transducer::transducer::Transducer;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvError, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How long the worker keeps retrying the initial connect. The
/// coordinator binds its listener before spawning workers, so this only
/// covers slow process start-up, not a race.
const CONNECT_RETRIES: u32 = 50;
const CONNECT_BACKOFF: Duration = Duration::from_millis(100);

/// How long the worker waits for the `Assign` after sending `Hello`.
/// The coordinator holds Assigns until all W workers have said hello
/// (the handshake barrier), so this must cover the slowest sibling's
/// spawn, not just one round-trip.
const ASSIGN_TIMEOUT: Duration = Duration::from_secs(30);

/// What the builder must produce from an [`Assign`]: the ingredients of
/// a [`ThreadedNetwork`](crate::ThreadedNetwork), owned, plus this
/// worker's observability sink (already routed to per-worker paths by
/// the coordinator's suffixing — see [`JobSpec`](super::JobSpec)).
pub struct WorkerSetup {
    /// This worker's own transducer instance (own scratch database and
    /// interner — workers share no memory at all here).
    pub transducer: Box<dyn Transducer>,
    /// The distribution policy (also supplies the network).
    pub policy: Box<dyn DistributionPolicy>,
    /// Which system relations nodes see (model variant).
    pub config: SystemConfig,
    /// The network input `I`. Every worker computes the full
    /// `distribute(policy, input)` map locally — it is deterministic,
    /// so all workers agree on it without further coordination.
    pub input: Instance,
    /// Per-worker observability (trace/flight paths already suffixed).
    pub obs: Obs,
}

/// Turns the coordinator's `Assign` into a runnable network.
pub type WorkerBuilder<'a> = dyn Fn(&Assign) -> Result<WorkerSetup, String> + 'a;

/// The socket transport behind the shared worker loop. Outbound
/// messages become `Route` frames written under a mutex (one writer at
/// a time keeps per-link FIFO); inbound frames are decoded by a reader
/// thread and fed through an in-process channel, which gives the three
/// receive flavors the [`Ports`] trait wants for free.
struct SocketPorts {
    writer: Mutex<TcpStream>,
    rx: Receiver<Msg>,
    /// Set by either side on the first transport failure. Once down,
    /// sends are counted as drops and the worker loop's exit is
    /// non-clean.
    down: Arc<AtomicBool>,
    /// Messages that could not be written because the link was down.
    send_drops: AtomicU64,
    /// This worker's ring position, stamped into `Heartbeat` frames.
    worker: usize,
}

impl SocketPorts {
    /// Write one control frame under the writer mutex. The shared mutex
    /// is the output-commit mechanism: a `Snapshot` written before a
    /// `Route` is on the socket before it, and per-link FIFO does the
    /// rest.
    fn write_ctrl(&self, ctrl: &CtrlMsg) -> bool {
        if self.down.load(Ordering::SeqCst) {
            return false;
        }
        let payload = encode_ctrl(ctrl);
        let mut stream = self.writer.lock().expect("writer mutex");
        if write_frame(&mut *stream, &payload).is_err() {
            self.down.store(true, Ordering::SeqCst);
            return false;
        }
        true
    }
}

impl Ports for SocketPorts {
    fn send(&self, dst: usize, msg: Msg) {
        if !self.write_ctrl(&CtrlMsg::Route { dst, msg }) {
            self.send_drops.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn ship_snapshot(&self, node: usize, version: u64, blob: Vec<u8>) {
        // A failed ship is not a drop: the supervisor just keeps its
        // older version, and restore replays from further back.
        self.write_ctrl(&CtrlMsg::Snapshot {
            node,
            version,
            blob,
        });
    }

    fn heartbeat(&self) {
        self.write_ctrl(&CtrlMsg::Heartbeat {
            worker: self.worker,
        });
    }

    fn try_recv(&self) -> Result<Msg, TryRecvError> {
        self.rx.try_recv()
    }

    fn recv(&self) -> Result<Msg, RecvError> {
        self.rx.recv()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Msg, RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    fn link_ok(&self) -> bool {
        !self.down.load(Ordering::SeqCst)
    }
}

/// The reader half: decode frames into executor messages until the
/// stream ends. A clean close after `Terminate` is the normal shutdown;
/// anything else marks the link down. Dropping `tx` on exit is what
/// unblocks a worker loop parked in `recv()`.
fn reader_loop(mut stream: TcpStream, tx: Sender<Msg>, down: Arc<AtomicBool>) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(FrameError::Closed) => break,
            Err(_) => {
                down.store(true, Ordering::SeqCst);
                break;
            }
        };
        let msg = match decode_ctrl(&payload) {
            Ok(CtrlMsg::Deliver(msg)) => msg,
            _ => {
                // Undecodable or out-of-phase control traffic: the
                // stream cannot be trusted past this point.
                down.store(true, Ordering::SeqCst);
                break;
            }
        };
        let terminate = matches!(msg, Msg::Terminate);
        if tx.send(msg).is_err() || terminate {
            break;
        }
    }
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    let mut last = String::new();
    for _ in 0..CONNECT_RETRIES {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = e.to_string();
                std::thread::sleep(CONNECT_BACKOFF);
            }
        }
    }
    Err(format!(
        "could not connect to coordinator at {addr}: {last}"
    ))
}

/// Run one process-engine worker to completion: connect to the
/// coordinator at `addr`, introduce ourselves as worker `worker`, build
/// the network from the received assignment, run the shared worker loop
/// over the socket, and report final states. Returns the assignment's
/// worker index on success so callers can log it.
///
/// Errors are strings (this is the `calm net-worker` entry point's
/// backend; the CLI turns them into exit codes). A transport failure
/// *during* the run is not an error — the run completes non-clean and
/// the final report (if the link still permits one) says so.
pub fn run_net_worker(
    addr: &str,
    worker: usize,
    builder: &WorkerBuilder<'_>,
) -> Result<(), String> {
    let mut stream = connect(addr)?;
    stream.set_nodelay(true).ok();

    // Handshake: Hello, then wait (bounded) for the Assign.
    write_frame(
        &mut stream,
        &encode_ctrl(&CtrlMsg::Hello {
            version: PROTOCOL_VERSION,
            worker,
        }),
    )
    .map_err(|e| format!("hello failed: {e}"))?;
    stream.set_read_timeout(Some(ASSIGN_TIMEOUT)).ok();
    let payload = read_frame(&mut stream).map_err(|e| format!("no assignment: {e}"))?;
    let assign = match decode_ctrl(&payload) {
        Ok(CtrlMsg::Assign(a)) => a,
        Ok(_) => return Err("expected Assign as the second frame".into()),
        Err(e) => return Err(format!("assignment did not decode: {e}")),
    };
    if assign.worker != worker {
        return Err(format!(
            "coordinator assigned index {} to worker {worker}",
            assign.worker
        ));
    }
    stream.set_read_timeout(None).ok();

    let setup = builder(&assign)?;
    let mut faults = match &assign.spec.faults {
        Some(spec) => Some(FaultPlan::parse(spec)?),
        None => None,
    };
    if assign.supervised && faults.is_none() {
        // Supervision needs the reliability substrate underneath even
        // when no faults are injected: every data message must ride a
        // wire — a sender obligation until the receiver's snapshot acks
        // it — for snapshot restore and replay to cover the crash
        // window. The empty plan is exactly that: no injected faults,
        // full substrate.
        faults = Some(FaultPlan::none(0));
    }

    // Decode the snapshot hand-back (respawn/adoption) eagerly: a blob
    // the coordinator retained but we cannot decode is a protocol
    // error, not a run-time fault.
    let mut restore = Vec::new();
    for (node, version, blob) in &assign.restore {
        let (snap, transitions, next_seq) = decode_snapshot_blob(blob)
            .map_err(|e| format!("restore blob for node {node} did not decode: {e}"))?;
        restore.push((*node, *version, snap, transitions, next_seq));
    }
    let proc = ProcCtx {
        incarnation: assign.incarnation,
        epoch: assign.epoch,
        supervised: assign.supervised,
        owner: assign.owner.clone(),
        live: assign.live.clone(),
        restore,
    };

    let node_ids: Vec<NodeId> = setup.policy.network().nodes().cloned().collect();
    let dist = distribute(setup.policy.as_ref(), &setup.input);
    let empty = Instance::new();

    let reader_stream = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let down = Arc::new(AtomicBool::new(false));
    let (tx, rx) = std::sync::mpsc::channel();
    let reader = std::thread::spawn({
        let down = down.clone();
        move || reader_loop(reader_stream, tx, down)
    });

    let ports = SocketPorts {
        writer: Mutex::new(stream),
        rx,
        down,
        send_drops: AtomicU64::new(0),
        worker: assign.worker,
    };
    let mut outcome = run_worker(WorkerCtx {
        id: assign.worker,
        workers: assign.workers,
        node_ids: &node_ids,
        transducer: setup.transducer.as_ref(),
        policy: setup.policy.as_ref(),
        sys: setup.config,
        dist: &dist,
        empty: &empty,
        ports: &ports,
        budget: assign.spec.step_budget,
        faults: faults.as_ref(),
        obs: &setup.obs,
        proc: Some(proc),
    });
    // Writes the transport refused are counted link faults, not losses
    // the accounting forgets about.
    outcome.stats.faults.dropped += ports.send_drops.load(Ordering::SeqCst);

    if outcome.killed {
        // Scripted process kill: die the way a real crash does — no
        // Final frame, no ack flush, a hard socket shutdown the
        // supervisor sees as EOF — but flush the observability sinks
        // first so post-mortem JSONL from the dead incarnation is
        // never truncated mid-line.
        setup.obs.finish();
        {
            let stream = ports.writer.lock().expect("writer mutex");
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let _ = reader.join();
        return Err(format!(
            "worker {} incarnation {} killed by fault plan",
            assign.worker, assign.incarnation
        ));
    }

    // Report. Best effort: if the link died this write fails too, and
    // the coordinator has already counted us down.
    let report = CtrlMsg::Final(FinalReport {
        stats: outcome.stats,
        states: outcome.states,
        clean: outcome.clean,
    });
    {
        let mut stream = ports.writer.lock().expect("writer mutex");
        let _ = write_frame(&mut *stream, &encode_ctrl(&report));
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    setup.obs.finish();
    let _ = reader.join();
    Ok(())
}
