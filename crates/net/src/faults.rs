//! Fault injection and reliable delivery: fair runs out of an unfair
//! network.
//!
//! The paper's asynchronous semantics (§4) promises convergence only on
//! *fair* runs: every sent message is eventually delivered, every node
//! keeps taking heartbeat steps. The perfect in-process channels of the
//! threaded executor deliver that fairness for free — which means the
//! fairness boundary was never actually exercised. This module makes
//! the network adversarial and then earns fairness back:
//!
//! * **[`FaultPlan`]** — a seeded, deterministic description of how the
//!   network misbehaves: per-link drop probability, duplication,
//!   bounded delay/reordering, one-way partitions with a scheduled
//!   heal, and node crash points. Every per-message decision is a pure
//!   function of `(seed, link, seq, attempt)`, so a plan is
//!   reproducible independent of thread timing.
//! * **[`ReliableNet`]** — the per-worker reliability substrate that
//!   restores fairness: per-link sequence numbers, receiver-side
//!   dedup, cumulative acks, retransmission with exponential backoff
//!   and a retry budget, and periodic node snapshots for crash
//!   recovery.
//!
//! **The correctness discipline.** A node's snapshot captures — in one
//! atomic clone — its state, its undelivered inbox, its send-dedup set,
//! and its link state (receive cursors *and* unacked outboxes). A
//! receiver only acknowledges sequence numbers its snapshot has
//! persisted. Together these give the invariant that makes crash
//! recovery sound: *every delivered-but-unsnapshotted effect at the
//! receiver still has its cause retained in some sender's outbox.*
//! Roll a node back and whatever it forgot is retransmitted; re-deliver
//! a message it remembered and the receiver-side dedup (or the
//! engines' monotone state accumulation) makes it a no-op. At-least-
//! once delivery plus idempotent application is exactly-once *effect*.
//!
//! **Output commit.** Exactly-once effect covers a node's *own* state,
//! but a rollback must also be invisible to *peers* — and a message
//! sent from unsnapshotted state is a promise the rollback breaks. The
//! concrete failure (caught by the chaos suite on `Mdisjoint`): a
//! requester collects a fact, acks it, crashes, and rolls back to
//! before the collection; the owner has already consumed the ghost ack
//! and certifies the value with `OK`, so the restarted requester
//! declares a component complete while missing one of its edges and
//! emits output the sequential semantics forbids. The rule that closes
//! this (and every other ghost): a wire leaves a node only after a
//! snapshot has captured the state that derived it — sends are staged
//! in the outbox and *released by the next snapshot* (see
//! [`OutEntry::staged`]). A restore then never un-derives anything a
//! peer could have observed, which is also what lets the sequence
//! allocator roll back over staged-only seqs instead of leaving holes.

use crate::wirefmt;
use calm_common::fact::Fact;
use calm_common::instance::Instance;
use calm_common::rng::Rng;
use calm_obs::{ArgValue, Obs};
use calm_transducer::multiset::Multiset;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Logical time: one tick per worker loop iteration (or per timed-out
/// wait while passive-with-obligations). Delays, backoff and partition
/// windows are measured in ticks.
pub type Tick = u64;

/// A freshly-accepted data wire, ready for enqueue: the destination
/// node, the decoded batch, and the payload's causal message id (only
/// present when the sender ran with tracing enabled).
pub type TracedArrival = (usize, Multiset<Fact>, Option<(u64, u64)>);

/// Fault probabilities of one directed link.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkFaults {
    /// Probability that a transmission attempt is silently dropped.
    pub drop_p: f64,
    /// Probability that an attempt is duplicated (one extra copy).
    pub dup_p: f64,
    /// Probability that a copy is delayed rather than delivered
    /// immediately.
    pub delay_p: f64,
    /// Maximum delay in ticks. Because each copy draws its own delay,
    /// this also bounds the reordering window: a delayed copy can
    /// overtake up to `max_delay` later sends.
    pub max_delay: Tick,
}

impl LinkFaults {
    /// A perfectly-behaved link.
    pub const NONE: LinkFaults = LinkFaults {
        drop_p: 0.0,
        dup_p: 0.0,
        delay_p: 0.0,
        max_delay: 0,
    };

    /// Whether this link never misbehaves.
    pub fn is_none(&self) -> bool {
        self.drop_p <= 0.0 && self.dup_p <= 0.0 && self.delay_p <= 0.0
    }
}

/// A one-way link partition: every transmission attempt `src → dst`
/// during `[from, heal)` (in sender ticks) is dropped. Retransmission
/// carries the traffic across the heal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Sending node (global index).
    pub src: usize,
    /// Receiving node (global index).
    pub dst: usize,
    /// First tick of the outage.
    pub from: Tick,
    /// First tick after the outage (the heal).
    pub heal: Tick,
}

/// A scheduled node crash: after the node completes its
/// `at_transition`-th transition (counted monotonically — the counter
/// does not roll back with the state, so each point fires at most
/// once), the node is restored from its last snapshot, its in-flight
/// buffers are dropped, and it stays down for `down_ticks` before
/// restarting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// The crashing node (global index).
    pub node: usize,
    /// Fires after the node's transition counter reaches this value.
    pub at_transition: usize,
    /// Recovery window: incoming data is refused (dropped, to be
    /// retransmitted) and the node takes no steps while down.
    pub down_ticks: Tick,
}

/// A scheduled *process-level* kill (process engine only): after worker
/// `worker`'s current incarnation completes its `at_step`-th executor
/// step, the whole worker process dies abruptly — no `Final` frame, no
/// ack flush, a nonzero exit — exactly the socket-level signature of a
/// `kill -9`. A respawned incarnation skips as many `pkill` entries for
/// its index as it has predecessors, so two entries for the same worker
/// model two staggered kills across incarnations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PKill {
    /// The worker (ring position) to kill.
    pub worker: usize,
    /// Fires after the incarnation's executor step counter reaches
    /// this value.
    pub at_step: u64,
}

/// A seeded, deterministic description of network misbehavior, plus the
/// knobs of the reliability substrate that repairs it.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every per-message fault decision.
    pub seed: u64,
    /// Default faults applied to every link.
    pub link: LinkFaults,
    /// Per-link overrides, keyed by `(src, dst)` global node indexes.
    pub per_link: BTreeMap<(usize, usize), LinkFaults>,
    /// One-way partitions with scheduled heals.
    pub partitions: Vec<Partition>,
    /// Node crash points.
    pub crashes: Vec<CrashPoint>,
    /// Process-level worker kills (process engine only; the threaded
    /// engine rejects plans that contain any).
    pub pkills: Vec<PKill>,
    /// Transitions between periodic snapshots of a node (snapshots are
    /// also forced whenever a worker goes passive with unacked
    /// receipts, so acks always flush).
    pub snapshot_every: usize,
    /// Transmission attempts per message before the substrate gives up
    /// (a budget exhaustion is counted and makes the run report
    /// `quiescent: false` — fairness could not be restored).
    pub retry_budget: u32,
    /// Initial retransmission backoff, in ticks (doubles per attempt).
    pub backoff_base: Tick,
    /// Backoff cap, in ticks.
    pub max_backoff: Tick,
}

impl FaultPlan {
    /// A plan that injects no faults at all (but still runs the full
    /// seq/ack/snapshot machinery — useful for measuring its cost).
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            link: LinkFaults::NONE,
            per_link: BTreeMap::new(),
            partitions: Vec::new(),
            crashes: Vec::new(),
            pkills: Vec::new(),
            snapshot_every: 8,
            retry_budget: 30,
            backoff_base: 8,
            max_backoff: 512,
        }
    }

    /// A uniform drop/dup plan — the common chaos-test shape.
    pub fn uniform(seed: u64, drop_p: f64, dup_p: f64) -> FaultPlan {
        let mut p = FaultPlan::none(seed);
        p.link.drop_p = drop_p;
        p.link.dup_p = dup_p;
        p
    }

    /// Builder: set the default delay fault.
    pub fn with_delay(mut self, delay_p: f64, max_delay: Tick) -> FaultPlan {
        self.link.delay_p = delay_p;
        self.link.max_delay = max_delay;
        self
    }

    /// Builder: add a crash point.
    pub fn with_crash(mut self, node: usize, at_transition: usize, down_ticks: Tick) -> FaultPlan {
        self.crashes.push(CrashPoint {
            node,
            at_transition,
            down_ticks,
        });
        self
    }

    /// Builder: add a one-way partition.
    pub fn with_partition(mut self, src: usize, dst: usize, from: Tick, heal: Tick) -> FaultPlan {
        self.partitions.push(Partition {
            src,
            dst,
            from,
            heal,
        });
        self
    }

    /// Parse a `--faults` spec: comma-separated `key=value` clauses.
    ///
    /// ```text
    /// drop=0.2                  default per-attempt drop probability
    /// dup=0.05                  default duplication probability
    /// delay=0.3/6               delay probability / max ticks
    /// link=1>2:drop=0.9:dup=0.5 per-link override (colon-separated)
    /// partition=0>1@10..80      one-way outage over a tick window
    /// crash=2@5~20              node 2 after transition 5, down 20 ticks
    /// crash=2@5                 as above with the default downtime (4)
    /// pkill(worker=1@step=40)   kill worker 1's process at its 40th step
    /// seed=7 snapshot=4 retries=16 backoff=8
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none(0);
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let clause_t = clause.trim();
            // `pkill(worker=K@step=S)` is parenthesized, not key=value.
            if let Some(inner) = clause_t
                .strip_prefix("pkill(")
                .and_then(|rest| rest.strip_suffix(')'))
            {
                let (w, s) = inner
                    .split_once('@')
                    .ok_or_else(|| format!("pkill wants worker=K@step=S, got '{inner}'"))?;
                let worker = w
                    .strip_prefix("worker=")
                    .ok_or_else(|| format!("pkill clause '{w}' is not worker=K"))?;
                let step = s
                    .strip_prefix("step=")
                    .ok_or_else(|| format!("pkill clause '{s}' is not step=S"))?;
                plan.pkills.push(PKill {
                    worker: parse_num(worker, "pkill worker")?,
                    at_step: parse_num(step, "pkill step")?,
                });
                continue;
            }
            let (key, value) = clause
                .trim()
                .split_once('=')
                .ok_or_else(|| format!("fault clause '{clause}' is not key=value"))?;
            match key {
                "seed" => plan.seed = parse_num(value, "seed")?,
                "drop" => plan.link.drop_p = parse_prob(value, "drop")?,
                "dup" => plan.link.dup_p = parse_prob(value, "dup")?,
                "delay" => {
                    let (p, max) = value
                        .split_once('/')
                        .ok_or_else(|| format!("delay wants P/MAXTICKS, got '{value}'"))?;
                    plan.link.delay_p = parse_prob(p, "delay")?;
                    plan.link.max_delay = parse_num(max, "delay max")?;
                }
                "link" => {
                    let (ends, faults) = value
                        .split_once(':')
                        .ok_or_else(|| format!("link wants SRC>DST:k=v..., got '{value}'"))?;
                    let (src, dst) = parse_edge(ends)?;
                    let mut lf = LinkFaults::NONE;
                    for kv in faults.split(':') {
                        let (k, v) = kv
                            .split_once('=')
                            .ok_or_else(|| format!("link clause '{kv}' is not k=v"))?;
                        match k {
                            "drop" => lf.drop_p = parse_prob(v, "link drop")?,
                            "dup" => lf.dup_p = parse_prob(v, "link dup")?,
                            "delay" => {
                                let (p, max) = v
                                    .split_once('/')
                                    .ok_or_else(|| format!("link delay wants P/MAX, got '{v}'"))?;
                                lf.delay_p = parse_prob(p, "link delay")?;
                                lf.max_delay = parse_num(max, "link delay max")?;
                            }
                            other => return Err(format!("unknown link fault '{other}'")),
                        }
                    }
                    plan.per_link.insert((src, dst), lf);
                }
                "partition" => {
                    let (ends, window) = value.split_once('@').ok_or_else(|| {
                        format!("partition wants SRC>DST@FROM..HEAL, got '{value}'")
                    })?;
                    let (src, dst) = parse_edge(ends)?;
                    let (from, heal) = window.split_once("..").ok_or_else(|| {
                        format!("partition window wants FROM..HEAL, got '{window}'")
                    })?;
                    plan.partitions.push(Partition {
                        src,
                        dst,
                        from: parse_num(from, "partition from")?,
                        heal: parse_num(heal, "partition heal")?,
                    });
                }
                "crash" => {
                    let (node, rest) = value.split_once('@').ok_or_else(|| {
                        format!("crash wants NODE@TRANSITION[~DOWN], got '{value}'")
                    })?;
                    let (at, down) = match rest.split_once('~') {
                        Some((at, down)) => (at, parse_num(down, "crash downtime")?),
                        None => (rest, 4),
                    };
                    plan.crashes.push(CrashPoint {
                        node: parse_num::<usize>(node, "crash node")?,
                        at_transition: parse_num(at, "crash transition")?,
                        down_ticks: down,
                    });
                }
                "snapshot" => plan.snapshot_every = parse_num(value, "snapshot")?,
                "retries" => plan.retry_budget = parse_num(value, "retries")?,
                "backoff" => plan.backoff_base = parse_num(value, "backoff")?,
                other => return Err(format!("unknown fault key '{other}'")),
            }
        }
        if plan.snapshot_every == 0 {
            return Err("snapshot interval must be at least 1".into());
        }
        if plan.retry_budget == 0 {
            return Err("retry budget must be at least 1".into());
        }
        Ok(plan)
    }

    /// The faults of one directed link.
    pub fn link_faults(&self, src: usize, dst: usize) -> &LinkFaults {
        self.per_link.get(&(src, dst)).unwrap_or(&self.link)
    }

    /// Whether the plan injects any fault at all (zero-fault plans still
    /// pay for the reliability machinery; `None` plans pay nothing).
    pub fn injects_faults(&self) -> bool {
        !self.link.is_none()
            || self.per_link.values().any(|l| !l.is_none())
            || !self.partitions.is_empty()
            || !self.crashes.is_empty()
            || !self.pkills.is_empty()
    }

    /// The kill steps of `worker`'s incarnation number `incarnation`,
    /// in firing order: entries for the worker sorted by step, the
    /// first `incarnation` of them already consumed by the
    /// predecessors. The incarnation dies at the first remaining step
    /// (if its run lasts that long).
    pub fn pkill_steps(&self, worker: usize, incarnation: u64) -> Vec<u64> {
        let mut steps: Vec<u64> = self
            .pkills
            .iter()
            .filter(|p| p.worker == worker)
            .map(|p| p.at_step)
            .collect();
        steps.sort_unstable();
        steps.split_off((incarnation as usize).min(steps.len()))
    }

    /// The deterministic decision stream for one transmission copy:
    /// a pure function of the plan seed and the copy's identity.
    fn rolls(&self, src: usize, dst: usize, seq: u64, attempt: u32, copy: u32) -> Rng {
        let mut h = self.seed ^ 0x6a09_e667_f3bc_c909;
        for v in [src as u64, dst as u64, seq, attempt as u64, copy as u64] {
            h = (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 29;
        }
        Rng::seed_from_u64(h)
    }

    fn partitioned(&self, src: usize, dst: usize, tick: Tick) -> bool {
        self.partitions
            .iter()
            .any(|p| p.src == src && p.dst == dst && p.from <= tick && tick < p.heal)
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.trim()
        .parse()
        .map_err(|_| format!("{what}: '{s}' is not a number"))
}

fn parse_prob(s: &str, what: &str) -> Result<f64, String> {
    let p: f64 = parse_num(s, what)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("{what}: probability {p} outside [0, 1]"));
    }
    Ok(p)
}

fn parse_edge(s: &str) -> Result<(usize, usize), String> {
    let (a, b) = s
        .split_once('>')
        .ok_or_else(|| format!("link endpoint wants SRC>DST, got '{s}'"))?;
    Ok((parse_num(a, "link src")?, parse_num(b, "link dst")?))
}

/// A message on the (possibly faulty) wire. `Data` carries a sequenced
/// fact batch and is subject to the fault plan; `Ack` is the
/// substrate's control plane (like the Safra token, it rides the
/// channels unfaulted — dropping acks only causes retransmission,
/// which dropping data already exercises).
#[derive(Debug, Clone)]
pub enum Wire {
    /// A sequenced fact batch on link `src → dst`.
    Data {
        /// Sending node (global index).
        src: usize,
        /// Receiving node (global index).
        dst: usize,
        /// Per-link sequence number (1-based).
        seq: u64,
        /// One step's send to one destination, in the delta wire
        /// format of [`crate::wirefmt`]. Shared (`Arc`) so the copies
        /// of a duplicated or retransmitted wire are free to clone and
        /// byte-identical by construction; decoded once, at the
        /// receiver, by [`ReliableNet::receive`].
        payload: Arc<[u8]>,
    },
    /// A cumulative acknowledgment: `src` is the acking node, `dst` the
    /// original data sender (whose outbox it clears), and `cum` says
    /// "my snapshot has persisted every seq ≤ cum on your link to me".
    Ack {
        /// Acking node (the data receiver).
        src: usize,
        /// Original data sender (where the outbox lives).
        dst: usize,
        /// Cumulative snapshotted sequence number.
        cum: u64,
    },
}

impl Wire {
    /// The node this wire is addressed to.
    pub fn dst(&self) -> usize {
        match self {
            Wire::Data { dst, .. } | Wire::Ack { dst, .. } => *dst,
        }
    }
}

/// One outbox entry: a batch staged for release or awaiting its
/// cumulative ack.
#[derive(Debug, Clone)]
pub struct OutEntry {
    /// The encoded batch (retransmitted byte-for-byte under its
    /// original seq — the shared buffer makes "verbatim" structural).
    pub payload: Arc<[u8]>,
    /// What the pre-v2 per-fact encoding would have spent on this
    /// batch, for the wire-byte comparison counters.
    pub naive_len: u64,
    /// Transmission attempts so far (0 while staged).
    pub attempt: u32,
    /// Next retransmission tick (ignored while staged).
    pub retry_at: Tick,
    /// Output commit: a staged entry has *never been on the wire* and
    /// is released (first transmission) only by the next snapshot of
    /// its sender. This is what makes crash rollback transparent to
    /// peers: every message a peer can ever observe is recorded in a
    /// snapshot together with the state that derived it, so a restore
    /// never "un-derives" a message someone already consumed. Without
    /// it, a ghost send from rolled-back state (e.g. an ack for a fact
    /// the node no longer holds) lets a peer certify knowledge the
    /// network has lost — the classic output-commit failure.
    pub staged: bool,
}

/// The snapshot-able link state of one node: unacked outboxes per
/// destination, and per-source receive cursors (`cum` = highest
/// contiguous snapshotted seq; `seen` = out-of-order seqs above it).
#[derive(Debug, Clone, Default)]
pub struct NodeLinks {
    /// `dst → seq → entry`: batches sent and not yet cumulatively acked.
    pub out: BTreeMap<usize, BTreeMap<u64, OutEntry>>,
    /// `src → cum`: every seq ≤ cum has been received *and snapshotted*.
    pub cum: BTreeMap<usize, u64>,
    /// `src → seqs` received above `cum` (delivered, not yet folded
    /// into a snapshot).
    pub seen: BTreeMap<usize, BTreeSet<u64>>,
    /// `dst → next_seq` at snapshot time. Crash restore rolls the
    /// allocator back here: seqs in `[floor, next)` were allocated
    /// post-snapshot, and because staged sends only reach the wire via
    /// a snapshot release, none of them was ever transmitted — reuse
    /// is collision-free, and receivers' cumulative cursors never wait
    /// on a hole no surviving sender will fill.
    pub sent_floor: BTreeMap<usize, u64>,
    /// `src → facts` ever accepted from that source — the end-to-end
    /// extension of the sender-side send-dedup. A crashed sender's
    /// send-dedup set rolls back with its state, so it legitimately
    /// re-sends facts its peers already consumed under fresh sequence
    /// numbers; wire-level dedup cannot catch those, and non-monotone
    /// strategies (request/OK memory protocols) are not duplicate-
    /// tolerant at the engine level. Because fault-free traffic carries
    /// each `(sender, fact)` pair at most once (PR 3's send-dedup),
    /// filtering repeats here restores exactly the reachable fault-free
    /// delivery multisets. Lives in the snapshot so a receiver rollback
    /// (which also un-applies the facts' effects) forgets the filter
    /// entries consistently.
    pub recv_dedup: BTreeMap<usize, BTreeSet<Fact>>,
}

impl NodeLinks {
    fn unacked(&self) -> usize {
        self.out.values().map(BTreeMap::len).sum()
    }
}

/// A node's crash-recovery checkpoint: state, undelivered inbox,
/// send-dedup set and link state, captured atomically. The receive
/// cursors in `links.cum` are exactly what the node has acknowledged,
/// which is what makes restoring this snapshot sound.
#[derive(Debug, Clone)]
pub struct NodeSnapshot {
    /// The node's state (output ∪ memory facts).
    pub state: Instance,
    /// The node's undelivered inbox.
    pub pending: Multiset<Fact>,
    /// Every message fact the node ever sent (the send-dedup set).
    pub ever_sent: BTreeSet<Fact>,
    /// Outboxes and receive cursors.
    pub links: NodeLinks,
}

/// Per-fault-class counters, merged across workers at join and threaded
/// through `calm-obs` as `net/faults.*` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Wire data transmissions attempted (first sends + retransmits +
    /// injected duplicate copies).
    pub attempts: u64,
    /// Retransmission events (an unacked entry re-entering the wire).
    pub retransmissions: u64,
    /// Extra copies injected by the duplication fault.
    pub duplicates_injected: u64,
    /// Attempts lost: fault drops, partition drops, crash-cleared
    /// in-flight wires, and arrivals refused by a down node.
    pub dropped: u64,
    /// Attempts that took the delay path.
    pub delayed: u64,
    /// Data wires accepted (fresh sequence number, facts delivered).
    pub delivered_batches: u64,
    /// Data wires suppressed by receiver-side dedup.
    pub duplicates_suppressed: u64,
    /// Fact occurrences filtered by the end-to-end per-source dedup: a
    /// crashed sender's rolled-back send-dedup set re-sent them under
    /// fresh sequence numbers, but this node had already accepted them.
    pub replayed_facts_suppressed: u64,
    /// Cumulative acks emitted.
    pub acks_sent: u64,
    /// Node snapshots taken.
    pub snapshots: u64,
    /// Crash points fired.
    pub crashes: u64,
    /// Messages abandoned after the retry budget (> 0 means fairness
    /// could not be restored; the run reports `quiescent: false`).
    pub retry_exhausted: u64,
    /// Data wires whose payload failed wire-format validation at the
    /// receiver (corruption): refused and counted as dropped, so the
    /// sender's retransmission path covers them like any other loss.
    pub decode_failures: u64,
    /// Outbox entries re-armed for retransmission by a restore —
    /// in-flight traffic replayed after a crash (node rollback or a
    /// respawned worker restoring a shipped snapshot). Each replayed
    /// entry re-enters the wire through `transmit`, so the per-link
    /// identity `attempts == delivered + suppressed + dropped +
    /// buffered` still holds with replays counted inside `attempts`.
    pub replayed: u64,
    /// Encoded snapshot-blob bytes shipped to the coordinator
    /// (supervised process engine only; zero in-process).
    pub snapshot_bytes: u64,
}

impl FaultStats {
    /// Field-wise sum (associative, commutative, `Default` identity).
    pub fn merge(&mut self, other: &FaultStats) {
        self.attempts += other.attempts;
        self.retransmissions += other.retransmissions;
        self.duplicates_injected += other.duplicates_injected;
        self.dropped += other.dropped;
        self.delayed += other.delayed;
        self.delivered_batches += other.delivered_batches;
        self.duplicates_suppressed += other.duplicates_suppressed;
        self.replayed_facts_suppressed += other.replayed_facts_suppressed;
        self.acks_sent += other.acks_sent;
        self.snapshots += other.snapshots;
        self.crashes += other.crashes;
        self.retry_exhausted += other.retry_exhausted;
        self.decode_failures += other.decode_failures;
        self.replayed += other.replayed;
        self.snapshot_bytes += other.snapshot_bytes;
    }

    /// Non-zero counters as `(label, value)` pairs, for reports.
    pub fn as_pairs(&self) -> Vec<(&'static str, u64)> {
        [
            ("attempts", self.attempts),
            ("retransmissions", self.retransmissions),
            ("duplicates_injected", self.duplicates_injected),
            ("dropped", self.dropped),
            ("delayed", self.delayed),
            ("delivered_batches", self.delivered_batches),
            ("duplicates_suppressed", self.duplicates_suppressed),
            ("replayed_facts_suppressed", self.replayed_facts_suppressed),
            ("acks_sent", self.acks_sent),
            ("snapshots", self.snapshots),
            ("crashes", self.crashes),
            ("retry_exhausted", self.retry_exhausted),
            ("decode_failures", self.decode_failures),
            ("replayed", self.replayed),
            ("snapshot_bytes", self.snapshot_bytes),
        ]
        .into_iter()
        .collect()
    }
}

/// Per-link wire accounting. The sender side fills `attempts`,
/// `dropped` and `buffered`; the receiver side fills `delivered` and
/// `suppressed`; merged across workers they reconcile:
/// `attempts == delivered + suppressed + dropped + buffered`
/// (the chaos suite asserts it per link at exit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkCounters {
    /// Data wires put on the link (all copies, all attempts).
    pub attempts: u64,
    /// Wires lost to drops, partitions, crash-clears or down receivers.
    pub dropped: u64,
    /// Wires accepted at the receiver (fresh seq).
    pub delivered: u64,
    /// Wires dedup-suppressed at the receiver.
    pub suppressed: u64,
    /// Wires still sitting in the delay buffer at exit.
    pub buffered: u64,
}

impl LinkCounters {
    /// Field-wise sum.
    pub fn merge(&mut self, other: &LinkCounters) {
        self.attempts += other.attempts;
        self.dropped += other.dropped;
        self.delivered += other.delivered;
        self.suppressed += other.suppressed;
        self.buffered += other.buffered;
    }
}

/// The per-worker reliability substrate: owns the link state of the
/// worker's local nodes, the delay buffer ("the network"), and the
/// per-link sequence counters.
pub struct ReliableNet<'a> {
    plan: &'a FaultPlan,
    /// Trace handle: retransmit/drop/dedup events and the
    /// `retry_exhausted`/`decode_failure` anomalies carry the causal
    /// message ids read (cheaply, header-only) from traced payloads.
    obs: Obs,
    tick: Tick,
    /// `(src, dst) → next seq`. Rolled back to the snapshot's
    /// `sent_floor` on crash restore — safe because seqs allocated
    /// after a snapshot are staged, never transmitted (see
    /// [`OutEntry::staged`]).
    next_seq: BTreeMap<(usize, usize), u64>,
    /// Wires in the simulated network, keyed by release tick.
    delayed: BTreeMap<(Tick, u64), Wire>,
    delayed_ctr: u64,
    /// Link state per local node.
    links: BTreeMap<usize, NodeLinks>,
    /// Crashed nodes in their recovery window.
    down_until: BTreeMap<usize, Tick>,
    /// Per local node: crash points not yet fired (sorted by
    /// transition, consumed front to back).
    crash_queue: BTreeMap<usize, VecDeque<CrashPoint>>,
    /// Per-fault-class counters.
    pub stats: FaultStats,
    /// Per-link wire accounting (this worker's half).
    pub link_counters: BTreeMap<(usize, usize), LinkCounters>,
    /// Delta-encoded payload bytes put on the wire (every copy of
    /// every attempt, including retransmissions and duplicates).
    pub wire_bytes: u64,
    /// What the same traffic would have cost under the pre-v2 per-fact
    /// encoding ([`wirefmt::naive_len`] per copy).
    pub wire_bytes_naive: u64,
}

impl<'a> ReliableNet<'a> {
    /// Build the substrate for a worker owning `local_nodes` (global
    /// indexes). Wire-level trace events (retransmits, drops, dedup
    /// suppressions, anomalies) go to `obs`; pass [`Obs::noop`] to
    /// trace nothing.
    pub fn new(plan: &'a FaultPlan, local_nodes: &[usize], obs: &Obs) -> ReliableNet<'a> {
        let mut crash_queue: BTreeMap<usize, VecDeque<CrashPoint>> = BTreeMap::new();
        for &g in local_nodes {
            let mut points: Vec<CrashPoint> = plan
                .crashes
                .iter()
                .filter(|c| c.node == g)
                .copied()
                .collect();
            points.sort_by_key(|c| c.at_transition);
            if !points.is_empty() {
                crash_queue.insert(g, points.into());
            }
        }
        ReliableNet {
            plan,
            obs: obs.clone(),
            tick: 0,
            next_seq: BTreeMap::new(),
            delayed: BTreeMap::new(),
            delayed_ctr: 0,
            links: local_nodes
                .iter()
                .map(|&g| (g, NodeLinks::default()))
                .collect(),
            down_until: BTreeMap::new(),
            crash_queue,
            stats: FaultStats::default(),
            link_counters: BTreeMap::new(),
            wire_bytes: 0,
            wire_bytes_naive: 0,
        }
    }

    /// Current logical time.
    pub fn now(&self) -> Tick {
        self.tick
    }

    /// Advance one tick: release due delayed wires and retransmit due
    /// unacked entries into `out`.
    pub fn advance(&mut self, out: &mut Vec<Wire>) {
        self.tick += 1;
        // Release the network's delay buffer.
        let due: Vec<(Tick, u64)> = self
            .delayed
            .range(..=(self.tick, u64::MAX))
            .map(|(&k, _)| k)
            .collect();
        for key in due {
            if let Some(wire) = self.delayed.remove(&key) {
                out.push(wire);
            }
        }
        // Retransmit due outbox entries.
        let mut resends: Vec<(usize, usize, u64)> = Vec::new();
        for (&src, nl) in &self.links {
            for (&dst, entries) in &nl.out {
                for (&seq, entry) in entries {
                    if !entry.staged && entry.retry_at <= self.tick {
                        resends.push((src, dst, seq));
                    }
                }
            }
        }
        for (src, dst, seq) in resends {
            let budget = self.plan.retry_budget;
            let entry = self
                .links
                .get_mut(&src)
                .and_then(|nl| nl.out.get_mut(&dst))
                .and_then(|e| e.get_mut(&seq));
            let Some(entry) = entry else { continue };
            if entry.attempt >= budget {
                let attempts = entry.attempt;
                let payload = entry.payload.clone();
                if let Some(entries) = self.links.get_mut(&src).and_then(|nl| nl.out.get_mut(&dst))
                {
                    entries.remove(&seq);
                }
                self.stats.retry_exhausted += 1;
                if self.obs.enabled() {
                    let mid = wirefmt::peek_trace(&payload).map(|c| c.id());
                    self.obs
                        .event("net", "retry_exhausted", src as u32 + 1, || {
                            let mut args = vec![
                                ("src", ArgValue::U64(src as u64)),
                                ("dst", ArgValue::U64(dst as u64)),
                                ("link_seq", ArgValue::U64(seq)),
                                ("attempts", ArgValue::U64(attempts as u64)),
                            ];
                            if let Some((o, s)) = mid {
                                args.push(("origin", ArgValue::U64(o)));
                                args.push(("seq", ArgValue::U64(s)));
                            }
                            args
                        });
                }
                continue;
            }
            entry.attempt += 1;
            let attempt = entry.attempt;
            let shift = (attempt - 1).min(16);
            let backoff = (self.plan.backoff_base << shift).min(self.plan.max_backoff.max(1));
            entry.retry_at = self.tick + backoff.max(1);
            let payload = entry.payload.clone();
            let naive_len = entry.naive_len;
            self.stats.retransmissions += 1;
            if self.obs.enabled() {
                let mid = wirefmt::peek_trace(&payload).map(|c| c.id());
                self.obs.event("trace", "retransmit", src as u32 + 1, || {
                    let mut args = vec![
                        ("src", ArgValue::U64(src as u64)),
                        ("dst", ArgValue::U64(dst as u64)),
                        ("link_seq", ArgValue::U64(seq)),
                        ("attempt", ArgValue::U64(attempt as u64)),
                    ];
                    if let Some((o, s)) = mid {
                        args.push(("origin", ArgValue::U64(o)));
                        args.push(("seq", ArgValue::U64(s)));
                    }
                    args
                });
            }
            self.transmit(src, dst, seq, payload, naive_len, attempt, out);
        }
    }

    /// Stage one step's batch on link `src → dst`, encoding it into
    /// the delta wire format first. Callers fanning one batch out to
    /// several destinations should encode once and use
    /// [`ReliableNet::send_payload`] instead.
    pub fn send(&mut self, src: usize, dst: usize, facts: Multiset<Fact>) {
        let payload: Arc<[u8]> = wirefmt::encode(&facts).into();
        let naive_len = wirefmt::naive_len(&facts) as u64;
        self.send_payload(src, dst, payload, naive_len);
    }

    /// Stage one step's encoded batch on link `src → dst`: allocate a
    /// sequence number and record the outbox entry. Nothing touches
    /// the wire until the sender's next snapshot releases it (see
    /// [`OutEntry::staged`]) — sends are committed output, and output
    /// is only committed by a checkpoint that contains it.
    pub fn send_payload(&mut self, src: usize, dst: usize, payload: Arc<[u8]>, naive_len: u64) {
        let seq = {
            let next = self.next_seq.entry((src, dst)).or_insert(1);
            let seq = *next;
            *next += 1;
            seq
        };
        self.links
            .get_mut(&src)
            .expect("send from non-local node")
            .out
            .entry(dst)
            .or_default()
            .insert(
                seq,
                OutEntry {
                    payload,
                    naive_len,
                    attempt: 0,
                    retry_at: Tick::MAX,
                    staged: true,
                },
            );
    }

    /// Whether `node` has staged sends waiting on a snapshot to be
    /// released — a passivity obligation: the worker must checkpoint
    /// (committing and transmitting them) before it may look quiet.
    pub fn staged(&self, node: usize) -> bool {
        self.links.get(&node).is_some_and(|nl| {
            nl.out
                .values()
                .any(|e| e.values().any(|entry| entry.staged))
        })
    }

    /// Emit a `trace/drop` event for one lost data-wire copy (fault or
    /// partition drop, down-node refusal, crash-cleared in-flight
    /// wire), carrying the causal message id when the payload is
    /// traced.
    fn note_drop(&self, src: usize, dst: usize, seq: u64, payload: &[u8]) {
        if !self.obs.enabled() {
            return;
        }
        let mid = wirefmt::peek_trace(payload).map(|c| c.id());
        self.obs.event("trace", "drop", src as u32 + 1, || {
            let mut args = vec![
                ("src", ArgValue::U64(src as u64)),
                ("dst", ArgValue::U64(dst as u64)),
                ("link_seq", ArgValue::U64(seq)),
            ];
            if let Some((o, s)) = mid {
                args.push(("origin", ArgValue::U64(o)));
                args.push(("seq", ArgValue::U64(s)));
            }
            args
        });
    }

    /// One transmission attempt through the fault gauntlet: duplicate,
    /// drop (faults and partitions), delay, or pass through.
    #[allow(clippy::too_many_arguments)]
    fn transmit(
        &mut self,
        src: usize,
        dst: usize,
        seq: u64,
        payload: Arc<[u8]>,
        naive_len: u64,
        attempt: u32,
        out: &mut Vec<Wire>,
    ) {
        let lf = *self.plan.link_faults(src, dst);
        let copies = {
            let mut rng = self.plan.rolls(src, dst, seq, attempt, 0);
            if lf.dup_p > 0.0 && rng.gen_bool(lf.dup_p) {
                self.stats.duplicates_injected += 1;
                2
            } else {
                1
            }
        };
        for copy in 1..=copies {
            let mut rng = self.plan.rolls(src, dst, seq, attempt, copy);
            self.stats.attempts += 1;
            self.wire_bytes += payload.len() as u64;
            self.wire_bytes_naive += naive_len;
            let lc = self.link_counters.entry((src, dst)).or_default();
            lc.attempts += 1;
            if self.plan.partitioned(src, dst, self.tick)
                || (lf.drop_p > 0.0 && rng.gen_bool(lf.drop_p))
            {
                self.stats.dropped += 1;
                lc.dropped += 1;
                self.note_drop(src, dst, seq, &payload);
                continue;
            }
            let wire = Wire::Data {
                src,
                dst,
                seq,
                payload: payload.clone(),
            };
            if lf.delay_p > 0.0 && lf.max_delay > 0 && rng.gen_bool(lf.delay_p) {
                let ticks = rng.gen_range(1..=lf.max_delay);
                self.stats.delayed += 1;
                self.delayed_ctr += 1;
                self.delayed
                    .insert((self.tick + ticks, self.delayed_ctr), wire);
            } else {
                out.push(wire);
            }
        }
    }

    /// Process an arriving wire addressed to one of this worker's
    /// nodes. Returns the facts to enqueue (for a fresh data wire)
    /// together with the payload's causal message id, if traced;
    /// pushes any response wires (re-acks) into `out`.
    pub fn receive(&mut self, wire: Wire, out: &mut Vec<Wire>) -> Option<TracedArrival> {
        match wire {
            Wire::Data {
                src,
                dst,
                seq,
                payload,
            } => {
                if self.node_down(dst) {
                    // A crashed node refuses arrivals; the sender's
                    // outbox will retransmit after the restart.
                    self.stats.dropped += 1;
                    self.link_counters.entry((src, dst)).or_default().dropped += 1;
                    self.note_drop(src, dst, seq, &payload);
                    return None;
                }
                let nl = self.links.get_mut(&dst).expect("receive at non-local node");
                let cum = nl.cum.get(&src).copied().unwrap_or(0);
                let seen = nl.seen.entry(src).or_default();
                if seq <= cum || seen.contains(&seq) {
                    self.stats.duplicates_suppressed += 1;
                    self.link_counters.entry((src, dst)).or_default().suppressed += 1;
                    if self.obs.enabled() {
                        let mid = wirefmt::peek_trace(&payload).map(|c| c.id());
                        self.obs.event("trace", "dedup", dst as u32 + 1, || {
                            let mut args = vec![
                                ("src", ArgValue::U64(src as u64)),
                                ("dst", ArgValue::U64(dst as u64)),
                                ("link_seq", ArgValue::U64(seq)),
                            ];
                            if let Some((o, s)) = mid {
                                args.push(("origin", ArgValue::U64(o)));
                                args.push(("seq", ArgValue::U64(s)));
                            }
                            args
                        });
                    }
                    // Re-ack so a sender whose ack got lost in a crash
                    // window can clear its outbox.
                    self.stats.acks_sent += 1;
                    out.push(Wire::Ack {
                        src: dst,
                        dst: src,
                        cum,
                    });
                    None
                } else {
                    // Validate the payload before committing the seq:
                    // a corrupted wire is refused like a dropped one
                    // (no `seen` entry, no ack), so a clean retransmit
                    // of the same seq can still land.
                    let (facts, ctx) = match wirefmt::decode_traced(&payload) {
                        Ok(decoded) => decoded,
                        Err(_) => {
                            self.stats.dropped += 1;
                            self.stats.decode_failures += 1;
                            self.link_counters.entry((src, dst)).or_default().dropped += 1;
                            if self.obs.enabled() {
                                self.obs.event("net", "decode_failure", dst as u32 + 1, || {
                                    vec![
                                        ("src", ArgValue::U64(src as u64)),
                                        ("dst", ArgValue::U64(dst as u64)),
                                        ("link_seq", ArgValue::U64(seq)),
                                    ]
                                });
                            }
                            return None;
                        }
                    };
                    seen.insert(seq);
                    // End-to-end fact dedup: drop occurrences this node
                    // already accepted from `src` (replays from a
                    // crashed sender's rolled-back send-dedup set).
                    let dedup = nl.recv_dedup.entry(src).or_default();
                    let mut fresh: Multiset<Fact> = Multiset::new();
                    let mut replayed = 0u64;
                    for (f, n) in facts.iter() {
                        if dedup.insert(f.clone()) {
                            fresh.insert(f.clone());
                            replayed += n as u64 - 1;
                        } else {
                            replayed += n as u64;
                        }
                    }
                    self.stats.replayed_facts_suppressed += replayed;
                    self.stats.delivered_batches += 1;
                    self.link_counters.entry((src, dst)).or_default().delivered += 1;
                    Some((dst, fresh, ctx.map(|c| c.id())))
                }
            }
            Wire::Ack { src, dst, cum } => {
                // `dst` is the original data sender: clear its outbox
                // toward the acker up to the cumulative seq.
                if let Some(entries) = self.links.get_mut(&dst).and_then(|nl| nl.out.get_mut(&src))
                {
                    entries.retain(|&seq, _| seq > cum);
                }
                None
            }
        }
    }

    /// Whether `node`'s receive cursor can advance — i.e. a snapshot
    /// now would fold fresh receipts into `cum` and emit acks peers
    /// are waiting for.
    pub fn ackable(&self, node: usize) -> bool {
        let Some(nl) = self.links.get(&node) else {
            return false;
        };
        nl.seen.iter().any(|(src, seen)| {
            let cum = nl.cum.get(src).copied().unwrap_or(0);
            seen.contains(&(cum + 1))
        })
    }

    /// Take a snapshot of `node`'s link state: advance each receive
    /// cursor over its contiguous prefix, emit cumulative acks for the
    /// links that advanced, record the per-destination sequence floor,
    /// and return the (cloned) link state to store in the node's
    /// [`NodeSnapshot`].
    pub fn snapshot(&mut self, node: usize, out: &mut Vec<Wire>) -> NodeLinks {
        // Output commit: the checkpoint being taken now contains every
        // staged entry, so they may be released — first transmission,
        // through the fault gauntlet.
        let staged: Vec<(usize, u64, Arc<[u8]>, u64)> = {
            let nl = self
                .links
                .get_mut(&node)
                .expect("snapshot of non-local node");
            let mut v = Vec::new();
            let backoff = self.plan.backoff_base.max(1);
            let retry_at = self.tick + backoff;
            for (&dst, entries) in nl.out.iter_mut() {
                for (&seq, entry) in entries.iter_mut() {
                    if entry.staged {
                        entry.staged = false;
                        entry.attempt = 1;
                        entry.retry_at = retry_at;
                        v.push((dst, seq, entry.payload.clone(), entry.naive_len));
                    }
                }
            }
            v
        };
        for (dst, seq, payload, naive_len) in staged {
            self.transmit(node, dst, seq, payload, naive_len, 1, out);
        }
        let floors: Vec<(usize, u64)> = self
            .next_seq
            .range((node, 0)..=(node, usize::MAX))
            .map(|(&(_, dst), &next)| (dst, next))
            .collect();
        let nl = self
            .links
            .get_mut(&node)
            .expect("snapshot of non-local node");
        nl.sent_floor = floors.into_iter().collect();
        for (&src, seen) in nl.seen.iter_mut() {
            let cum = nl.cum.entry(src).or_insert(0);
            let before = *cum;
            while seen.remove(&(*cum + 1)) {
                *cum += 1;
            }
            if *cum > before {
                self.stats.acks_sent += 1;
                out.push(Wire::Ack {
                    src: node,
                    dst: src,
                    cum: *cum,
                });
            }
        }
        self.stats.snapshots += 1;
        self.links[&node].clone()
    }

    /// Restore `node`'s link state from a snapshot (crash recovery).
    /// Outbox entries come back with a reset attempt budget and an
    /// immediate retry. The per-link `next_seq` counters roll back to
    /// the snapshot's [`NodeLinks::sent_floor`]: every seq in
    /// `[floor, next)` was allocated post-snapshot and — because sends
    /// are staged until a snapshot releases them — was *never on the
    /// wire*, so reusing it cannot collide with an in-flight or
    /// delivered wire, and a receiver's cumulative cursor never waits
    /// on a hole no one will fill.
    pub fn restore(&mut self, node: usize, mut snap: NodeLinks) {
        for entries in snap.out.values_mut() {
            for entry in entries.values_mut() {
                if !entry.staged {
                    entry.attempt = 0;
                    entry.retry_at = self.tick + 1;
                    self.stats.replayed += 1;
                }
            }
        }
        // Install the snapshot's floors unconditionally: a respawned
        // incarnation starts with an *empty* `next_seq` map, so rolling
        // back only pre-existing keys would restart every link at seq 1
        // and collide with seqs the previous incarnation already put on
        // the wire. Links absent from `sent_floor` never carried a wire
        // before the snapshot, so their counters reset.
        let keys: Vec<(usize, usize)> = self
            .next_seq
            .range((node, 0)..=(node, usize::MAX))
            .map(|(&k, _)| k)
            .collect();
        for key in keys {
            self.next_seq.remove(&key);
        }
        for (&dst, &floor) in &snap.sent_floor {
            self.next_seq.insert((node, dst), floor);
        }
        self.links.insert(node, snap);
    }

    /// Register a node this worker did not originally own (shard
    /// adoption after a dead peer's respawn budget ran out): create its
    /// link state — typically overwritten right away by
    /// [`ReliableNet::restore`] from the coordinator's retained
    /// snapshot — and queue any of the plan's crash points for it.
    pub fn adopt(&mut self, node: usize) {
        self.links.entry(node).or_default();
        let mut points: Vec<CrashPoint> = self
            .plan
            .crashes
            .iter()
            .filter(|c| c.node == node)
            .copied()
            .collect();
        points.sort_by_key(|c| c.at_transition);
        if !points.is_empty() {
            self.crash_queue
                .entry(node)
                .or_insert_with(|| points.into());
        }
    }

    /// Crash bookkeeping: drop the node's in-flight outgoing wires from
    /// the delay buffer (the network loses them; the restored outbox
    /// retransmits) and open the recovery window.
    pub fn crash(&mut self, node: usize, down_ticks: Tick) {
        let lost: Vec<(Tick, u64)> = self
            .delayed
            .iter()
            .filter(|(_, w)| matches!(w, Wire::Data { src, .. } if *src == node))
            .map(|(&k, _)| k)
            .collect();
        for key in lost {
            if let Some(Wire::Data {
                src,
                dst,
                seq,
                payload,
            }) = self.delayed.remove(&key)
            {
                self.stats.dropped += 1;
                self.link_counters.entry((src, dst)).or_default().dropped += 1;
                self.note_drop(src, dst, seq, &payload);
            }
        }
        if down_ticks > 0 {
            self.down_until.insert(node, self.tick + down_ticks);
        }
        self.stats.crashes += 1;
    }

    /// The next crash point due for `node`, given its (monotone)
    /// transition count. Consumes the point.
    pub fn due_crash(&mut self, node: usize, transitions: usize) -> Option<CrashPoint> {
        let queue = self.crash_queue.get_mut(&node)?;
        if queue
            .front()
            .is_some_and(|c| transitions >= c.at_transition)
        {
            queue.pop_front()
        } else {
            None
        }
    }

    /// Whether `node` is inside its crash-recovery window.
    pub fn node_down(&self, node: usize) -> bool {
        self.down_until.get(&node).is_some_and(|&t| t > self.tick)
    }

    /// Whether any local node is in recovery.
    pub fn any_down(&self) -> bool {
        self.down_until.values().any(|&t| t > self.tick)
    }

    /// Whether the substrate has standing obligations: unacked
    /// outboxes, wires in the delay buffer, or nodes in recovery. A
    /// worker with obligations is *not* passive — this is the
    /// fault-mode extension of the Safra passivity predicate.
    pub fn has_obligations(&self) -> bool {
        !self.delayed.is_empty()
            || self.any_down()
            || self.links.values().any(|nl| nl.unacked() > 0)
    }

    /// Total unacked outbox entries across local nodes.
    pub fn unacked(&self) -> usize {
        self.links.values().map(NodeLinks::unacked).sum()
    }

    /// Exit accounting: fold wires still in the delay buffer into the
    /// per-link `buffered` counters (zero on a clean quiescent run).
    pub fn finalize(&mut self) {
        let buffered: Vec<(usize, usize)> = self
            .delayed
            .values()
            .filter_map(|w| match w {
                Wire::Data { src, dst, .. } => Some((*src, *dst)),
                Wire::Ack { .. } => None,
            })
            .collect();
        for (src, dst) in buffered {
            self.link_counters.entry((src, dst)).or_default().buffered += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::fact::fact;

    fn batch(n: i64) -> Multiset<Fact> {
        [fact("m", [n, n])].into_iter().collect()
    }

    fn payload(n: i64) -> Arc<[u8]> {
        wirefmt::encode(&batch(n)).into()
    }

    #[test]
    fn parse_round_trips_the_grammar() {
        let plan = FaultPlan::parse(
            "seed=7,drop=0.2,dup=0.05,delay=0.3/6,link=1>2:drop=0.9,\
             partition=0>1@10..80,crash=2@5~20,crash=3@1,snapshot=4,retries=16,backoff=2",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.link.drop_p, 0.2);
        assert_eq!(plan.link.dup_p, 0.05);
        assert_eq!(plan.link.delay_p, 0.3);
        assert_eq!(plan.link.max_delay, 6);
        assert_eq!(plan.link_faults(1, 2).drop_p, 0.9);
        assert_eq!(plan.link_faults(2, 1).drop_p, 0.2); // directed
        assert_eq!(
            plan.partitions,
            vec![Partition {
                src: 0,
                dst: 1,
                from: 10,
                heal: 80
            }]
        );
        assert_eq!(plan.crashes.len(), 2);
        assert_eq!(plan.crashes[0].down_ticks, 20);
        assert_eq!(plan.crashes[1].down_ticks, 4); // default downtime
        assert_eq!(plan.snapshot_every, 4);
        assert_eq!(plan.retry_budget, 16);
        assert_eq!(plan.backoff_base, 2);
        assert!(plan.injects_faults());
        assert!(!FaultPlan::none(0).injects_faults());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "drop",            // not key=value
            "drop=2.0",        // probability out of range
            "delay=0.5",       // missing /MAX
            "warp=0.1",        // unknown key
            "partition=0>1",   // missing window
            "crash=1",         // missing transition
            "snapshot=0",      // zero interval
            "retries=0",       // zero budget
            "link=0:drop=0.1", // malformed endpoints
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn fault_decisions_are_deterministic() {
        let plan = FaultPlan::uniform(42, 0.5, 0.3);
        for seq in 0..20u64 {
            for attempt in 1..4u32 {
                let a: Vec<u64> = {
                    let mut r = plan.rolls(0, 1, seq, attempt, 1);
                    (0..4).map(|_| r.gen_u64()).collect()
                };
                let b: Vec<u64> = {
                    let mut r = plan.rolls(0, 1, seq, attempt, 1);
                    (0..4).map(|_| r.gen_u64()).collect()
                };
                assert_eq!(a, b);
            }
        }
        // Different identities give different streams.
        let x = plan.rolls(0, 1, 3, 1, 1).gen_u64();
        let y = plan.rolls(0, 1, 4, 1, 1).gen_u64();
        let z = plan.rolls(0, 1, 3, 2, 1).gen_u64();
        assert!(
            x != y || x != z,
            "decision streams should differ by identity"
        );
    }

    #[test]
    fn dedup_suppresses_and_reacks() {
        let plan = FaultPlan::none(1);
        let mut net = ReliableNet::new(&plan, &[1], &Obs::noop());
        let mut out = Vec::new();
        let d = |seq| Wire::Data {
            src: 0,
            dst: 1,
            seq,
            payload: payload(seq as i64),
        };
        assert!(net.receive(d(1), &mut out).is_some());
        assert!(out.is_empty(), "fresh data is not acked until snapshot");
        // Duplicate: suppressed, re-acked at the snapshotted cum (0).
        assert!(net.receive(d(1), &mut out).is_none());
        assert_eq!(net.stats.duplicates_suppressed, 1);
        assert!(matches!(out.pop(), Some(Wire::Ack { cum: 0, .. })));
        // Snapshot folds seq 1 into cum and acks it.
        let links = net.snapshot(1, &mut out);
        assert_eq!(links.cum[&0], 1);
        assert!(matches!(
            out.pop(),
            Some(Wire::Ack {
                src: 1,
                dst: 0,
                cum: 1
            })
        ));
        // Later duplicate of seq 1: suppressed by the cursor.
        assert!(net.receive(d(1), &mut out).is_none());
        assert_eq!(net.stats.duplicates_suppressed, 2);
    }

    #[test]
    fn out_of_order_receipt_acks_only_the_contiguous_prefix() {
        let plan = FaultPlan::none(1);
        let mut net = ReliableNet::new(&plan, &[1], &Obs::noop());
        let mut out = Vec::new();
        for seq in [3u64, 1] {
            net.receive(
                Wire::Data {
                    src: 0,
                    dst: 1,
                    seq,
                    payload: payload(seq as i64),
                },
                &mut out,
            );
        }
        let links = net.snapshot(1, &mut out);
        assert_eq!(links.cum[&0], 1, "seq 2 is missing: cum stops at 1");
        assert!(links.seen[&0].contains(&3), "seq 3 stays in the gap set");
        // The gap arrives; the next snapshot advances over both.
        net.receive(
            Wire::Data {
                src: 0,
                dst: 1,
                seq: 2,
                payload: payload(2),
            },
            &mut out,
        );
        out.clear();
        let links = net.snapshot(1, &mut out);
        assert_eq!(links.cum[&0], 3);
        assert!(links.seen[&0].is_empty());
        assert!(matches!(out.pop(), Some(Wire::Ack { cum: 3, .. })));
    }

    #[test]
    fn retransmission_backs_off_and_acks_clear_the_outbox() {
        let plan = FaultPlan::none(3);
        let mut net = ReliableNet::new(&plan, &[0], &Obs::noop());
        let mut out = Vec::new();
        net.send(0, 1, batch(1));
        assert!(out.is_empty(), "sends are staged until a snapshot");
        assert!(net.staged(0));
        net.snapshot(0, &mut out);
        assert_eq!(out.len(), 1, "the snapshot releases the first attempt");
        assert!(!net.staged(0));
        assert_eq!(net.unacked(), 1);
        // Run past the first backoff: exactly one retransmission.
        out.clear();
        for _ in 0..plan.backoff_base {
            net.advance(&mut out);
        }
        assert_eq!(net.stats.retransmissions, 1);
        assert!(matches!(out[0], Wire::Data { seq: 1, .. }));
        // The cumulative ack clears it; no further retransmissions.
        out.clear();
        net.receive(
            Wire::Ack {
                src: 1,
                dst: 0,
                cum: 1,
            },
            &mut out,
        );
        assert_eq!(net.unacked(), 0);
        for _ in 0..64 {
            net.advance(&mut out);
        }
        assert_eq!(net.stats.retransmissions, 1);
        assert!(!net.has_obligations());
    }

    #[test]
    fn retry_budget_exhaustion_is_counted_and_unblocks() {
        let mut plan = FaultPlan::uniform(5, 1.0, 0.0); // every attempt dropped
        plan.retry_budget = 3;
        plan.backoff_base = 1;
        plan.max_backoff = 1;
        let mut net = ReliableNet::new(&plan, &[0], &Obs::noop());
        let mut out = Vec::new();
        net.send(0, 1, batch(1));
        net.snapshot(0, &mut out);
        assert!(out.is_empty(), "drop_p=1 eats the first attempt");
        for _ in 0..32 {
            net.advance(&mut out);
        }
        assert_eq!(net.stats.retry_exhausted, 1);
        assert_eq!(net.unacked(), 0, "exhausted entries are abandoned");
        assert!(!net.has_obligations());
        assert_eq!(net.stats.attempts, 3);
        assert_eq!(net.stats.dropped, 3);
    }

    #[test]
    fn partition_drops_until_heal_then_retransmission_crosses() {
        let mut plan = FaultPlan::none(5).with_partition(0, 1, 0, 10);
        plan.backoff_base = 2;
        plan.max_backoff = 2;
        let mut net = ReliableNet::new(&plan, &[0], &Obs::noop());
        let mut out = Vec::new();
        net.send(0, 1, batch(1));
        net.snapshot(0, &mut out);
        assert!(out.is_empty(), "partitioned at tick 0");
        while net.now() < 20 && out.is_empty() {
            net.advance(&mut out);
        }
        assert!(!out.is_empty(), "retransmission crosses after the heal");
        assert!(net.now() >= 10);
        // Reverse direction was never partitioned.
        let mut rev = Vec::new();
        let mut net2 = ReliableNet::new(&plan, &[1], &Obs::noop());
        net2.send(1, 0, batch(2));
        net2.snapshot(1, &mut rev);
        assert_eq!(rev.len(), 1);
    }

    #[test]
    fn delay_buffers_and_releases_in_tick_order() {
        let mut plan = FaultPlan::none(9).with_delay(1.0, 4);
        plan.backoff_base = 64; // keep retransmission out of the picture
        let mut net = ReliableNet::new(&plan, &[0], &Obs::noop());
        let mut out = Vec::new();
        net.send(0, 1, batch(1));
        net.snapshot(0, &mut out);
        assert!(out.is_empty(), "delay_p=1 holds every copy");
        assert_eq!(net.stats.delayed, 1);
        assert!(net.has_obligations());
        let mut released = Vec::new();
        for _ in 0..5 {
            net.advance(&mut released);
        }
        assert_eq!(
            released
                .iter()
                .filter(|w| matches!(w, Wire::Data { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn crash_restore_rolls_back_staged_sends_and_reissues_their_seqs() {
        let plan = FaultPlan::none(11).with_crash(0, 1, 2);
        let mut net = ReliableNet::new(&plan, &[0], &Obs::noop());
        let mut out = Vec::new();
        // Release seq 1 with a snapshot; stage seq 2 with no covering
        // snapshot.
        net.send(0, 1, batch(1));
        let snap = net.snapshot(0, &mut out);
        assert!(matches!(out[0], Wire::Data { seq: 1, .. }));
        net.send(0, 1, batch(2));
        assert_eq!(net.unacked(), 2);
        // Crash: the staged entry vanishes with the rollback and its
        // sequence number is reissued — safe, because a staged send was
        // never on the wire; the released entry survives for
        // retransmission.
        assert!(net.due_crash(0, 1).is_some());
        assert!(net.due_crash(0, 1).is_none(), "each point fires once");
        net.crash(0, 2);
        net.restore(0, snap);
        assert_eq!(net.unacked(), 1, "only the committed entry survives");
        assert_eq!(
            net.links[&0].out[&1].keys().copied().collect::<Vec<_>>(),
            vec![1]
        );
        assert!(net.node_down(0));
        assert!(net.any_down());
        for _ in 0..3 {
            net.advance(&mut out);
        }
        assert!(!net.node_down(0), "recovery window expires");
        // The restart re-derives and re-stages under the reissued seq.
        out.clear();
        net.send(0, 1, batch(2));
        net.snapshot(0, &mut out);
        assert!(
            out.iter().any(|w| matches!(w, Wire::Data { seq: 2, .. })),
            "rolled-back seq 2 is reused: {out:?}"
        );
    }

    #[test]
    fn down_node_refuses_arrivals() {
        let plan = FaultPlan::none(13);
        let mut net = ReliableNet::new(&plan, &[1], &Obs::noop());
        net.crash(1, 5);
        let mut out = Vec::new();
        let got = net.receive(
            Wire::Data {
                src: 0,
                dst: 1,
                seq: 1,
                payload: payload(1),
            },
            &mut out,
        );
        assert!(got.is_none());
        assert_eq!(net.stats.dropped, 1);
        assert!(out.is_empty(), "a down node does not ack");
    }

    #[test]
    fn corrupted_payload_is_refused_and_the_seq_stays_free() {
        let plan = FaultPlan::none(17);
        let mut net = ReliableNet::new(&plan, &[1], &Obs::noop());
        let mut out = Vec::new();
        // Corrupt the payload past the header: decode fails, the wire
        // counts as a drop, and no ack is emitted.
        let mut bad: Vec<u8> = payload(1).to_vec();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        bad.truncate(last);
        let got = net.receive(
            Wire::Data {
                src: 0,
                dst: 1,
                seq: 1,
                payload: bad.into(),
            },
            &mut out,
        );
        assert!(got.is_none());
        assert_eq!(net.stats.decode_failures, 1);
        assert_eq!(net.stats.dropped, 1);
        assert!(out.is_empty(), "a refused wire is not acked");
        // A clean retransmission of the same seq still lands: the
        // refusal did not consume the sequence number.
        let got = net.receive(
            Wire::Data {
                src: 0,
                dst: 1,
                seq: 1,
                payload: payload(1),
            },
            &mut out,
        );
        assert_eq!(got, Some((1, batch(1), None)));
        assert_eq!(net.stats.duplicates_suppressed, 0);
    }

    #[test]
    fn wire_bytes_count_every_copy_and_beat_the_naive_baseline() {
        let plan = FaultPlan::none(19);
        let mut net = ReliableNet::new(&plan, &[0], &Obs::noop());
        let mut out = Vec::new();
        // A dense batch: the delta encoding should be measurably
        // smaller than the per-fact baseline.
        let dense: Multiset<Fact> = (0..64).map(|i| fact("reach", [i, i + 1])).collect();
        net.send(0, 1, dense);
        assert_eq!(net.wire_bytes, 0, "staged sends are not on the wire yet");
        net.snapshot(0, &mut out);
        assert!(net.wire_bytes > 0);
        assert!(
            net.wire_bytes < net.wire_bytes_naive,
            "delta bytes {} should beat naive bytes {}",
            net.wire_bytes,
            net.wire_bytes_naive
        );
        // A retransmission pays the same bytes again.
        let first = net.wire_bytes;
        for _ in 0..plan.backoff_base {
            net.advance(&mut out);
        }
        assert_eq!(net.stats.retransmissions, 1);
        assert_eq!(net.wire_bytes, first * 2);
    }

    #[test]
    fn stats_merge_is_fieldwise() {
        let mut a = FaultStats {
            attempts: 3,
            dropped: 1,
            ..Default::default()
        };
        let b = FaultStats {
            attempts: 2,
            retransmissions: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.attempts, 5);
        assert_eq!(a.dropped, 1);
        assert_eq!(a.retransmissions, 4);
        let mut id = FaultStats::default();
        id.merge(&a);
        assert_eq!(id, a);
    }
}
