//! The delta-encoded wire format for fact batches.
//!
//! The threaded executor and the reliability substrate move batches of
//! uninterned facts between workers ([`crate::executor`]'s `Msg::Batch`
//! and [`crate::faults::Wire::Data`]). Through PR 5 those payloads were
//! in-memory `Multiset<Fact>` values — fine for `mpsc` channels, but
//! with no meaningful notion of bytes-on-wire and no way to retransmit
//! a batch verbatim. This module gives batches a real wire format,
//! reusing the storage-v2 idea (sorted rows, leading-column runs) at
//! the message level:
//!
//! * a per-message **value dictionary**: the distinct [`Value`]s of the
//!   batch, sorted, encoded once (workers intern symbols independently,
//!   so the wire cannot carry `Sym`s — the dictionary is the message's
//!   own interner);
//! * facts grouped by `(relation, arity)`, each row a tuple of
//!   dictionary indexes;
//! * rows sorted lexicographically, then **delta-encoded**: column 0 as
//!   a plain varint delta (non-decreasing down a sorted group), the
//!   remaining columns as zigzag varint deltas against the previous
//!   row, and a per-row multiplicity varint.
//!
//! Sorting is what makes deltas small: consecutive rows share leading
//! values, so most deltas are zero and fit in one byte. The encoding is
//! canonical — equal multisets encode to identical bytes — which is
//! what lets the reliability layer retransmit stored payloads
//! byte-for-byte and lets tests compare payloads with `==`.
//!
//! [`decode`] is strict: it rejects bad magic, truncation, non-sorted
//! dictionaries or rows, out-of-range indexes, zero multiplicities and
//! trailing bytes, so a corrupted wire surfaces as a [`WireError`]
//! (counted as a drop by the reliability substrate) rather than as a
//! garbled batch.
//!
//! [`encode_naive`] is the measurement baseline for experiment E23: the
//! pre-v2 shape of the payload, every fact carrying its full relation
//! name and self-described values, no dictionary and no deltas.

use calm_common::fact::{Fact, RelName};
use calm_common::value::{SkolemTerm, Value};
use calm_transducer::multiset::Multiset;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// First byte of every encoded batch.
pub const MAGIC: u8 = 0xCA;
/// Second byte of a delta-encoded batch (format discriminator).
pub const FORMAT_DELTA: u8 = 0x01;
/// Second byte of a naive-encoded batch (the E23 baseline).
pub const FORMAT_NAIVE: u8 = 0x02;
/// Flag OR'd into the format byte when a [`TraceCtx`] extension sits
/// between the header and the body. Tracing off ⇒ the flag is clear and
/// the payload is byte-identical to the untraced encoding — the
/// extension costs zero bytes unless used.
pub const FLAG_TRACE: u8 = 0x80;

/// The causal trace context carried on a traced payload: the message's
/// own id (minted by the origin node, strictly increasing per origin)
/// and, when the send was triggered by a delivery, the id of that
/// triggering message. Retransmitted copies are byte-verbatim, so the
/// context survives retransmission for free.
///
/// Wire layout (after the 2-byte header, before the batch body):
///
/// ```text
/// varint origin_node | varint origin_seq | u8 cause? (0|1)
///   [ varint cause_node | varint cause_seq ]   -- iff cause? == 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The node that minted this message id.
    pub origin_node: u64,
    /// The per-origin sequence number (strictly increasing).
    pub origin_seq: u64,
    /// The id of the delivery that causally triggered this send, or
    /// `None` for a root send triggered by input distribution alone.
    pub cause: Option<(u64, u64)>,
}

impl TraceCtx {
    /// This context's message id as a `(origin_node, origin_seq)` pair.
    pub fn id(&self) -> (u64, u64) {
        (self.origin_node, self.origin_seq)
    }
}

/// Maximum Skolem-term nesting the decoder will follow (corruption
/// guard: a crafted payload must not recurse the decoder off the
/// stack).
const MAX_VALUE_DEPTH: usize = 64;

/// Why a payload failed to decode. Any error means the payload is not
/// a well-formed batch; the reliability layer counts it as a drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The payload does not start with [`MAGIC`] + the expected format
    /// byte, or is shorter than the header.
    BadHeader,
    /// The payload ended inside a field.
    Truncated,
    /// A varint ran past 10 bytes (would overflow 64 bits).
    VarintOverflow,
    /// A relation or functor name is not valid UTF-8.
    BadUtf8,
    /// A row column decoded to an index outside the dictionary.
    IndexOutOfRange,
    /// A Skolem term nests deeper than [`MAX_VALUE_DEPTH`].
    TooDeep,
    /// A structural invariant of the canonical encoding is violated
    /// (unsorted dictionary/groups/rows, zero arity, zero multiplicity,
    /// an unknown value tag, an implausible length prefix).
    NonCanonical(&'static str),
    /// Bytes remained after the last group.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadHeader => write!(f, "bad magic or format byte"),
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::VarintOverflow => write!(f, "varint overflows 64 bits"),
            WireError::BadUtf8 => write!(f, "name is not valid UTF-8"),
            WireError::IndexOutOfRange => write!(f, "dictionary index out of range"),
            WireError::TooDeep => write!(f, "value nesting too deep"),
            WireError::NonCanonical(what) => write!(f, "non-canonical encoding: {what}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after last group"),
        }
    }
}

impl std::error::Error for WireError {}

pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// A value, self-described: tag byte, then the payload.
pub(crate) fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            out.push(0);
            put_varint(out, zigzag(*i));
        }
        Value::Str(s) => {
            out.push(1);
            put_bytes(out, s.as_bytes());
        }
        Value::Skolem(t) => {
            out.push(2);
            put_bytes(out, t.functor.as_bytes());
            put_varint(out, t.args.len() as u64);
            for a in &t.args {
                put_value(out, a);
            }
        }
    }
}

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let bits = (byte & 0x7f) as u64;
            if shift == 63 && bits > 1 {
                return Err(WireError::VarintOverflow);
            }
            v |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::VarintOverflow)
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// A varint length prefix followed by that many bytes.
    pub(crate) fn prefixed_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.varint()? as usize;
        self.bytes(n)
    }

    pub(crate) fn str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.prefixed_bytes()?).map_err(|_| WireError::BadUtf8)
    }

    pub(crate) fn value(&mut self, depth: usize) -> Result<Value, WireError> {
        if depth > MAX_VALUE_DEPTH {
            return Err(WireError::TooDeep);
        }
        match self.u8()? {
            0 => Ok(Value::Int(unzigzag(self.varint()?))),
            1 => Ok(Value::Str(Arc::from(self.str()?))),
            2 => {
                let functor: Arc<str> = Arc::from(self.str()?);
                let argc = self.varint()? as usize;
                if argc > self.remaining() {
                    // Every argument takes at least one byte.
                    return Err(WireError::Truncated);
                }
                let mut args = Vec::with_capacity(argc);
                for _ in 0..argc {
                    args.push(self.value(depth + 1)?);
                }
                Ok(Value::Skolem(Arc::new(SkolemTerm { functor, args })))
            }
            _ => Err(WireError::NonCanonical("unknown value tag")),
        }
    }
}

/// Encode a batch into the delta wire format. The encoding is
/// canonical: equal multisets produce identical bytes.
pub fn encode(batch: &Multiset<Fact>) -> Vec<u8> {
    encode_traced(batch, None)
}

/// As [`encode`], optionally carrying a [`TraceCtx`] extension. With
/// `ctx = None` the output is byte-identical to [`encode`]; with a
/// context the [`FLAG_TRACE`] bit is set and the context precedes the
/// body. Canonical per `(batch, ctx)` pair.
pub fn encode_traced(batch: &Multiset<Fact>, ctx: Option<&TraceCtx>) -> Vec<u8> {
    let mut out = match ctx {
        None => vec![MAGIC, FORMAT_DELTA],
        Some(ctx) => {
            let mut out = vec![MAGIC, FORMAT_DELTA | FLAG_TRACE];
            put_varint(&mut out, ctx.origin_node);
            put_varint(&mut out, ctx.origin_seq);
            match ctx.cause {
                None => out.push(0),
                Some((node, seq)) => {
                    out.push(1);
                    put_varint(&mut out, node);
                    put_varint(&mut out, seq);
                }
            }
            out
        }
    };
    encode_body(batch, &mut out);
    out
}

/// The delta body shared by traced and untraced encodings: dictionary,
/// then sorted delta-encoded row groups.
fn encode_body(batch: &Multiset<Fact>, out: &mut Vec<u8>) {
    // The message's own interner: distinct values, sorted. Sorting
    // makes the index map monotone in `Value` order, so args-sorted
    // fact iteration yields lexicographically sorted index rows.
    let mut values: BTreeSet<&Value> = BTreeSet::new();
    for (f, _) in batch.iter() {
        for v in f.values() {
            values.insert(v);
        }
    }
    let index: BTreeMap<&Value, u64> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u64))
        .collect();

    put_varint(out, values.len() as u64);
    for v in &values {
        put_value(out, v);
    }

    // Group rows by (relation, arity). `Multiset` iterates facts in
    // (relation, args) order, so each group's rows arrive sorted.
    // Rows are (dictionary-index columns, multiplicity).
    type RowGroups<'a> = BTreeMap<(&'a str, usize), Vec<(Vec<u64>, u64)>>;
    let mut groups: RowGroups = BTreeMap::new();
    for (f, n) in batch.iter() {
        let row: Vec<u64> = f.args().iter().map(|v| index[v]).collect();
        groups
            .entry((f.relation().as_ref(), f.arity()))
            .or_default()
            .push((row, n as u64));
    }
    put_varint(out, groups.len() as u64);
    for ((name, arity), rows) in &groups {
        put_bytes(out, name.as_bytes());
        put_varint(out, *arity as u64);
        put_varint(out, rows.len() as u64);
        let mut prev = vec![0u64; *arity];
        for (row, n) in rows {
            debug_assert!(
                row.as_slice() >= prev.as_slice(),
                "group rows must be sorted"
            );
            put_varint(out, row[0] - prev[0]);
            for j in 1..*arity {
                put_varint(out, zigzag(row[j] as i64 - prev[j] as i64));
            }
            put_varint(out, *n);
            prev.clone_from(row);
        }
    }
}

/// Decode a delta wire payload back into a batch, discarding any trace
/// context. Strict: every structural invariant of [`encode`]'s output
/// is checked, so a corrupted payload fails instead of producing a
/// garbled batch.
pub fn decode(bytes: &[u8]) -> Result<Multiset<Fact>, WireError> {
    decode_traced(bytes).map(|(batch, _)| batch)
}

/// Read just the header + trace extension of a delta payload, without
/// touching the body. `None` when the payload is untraced or too
/// corrupt to carry a context — cheap enough to call on every hand-off.
pub fn peek_trace(bytes: &[u8]) -> Option<TraceCtx> {
    let mut r = Reader::new(bytes);
    if r.u8().ok()? != MAGIC || r.u8().ok()? != FORMAT_DELTA | FLAG_TRACE {
        return None;
    }
    read_trace_ctx(&mut r).ok()
}

fn read_trace_ctx(r: &mut Reader<'_>) -> Result<TraceCtx, WireError> {
    let origin_node = r.varint()?;
    let origin_seq = r.varint()?;
    let cause = match r.u8()? {
        0 => None,
        1 => Some((r.varint()?, r.varint()?)),
        _ => return Err(WireError::NonCanonical("bad cause flag")),
    };
    Ok(TraceCtx {
        origin_node,
        origin_seq,
        cause,
    })
}

/// As [`decode`], returning the [`TraceCtx`] extension when the payload
/// carries one. Both format bytes are accepted: [`FORMAT_DELTA`] (no
/// context) and [`FORMAT_DELTA`]`|`[`FLAG_TRACE`] (context precedes the
/// body).
pub fn decode_traced(bytes: &[u8]) -> Result<(Multiset<Fact>, Option<TraceCtx>), WireError> {
    let mut r = Reader::new(bytes);
    if r.u8().map_err(|_| WireError::BadHeader)? != MAGIC {
        return Err(WireError::BadHeader);
    }
    let ctx = match r.u8().map_err(|_| WireError::BadHeader)? {
        f if f == FORMAT_DELTA => None,
        f if f == FORMAT_DELTA | FLAG_TRACE => Some(read_trace_ctx(&mut r)?),
        _ => return Err(WireError::BadHeader),
    };

    let dict_len = r.varint()? as usize;
    if dict_len > r.remaining() {
        // Every dictionary entry takes at least one byte.
        return Err(WireError::Truncated);
    }
    let mut dict: Vec<Value> = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let v = r.value(0)?;
        if dict.last().is_some_and(|p| *p >= v) {
            return Err(WireError::NonCanonical("dictionary not strictly sorted"));
        }
        dict.push(v);
    }

    let group_count = r.varint()? as usize;
    if group_count > r.remaining() {
        return Err(WireError::Truncated);
    }
    let mut batch: Multiset<Fact> = Multiset::new();
    let mut prev_group: Option<(RelName, usize)> = None;
    for _ in 0..group_count {
        let name: RelName = Arc::from(r.str()?);
        let arity = r.varint()? as usize;
        if arity == 0 {
            return Err(WireError::NonCanonical("zero arity"));
        }
        let key = (name.clone(), arity);
        if prev_group
            .as_ref()
            .is_some_and(|p| (p.0.as_ref(), p.1) >= (key.0.as_ref(), key.1))
        {
            return Err(WireError::NonCanonical("groups not strictly sorted"));
        }
        prev_group = Some(key);
        let row_count = r.varint()? as usize;
        if row_count == 0 {
            return Err(WireError::NonCanonical("empty group"));
        }
        // Every row takes at least arity + 1 bytes.
        if row_count
            .checked_mul(arity + 1)
            .is_none_or(|need| need > r.remaining())
        {
            return Err(WireError::Truncated);
        }
        let mut prev = vec![0u64; arity];
        for i in 0..row_count {
            let mut row = vec![0u64; arity];
            row[0] = prev[0]
                .checked_add(r.varint()?)
                .ok_or(WireError::IndexOutOfRange)?;
            for j in 1..arity {
                let v = (prev[j] as i64)
                    .checked_add(unzigzag(r.varint()?))
                    .ok_or(WireError::IndexOutOfRange)?;
                if v < 0 {
                    return Err(WireError::IndexOutOfRange);
                }
                row[j] = v as u64;
            }
            if row.iter().any(|&c| c as usize >= dict_len) {
                return Err(WireError::IndexOutOfRange);
            }
            if i > 0 && row <= prev {
                return Err(WireError::NonCanonical("rows not strictly sorted"));
            }
            let mult = r.varint()?;
            if mult == 0 {
                return Err(WireError::NonCanonical("zero multiplicity"));
            }
            if mult > u32::MAX as u64 {
                return Err(WireError::NonCanonical("implausible multiplicity"));
            }
            let args: Vec<Value> = row.iter().map(|&c| dict[c as usize].clone()).collect();
            let name = prev_group.as_ref().expect("group name set above").0.clone();
            batch.insert_n(Fact::from_rel(name, args), mult as usize);
            prev = row;
        }
    }
    if r.remaining() > 0 {
        return Err(WireError::TrailingBytes);
    }
    Ok((batch, ctx))
}

/// Encode a batch the pre-v2 way: one record per distinct fact, each
/// carrying its full relation name and self-described argument values,
/// plus a multiplicity — no dictionary, no deltas. This is the E23
/// baseline ("old fact payloads").
pub fn encode_naive(batch: &Multiset<Fact>) -> Vec<u8> {
    let mut out = vec![MAGIC, FORMAT_NAIVE];
    put_varint(&mut out, batch.support().count() as u64);
    for (f, n) in batch.iter() {
        put_bytes(&mut out, f.relation().as_bytes());
        put_varint(&mut out, f.arity() as u64);
        for v in f.values() {
            put_value(&mut out, v);
        }
        put_varint(&mut out, n as u64);
    }
    out
}

/// Decode a naive payload (the E23 baseline decoder).
pub fn decode_naive(bytes: &[u8]) -> Result<Multiset<Fact>, WireError> {
    let mut r = Reader::new(bytes);
    if r.u8().map_err(|_| WireError::BadHeader)? != MAGIC
        || r.u8().map_err(|_| WireError::BadHeader)? != FORMAT_NAIVE
    {
        return Err(WireError::BadHeader);
    }
    let count = r.varint()? as usize;
    if count > r.remaining() {
        return Err(WireError::Truncated);
    }
    let mut batch: Multiset<Fact> = Multiset::new();
    for _ in 0..count {
        let name: RelName = Arc::from(r.str()?);
        let arity = r.varint()? as usize;
        if arity == 0 {
            return Err(WireError::NonCanonical("zero arity"));
        }
        if arity > r.remaining() {
            return Err(WireError::Truncated);
        }
        let mut args = Vec::with_capacity(arity);
        for _ in 0..arity {
            args.push(r.value(0)?);
        }
        let mult = r.varint()?;
        if mult == 0 {
            return Err(WireError::NonCanonical("zero multiplicity"));
        }
        if mult > u32::MAX as u64 {
            return Err(WireError::NonCanonical("implausible multiplicity"));
        }
        batch.insert_n(Fact::from_rel(name, args), mult as usize);
    }
    if r.remaining() > 0 {
        return Err(WireError::TrailingBytes);
    }
    Ok(batch)
}

/// Bytes the naive (pre-v2) encoding would spend on this batch — the
/// per-message baseline accumulated into the executor's
/// `wire_bytes_naive` counters.
pub fn naive_len(batch: &Multiset<Fact>) -> usize {
    encode_naive(batch).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use calm_common::fact::fact;

    fn batch_of(facts: &[(Fact, usize)]) -> Multiset<Fact> {
        let mut m = Multiset::new();
        for (f, n) in facts {
            m.insert_n(f.clone(), *n);
        }
        m
    }

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut r = Reader::new(&out);
            assert_eq!(r.varint().unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn empty_batch_round_trips() {
        let m: Multiset<Fact> = Multiset::new();
        let bytes = encode(&m);
        assert_eq!(decode(&bytes).unwrap(), m);
        assert_eq!(decode_naive(&encode_naive(&m)).unwrap(), m);
    }

    #[test]
    fn mixed_batch_round_trips() {
        let m = batch_of(&[
            (fact("E", [1, 2]), 1),
            (fact("E", [1, 3]), 2),
            (fact("E", [2, 3]), 1),
            (fact("T", [1, 2, 3]), 3),
            (Fact::new("S", vec![Value::str("a"), Value::Int(-5)]), 1),
            (
                Fact::new("K", vec![Value::skolem("f", vec![Value::Int(9)])]),
                2,
            ),
        ]);
        let bytes = encode(&m);
        assert_eq!(decode(&bytes).unwrap(), m);
        assert_eq!(decode_naive(&encode_naive(&m)).unwrap(), m);
    }

    #[test]
    fn encoding_is_canonical() {
        // Insertion order cannot matter: the multiset sorts, and the
        // encoder follows multiset order.
        let a = batch_of(&[(fact("E", [3, 4]), 1), (fact("E", [1, 2]), 2)]);
        let b = batch_of(&[(fact("E", [1, 2]), 2), (fact("E", [3, 4]), 1)]);
        assert_eq!(encode(&a), encode(&b));
    }

    #[test]
    fn dense_batches_beat_the_naive_encoding() {
        // A broadcast-shaped batch: many facts of one relation over a
        // small domain — the common case on the executor's channels.
        let facts: Vec<(Fact, usize)> = (0..50)
            .flat_map(|i| (0..4).map(move |j| (fact("reach", [i, i + j]), 1)))
            .collect();
        let m = batch_of(&facts);
        let delta = encode(&m).len();
        let naive = naive_len(&m);
        assert!(
            delta * 2 < naive,
            "delta encoding should at least halve a dense batch: {delta} vs {naive}"
        );
    }

    #[test]
    fn same_name_different_arity_stays_separate() {
        let m = batch_of(&[(fact("R", [7]), 1), (fact("R", [7, 8]), 1)]);
        assert_eq!(decode(&encode(&m)).unwrap(), m);
    }

    #[test]
    fn corrupted_payloads_are_rejected() {
        let m = batch_of(&[(fact("E", [1, 2]), 1), (fact("E", [5, 9]), 4)]);
        let bytes = encode(&m);
        // Bad magic / format.
        assert_eq!(decode(&[]), Err(WireError::BadHeader));
        assert_eq!(decode(&[MAGIC]), Err(WireError::BadHeader));
        assert_eq!(
            decode(&encode_naive(&m)),
            Err(WireError::BadHeader),
            "format bytes keep the two encodings apart"
        );
        // Every strict prefix fails (no silent truncation).
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        // Trailing garbage fails.
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(decode(&long), Err(WireError::TrailingBytes));
        // Single-byte corruption must never panic; it may decode to a
        // different batch only if every invariant still holds.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xff;
            let _ = decode(&bad);
        }
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A huge dictionary length with no dictionary behind it.
        let mut bytes = vec![MAGIC, FORMAT_DELTA];
        put_varint(&mut bytes, u64::MAX);
        assert_eq!(decode(&bytes), Err(WireError::Truncated));
        // A huge row count inside a plausible group.
        let mut bytes = vec![MAGIC, FORMAT_DELTA];
        put_varint(&mut bytes, 1); // dict: one value
        put_value(&mut bytes, &Value::Int(1));
        put_varint(&mut bytes, 1); // one group
        put_bytes(&mut bytes, b"E");
        put_varint(&mut bytes, 1); // arity 1
        put_varint(&mut bytes, u64::MAX); // row count
        assert_eq!(decode(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn traced_payloads_round_trip_with_context() {
        let m = batch_of(&[(fact("E", [1, 2]), 1), (fact("E", [5, 9]), 4)]);
        for ctx in [
            TraceCtx {
                origin_node: 0,
                origin_seq: 1,
                cause: None,
            },
            TraceCtx {
                origin_node: 7,
                origin_seq: 130, // multi-byte varint
                cause: Some((3, 12)),
            },
        ] {
            let bytes = encode_traced(&m, Some(&ctx));
            assert_eq!(bytes[1], FORMAT_DELTA | FLAG_TRACE);
            let (back, got) = decode_traced(&bytes).unwrap();
            assert_eq!(back, m);
            assert_eq!(got, Some(ctx));
            // The cheap header peek agrees with the full decode.
            assert_eq!(peek_trace(&bytes), Some(ctx));
            // The plain decoder accepts and discards the context.
            assert_eq!(decode(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn untraced_encoding_is_byte_identical_and_flag_free() {
        let m = batch_of(&[(fact("E", [1, 2]), 2)]);
        let plain = encode(&m);
        assert_eq!(encode_traced(&m, None), plain, "None ctx adds zero bytes");
        assert_eq!(plain[1], FORMAT_DELTA);
        assert_eq!(peek_trace(&plain), None);
        let (back, ctx) = decode_traced(&plain).unwrap();
        assert_eq!(back, m);
        assert_eq!(ctx, None);
    }

    #[test]
    fn traced_encoding_is_canonical_per_context() {
        let a = batch_of(&[(fact("E", [3, 4]), 1), (fact("E", [1, 2]), 2)]);
        let b = batch_of(&[(fact("E", [1, 2]), 2), (fact("E", [3, 4]), 1)]);
        let ctx = TraceCtx {
            origin_node: 2,
            origin_seq: 9,
            cause: Some((1, 4)),
        };
        assert_eq!(encode_traced(&a, Some(&ctx)), encode_traced(&b, Some(&ctx)));
        // A different context gives different bytes.
        let ctx2 = TraceCtx {
            origin_seq: 10,
            ..ctx
        };
        assert_ne!(
            encode_traced(&a, Some(&ctx)),
            encode_traced(&a, Some(&ctx2))
        );
    }

    #[test]
    fn corrupted_traced_payloads_are_rejected() {
        let m = batch_of(&[(fact("E", [1, 2]), 1), (fact("E", [5, 9]), 4)]);
        let ctx = TraceCtx {
            origin_node: 300,
            origin_seq: 77,
            cause: Some((2, 1)),
        };
        let bytes = encode_traced(&m, Some(&ctx));
        // Every strict prefix fails — including prefixes ending inside
        // the trace extension itself.
        for cut in 0..bytes.len() {
            assert!(
                decode_traced(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        // A bad cause flag is non-canonical. Extension layout: header
        // (2) + varint(300) (2 bytes) + varint(77) (1 byte) puts the
        // cause flag at offset 5.
        let mut bad = bytes.clone();
        assert_eq!(bad[5], 1, "cause flag offset");
        bad[5] = 2;
        assert_eq!(
            decode_traced(&bad),
            Err(WireError::NonCanonical("bad cause flag"))
        );
        // The naive format never carries the flag.
        let mut naive = encode_naive(&m);
        naive[1] |= FLAG_TRACE;
        assert!(decode_naive(&naive).is_err());
        // Single-byte corruption must never panic.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xff;
            let _ = decode_traced(&bad);
        }
    }

    #[test]
    fn deep_skolem_nesting_is_bounded() {
        let mut v = Value::Int(0);
        for _ in 0..MAX_VALUE_DEPTH + 8 {
            v = Value::skolem("f", vec![v]);
        }
        let m = batch_of(&[(Fact::new("R", vec![v]), 1)]);
        assert_eq!(decode(&encode(&m)), Err(WireError::TooDeep));
    }
}
