//! The cross-process equivalence suite: the CALM confluence guarantee
//! across *process* boundaries.
//!
//! Every run here goes over real TCP sockets — a coordinator with a
//! listener on an ephemeral port, workers connecting, handshaking, and
//! exchanging framed control traffic. Workers are driven on threads
//! (calling the same [`run_net_worker`] entry point the `calm
//! net-worker` binary uses) so the suite is hermetic and fast; the CLI
//! test suite and the CI job run the same engine with genuine OS
//! processes.
//!
//! Asserted, per the issue: all three strategy families × ≥10 seeds ×
//! procs {2, 4} byte-identical to the sequential oracle; the merged
//! wire-accounting identity `attempts == delivered + suppressed +
//! dropped + buffered` across process boundaries under a fault plan;
//! and a worker death mid-run ending in a reported non-quiescent
//! result instead of a hang.

use calm_common::rng::Rng;
use calm_common::{fact, Instance};
use calm_net::{
    run_net_worker, run_process, Assign, JobSpec, ProcessConfig, ProcessRunResult, SpawnHandle,
    WorkerSetup,
};
use calm_obs::Obs;
use calm_queries::qtc::qtc_datalog;
use calm_queries::tc::{edges_without_source_loop, tc_datalog};
use calm_transducer::{
    run, DisjointStrategy, DistinctStrategy, DistributionPolicy, DomainGuidedPolicy, HashPolicy,
    MonotoneBroadcast, Network, Scheduler, SystemConfig, Transducer, TransducerNetwork,
};

const PROC_COUNTS: [usize; 2] = [2, 4];

/// Base offset for the seed sweep (CI reruns with `CALM_NET_SEED=1..`).
fn seed_base() -> u64 {
    std::env::var("CALM_NET_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// A small random edge relation over `domain` values, `edges` tuples.
fn random_edges(seed: u64, domain: i64, edges: usize) -> Instance {
    let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    Instance::from_facts((0..edges).map(|_| {
        fact(
            "E",
            [
                rng.gen_range(0..domain as u64) as i64,
                rng.gen_range(0..domain as u64) as i64,
            ],
        )
    }))
}

/// Build one strategy family by name — the same resolution the CLI's
/// net-worker builder performs, minus the Datalog-source parsing (the
/// suite closes over the input instance instead).
fn family(
    strategy: &str,
    nodes: usize,
) -> (
    Box<dyn Transducer>,
    Box<dyn DistributionPolicy>,
    SystemConfig,
) {
    match strategy {
        "monotone" => (
            Box::new(MonotoneBroadcast::new(Box::new(tc_datalog()))),
            Box::new(HashPolicy::new(Network::of_size(nodes))),
            SystemConfig::ORIGINAL,
        ),
        "distinct" => (
            Box::new(DistinctStrategy::new(Box::new(edges_without_source_loop()))),
            Box::new(HashPolicy::new(Network::of_size(nodes))),
            SystemConfig::POLICY_AWARE,
        ),
        "disjoint" => (
            Box::new(DisjointStrategy::new(Box::new(qtc_datalog()))),
            Box::new(DomainGuidedPolicy::new(Network::of_size(nodes))),
            SystemConfig::POLICY_AWARE,
        ),
        other => panic!("unknown strategy family {other}"),
    }
}

fn spec_for(strategy: &str, nodes: usize, faults: Option<String>) -> JobSpec {
    JobSpec {
        // The suite's builder closes over the input; the program/facts
        // hand-off by value is exercised end-to-end by the CLI tests.
        program: String::new(),
        facts: String::new(),
        strategy: strategy.to_string(),
        nodes,
        eval_threads: 1,
        step_budget: 500_000,
        faults,
        trace_prefix: None,
        flight_path: None,
    }
}

/// Run the process engine over real sockets with thread-backed workers.
fn run_process_tcp(
    strategy: &'static str,
    input: &Instance,
    nodes: usize,
    procs: usize,
    faults: Option<String>,
) -> ProcessRunResult {
    // Budget 0: the un-supervised transport, exactly as before PR 9.
    // The supervised (respawn + restore) paths have their own suite in
    // `recovery.rs`.
    let cfg = ProcessConfig::new(procs, spec_for(strategy, nodes, faults)).with_respawn_budget(0);
    let input = input.clone();
    let spawner = move |k: usize, addr: &str| -> Result<SpawnHandle, String> {
        let addr = addr.to_string();
        let input = input.clone();
        Ok(SpawnHandle::Thread(std::thread::spawn(move || {
            let builder = move |assign: &Assign| -> Result<WorkerSetup, String> {
                let (transducer, policy, config) = family(&assign.spec.strategy, assign.spec.nodes);
                Ok(WorkerSetup {
                    transducer,
                    policy,
                    config,
                    input: input.clone(),
                    obs: Obs::noop(),
                })
            };
            if let Err(e) = run_net_worker(&addr, k, &builder) {
                eprintln!("worker {k} failed: {e}");
            }
        })))
    };
    run_process(&cfg, &spawner, &Obs::noop()).expect("process run starts")
}

/// Project `out(R)` from the collected states, exactly as the threaded
/// engine's join does (the transport is program-agnostic, so the
/// output schema lives with the caller).
fn project_output(t: &dyn Transducer, r: &ProcessRunResult) -> Instance {
    let out_schema = &t.schema().output;
    let mut output = Instance::new();
    for state in r.states.values() {
        output.extend(state.restrict(out_schema).facts());
    }
    output
}

/// Sequential oracle + process engine at every proc count; assert
/// byte-identical output and per-worker conservation.
fn assert_process_confluent(strategy: &'static str, nodes: usize, input: &Instance, label: &str) {
    let (t, policy, sys) = family(strategy, nodes);
    let seq = run(
        &TransducerNetwork {
            transducer: t.as_ref(),
            policy: policy.as_ref(),
            config: sys,
        },
        input,
        &Scheduler::RoundRobin,
        500_000,
    );
    assert!(seq.quiescent, "{label}: sequential oracle must quiesce");
    for procs in PROC_COUNTS {
        let r = run_process_tcp(strategy, input, nodes, procs, None);
        let tag = format!("{label} [process x{procs}]");
        assert!(r.failed_workers.is_empty(), "{tag}: no worker may fail");
        assert!(r.quiescent, "{tag}: termination must be detected");
        assert_eq!(
            project_output(t.as_ref(), &r),
            seq.output,
            "{tag}: output differs from the sequential oracle"
        );
        // Per-worker conservation survives the process boundary.
        for w in &r.per_worker {
            assert_eq!(
                w.enqueued,
                w.metrics.messages_delivered + w.buffered,
                "{tag}: worker {} conservation",
                w.worker
            );
        }
        let buffered: usize = r.per_worker.iter().map(|w| w.buffered).sum();
        assert_eq!(buffered, 0, "{tag}: quiescent run left facts buffered");
        assert_eq!(
            r.metrics.messages_sent, r.metrics.messages_delivered,
            "{tag}: merged conservation"
        );
        assert_eq!(r.states.len(), nodes, "{tag}: every node reported a state");
    }
}

#[test]
fn monotone_process_runs_match_oracle_across_10_seeds() {
    for i in 0..10 {
        let seed = seed_base() * 1000 + i;
        let input = random_edges(seed, 6, 3 + (i as usize % 5));
        assert_process_confluent("monotone", 4, &input, &format!("M seed {seed}"));
    }
}

#[test]
fn distinct_process_runs_match_oracle_across_10_seeds() {
    for i in 0..10 {
        let seed = seed_base() * 1000 + 100 + i;
        let input = random_edges(seed, 5, 3 + (i as usize % 3));
        assert_process_confluent("distinct", 3, &input, &format!("Mdistinct seed {seed}"));
    }
}

#[test]
fn disjoint_process_runs_match_oracle_across_10_seeds() {
    for i in 0..10 {
        let seed = seed_base() * 1000 + 200 + i;
        // The request/OK/ack protocol is per-value: keep domains small.
        let input = random_edges(seed, 4, 2 + (i as usize % 2));
        assert_process_confluent("disjoint", 3, &input, &format!("Mdisjoint seed {seed}"));
    }
}

#[test]
fn faulty_process_runs_keep_the_wire_accounting_identity() {
    // TCP is reliable, but the fault *plan* still injects loss,
    // duplication and delay above it — and the merged accounting
    // identity must hold with link counters split across processes
    // (sender-side counters at the sending worker, receiver-side at
    // the receiving worker).
    for i in 0..3u64 {
        let seed = seed_base() * 1000 + 300 + i;
        let input = random_edges(seed, 6, 4);
        let (t, policy, sys) = family("monotone", 4);
        let seq = run(
            &TransducerNetwork {
                transducer: t.as_ref(),
                policy: policy.as_ref(),
                config: sys,
            },
            &input,
            &Scheduler::RoundRobin,
            500_000,
        );
        assert!(seq.quiescent);
        for procs in PROC_COUNTS {
            let spec = format!("seed={seed},drop=0.1,dup=0.05,delay=0.2/4");
            let r = run_process_tcp("monotone", &input, 4, procs, Some(spec));
            let tag = format!("faulty seed {seed} x{procs}");
            assert!(r.failed_workers.is_empty(), "{tag}: no worker may fail");
            assert!(r.quiescent, "{tag}: termination must be detected");
            assert_eq!(
                project_output(t.as_ref(), &r),
                seq.output,
                "{tag}: output differs from the sequential oracle"
            );
            let mut buffered_total = 0;
            for ((src, dst), lc) in &r.link_counters {
                assert_eq!(
                    lc.attempts,
                    lc.delivered + lc.suppressed + lc.dropped + lc.buffered,
                    "{tag}: link {src}->{dst} wire conservation across processes"
                );
                buffered_total += lc.buffered;
            }
            let f = &r.faults;
            assert!(f.attempts > 0, "{tag}: the gauntlet ran");
            assert_eq!(
                f.attempts,
                f.delivered_batches + f.duplicates_suppressed + f.dropped + buffered_total,
                "{tag}: global wire conservation across processes"
            );
            assert_eq!(f.retry_exhausted, 0, "{tag}: nothing abandoned");
            assert_eq!(
                buffered_total, 0,
                "{tag}: quiescent run left wires in flight"
            );
        }
    }
}

#[test]
fn worker_death_reports_non_quiescent_instead_of_hanging() {
    // Worker 1 handshakes and then dies (its builder fails — the same
    // socket-level signature as a `kill -9` right after Assign). The
    // coordinator must detect the lost connection, break the
    // survivors' now-headless token ring with a Terminate broadcast,
    // and return a *non-quiescent* result naming the failure — not
    // hang waiting for a Final that will never come.
    let input = calm_common::generator::path(5);
    // Budget 0 keeps the abort-on-death contract this test pins down;
    // with a budget the same death would be respawned or adopted.
    let cfg = ProcessConfig::new(4, spec_for("monotone", 4, None)).with_respawn_budget(0);
    let input_c = input.clone();
    let spawner = move |k: usize, addr: &str| -> Result<SpawnHandle, String> {
        let addr = addr.to_string();
        let input = input_c.clone();
        Ok(SpawnHandle::Thread(std::thread::spawn(move || {
            let builder = move |assign: &Assign| -> Result<WorkerSetup, String> {
                if assign.worker == 1 {
                    return Err("simulated worker death".into());
                }
                let (transducer, policy, config) = family(&assign.spec.strategy, assign.spec.nodes);
                Ok(WorkerSetup {
                    transducer,
                    policy,
                    config,
                    input: input.clone(),
                    obs: Obs::noop(),
                })
            };
            let _ = run_net_worker(&addr, k, &builder);
        })))
    };
    let r = run_process(&cfg, &spawner, &Obs::noop()).expect("run completes");
    assert!(!r.quiescent, "a lost worker forfeits quiescence");
    assert_eq!(r.failed_workers, vec![1], "the dead worker is named");
    assert!(
        r.faults.crashes >= 1,
        "the death is counted as a crash in the merged fault stats"
    );
    assert_eq!(
        r.per_worker.len(),
        3,
        "the three survivors still report their finals"
    );
}

#[test]
fn handshake_barrier_names_a_worker_that_never_says_hello() {
    // Worker 1 is a stub TCP client: it connects to the coordinator and
    // then goes silent — no Hello frame, ever. The barrier must expire
    // at the configured deadline and fail with an error *naming* the
    // missing worker, not hang waiting on a read.
    let input = calm_common::generator::path(4);
    let cfg = ProcessConfig::new(2, spec_for("monotone", 4, None))
        .with_respawn_budget(0)
        .with_handshake_deadline(std::time::Duration::from_millis(500));
    let spawner = move |k: usize, addr: &str| -> Result<SpawnHandle, String> {
        let addr = addr.to_string();
        let input = input.clone();
        Ok(SpawnHandle::Thread(std::thread::spawn(move || {
            if k == 1 {
                // Connect, say nothing, hold the socket open past the
                // deadline. (Dropping it early would look like a clean
                // EOF; holding it is the truly-hung shape.)
                let s = std::net::TcpStream::connect(&addr);
                std::thread::sleep(std::time::Duration::from_millis(1500));
                drop(s);
                return;
            }
            let builder = move |assign: &Assign| -> Result<WorkerSetup, String> {
                let (transducer, policy, config) = family(&assign.spec.strategy, assign.spec.nodes);
                Ok(WorkerSetup {
                    transducer,
                    policy,
                    config,
                    input: input.clone(),
                    obs: Obs::noop(),
                })
            };
            let _ = run_net_worker(&addr, k, &builder);
        })))
    };
    let start = std::time::Instant::now();
    let err = run_process(&cfg, &spawner, &Obs::noop())
        .expect_err("a silent worker must fail the barrier");
    let msg = err.to_string();
    assert!(
        msg.contains("worker(s) 1"),
        "the silent worker is named: {msg}"
    );
    assert!(
        msg.contains("handshake"),
        "the failure is attributed to the barrier: {msg}"
    );
    assert!(
        start.elapsed() < std::time::Duration::from_secs(10),
        "the barrier must expire at its deadline, not hang"
    );
}

#[test]
fn handshake_barrier_names_a_worker_that_never_connects() {
    // Worker 1 never even dials in. Same contract: deadline, named
    // worker, nonzero error.
    let input = calm_common::generator::path(4);
    let cfg = ProcessConfig::new(2, spec_for("monotone", 4, None))
        .with_respawn_budget(0)
        .with_handshake_deadline(std::time::Duration::from_millis(400));
    let spawner = move |k: usize, addr: &str| -> Result<SpawnHandle, String> {
        let addr = addr.to_string();
        let input = input.clone();
        Ok(SpawnHandle::Thread(std::thread::spawn(move || {
            if k == 1 {
                return; // vanishes without connecting
            }
            let builder = move |assign: &Assign| -> Result<WorkerSetup, String> {
                let (transducer, policy, config) = family(&assign.spec.strategy, assign.spec.nodes);
                Ok(WorkerSetup {
                    transducer,
                    policy,
                    config,
                    input: input.clone(),
                    obs: Obs::noop(),
                })
            };
            let _ = run_net_worker(&addr, k, &builder);
        })))
    };
    let err = run_process(&cfg, &spawner, &Obs::noop())
        .expect_err("a missing worker must fail the barrier");
    let msg = err.to_string();
    assert!(msg.contains("worker(s) 1"), "{msg}");
}

#[test]
fn proc_counts_clamp_to_the_network_size() {
    let input = calm_common::generator::path(5);
    let (t, policy, sys) = family("monotone", 4);
    let expected = run(
        &TransducerNetwork {
            transducer: t.as_ref(),
            policy: policy.as_ref(),
            config: sys,
        },
        &input,
        &Scheduler::RoundRobin,
        500_000,
    )
    .output;
    // procs=1 degenerates to the sequential shard; procs=16 clamps to
    // the node count.
    for procs in [1, 16] {
        let r = run_process_tcp("monotone", &input, 4, procs, None);
        assert!(r.quiescent, "procs {procs}");
        assert!(r.per_worker.len() <= 4, "procs {procs} clamps to |N|");
        assert_eq!(project_output(t.as_ref(), &r), expected, "procs {procs}");
    }
}
