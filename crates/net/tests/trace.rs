//! Causal-tracing invariants, end to end: a traced threaded run under
//! message loss must leave a JSONL log from which the happens-before
//! graph reconstructs *completely* (every delivery traced to its send)
//! and *acyclically* — and tracing must never perturb what the engines
//! compute: outputs stay byte-identical to the sequential oracle at any
//! worker count, traced or not.

use calm_common::fact::fact;
use calm_common::instance::Instance;
use calm_net::{
    run_threaded, run_threaded_with, FaultPlan, Programs, ThreadedConfig, ThreadedNetwork,
};
use calm_obs::trace::analyze_lines;
use calm_obs::{JsonlSink, Obs};
use calm_queries::tc::tc_datalog;
use calm_transducer::{
    run, HashPolicy, MonotoneBroadcast, Network, Scheduler, SystemConfig, TransducerNetwork,
};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// An in-memory writer sharing its buffer with the test.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("utf-8 output")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn chain_input(n: i64) -> Instance {
    Instance::from_facts((0..n).map(|i| fact("E", [i, i + 1])))
}

#[test]
fn faulty_threaded_trace_reconstructs_a_complete_acyclic_graph() {
    // The acceptance run: 5% message loss, several workers, tracing on.
    // Every delivered batch must trace back to its send and the causal
    // graph must be acyclic — under retransmission, crash-free loss and
    // receiver dedup alike.
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let policy = HashPolicy::new(Network::of_size(4));
    let tn = ThreadedNetwork {
        programs: Programs::Shared(&t),
        policy: &policy,
        config: SystemConfig::ORIGINAL,
    };
    let buf = SharedBuf::default();
    let obs = Obs::new(Arc::new(JsonlSink::to_writer(Box::new(buf.clone()))));
    let plan = FaultPlan::uniform(23, 0.05, 0.0);
    let r = run_threaded_with(
        &tn,
        &chain_input(8),
        &ThreadedConfig::new(3).with_faults(plan),
        &obs,
    );
    obs.finish();
    assert!(r.quiescent, "lossy run must still quiesce");

    let text = buf.text();
    let a = analyze_lines(text.lines());
    assert!(
        a.invariants_ok(),
        "happens-before graph must be complete and acyclic: {:?}",
        a.violations
    );
    assert!(a.sends > 0, "sends traced");
    assert!(a.deliveries > 0, "deliveries traced");
    assert_eq!(a.unparsed_lines, 0, "no torn lines");
    // The fault plan actually bit: losses were observed and healed.
    assert!(r.faults.dropped > 0, "drop=0.05 must drop something");
    assert_eq!(
        a.drops, r.faults.dropped,
        "every drop carries a trace event"
    );
    assert_eq!(
        a.retransmits, r.faults.retransmissions,
        "every retransmission carries a trace event"
    );
    assert_eq!(
        a.dedups, r.faults.duplicates_suppressed,
        "every dedup suppression carries a trace event"
    );
    // The report walks a critical path back to a causal root.
    assert!(!a.critical_path.is_empty(), "critical path reconstructed");
    let root = a.critical_path.last().unwrap();
    assert!(
        root.id.1 == 0 || a.critical_path.len() > 1,
        "path walks causes, newest first"
    );
}

#[test]
fn sequential_trace_speaks_the_same_vocabulary() {
    // The sequential engine's trace must analyze with the same tooling
    // and pass the same invariants — same `trace/send` / `trace/deliver`
    // events, same id scheme.
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let policy = HashPolicy::new(Network::of_size(3));
    let tn = TransducerNetwork {
        transducer: &t,
        policy: &policy,
        config: SystemConfig::ORIGINAL,
    };
    let buf = SharedBuf::default();
    let obs = Obs::new(Arc::new(JsonlSink::to_writer(Box::new(buf.clone()))));
    let r = calm_transducer::run_with(
        &tn,
        &chain_input(5),
        &Scheduler::RoundRobin,
        1_000_000,
        &obs,
    );
    obs.finish();
    assert!(r.quiescent);

    let text = buf.text();
    let a = analyze_lines(text.lines());
    assert!(a.invariants_ok(), "{:?}", a.violations);
    assert!(a.sends > 0);
    assert!(a.deliveries > 0);
    // Broadcast: each send is delivered to every other node.
    assert_eq!(a.deliveries, a.sends * 2);
    assert!(!a.critical_path.is_empty());
    // Class fan-out picked up the strategy's fact broadcasts.
    assert!(a.classes.contains_key("fact"), "{:?}", a.classes.keys());
}

#[test]
fn tracing_never_perturbs_outputs() {
    // Byte-identity oracle discipline with the recorder on: for any
    // worker count, with and without faults, the traced run's output
    // must equal the untraced run's output must equal the sequential
    // oracle's.
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let policy = HashPolicy::new(Network::of_size(4));
    let input = chain_input(6);
    let seq_tn = TransducerNetwork {
        transducer: &t,
        policy: &policy,
        config: SystemConfig::ORIGINAL,
    };
    let oracle = run(&seq_tn, &input, &Scheduler::RoundRobin, 1_000_000);
    assert!(oracle.quiescent);

    // Sequential, traced: identical output.
    let obs = Obs::new(Arc::new(JsonlSink::to_writer(Box::new(std::io::sink()))));
    let seq_traced =
        calm_transducer::run_with(&seq_tn, &input, &Scheduler::RoundRobin, 1_000_000, &obs);
    obs.finish();
    assert_eq!(seq_traced.output, oracle.output, "sequential traced");

    let tn = ThreadedNetwork {
        programs: Programs::Shared(&t),
        policy: &policy,
        config: SystemConfig::ORIGINAL,
    };
    for workers in [1, 2, 8] {
        for faults in [None, Some(FaultPlan::uniform(7, 0.1, 0.05))] {
            let mut cfg = ThreadedConfig::new(workers);
            if let Some(plan) = faults.clone() {
                cfg = cfg.with_faults(plan);
            }
            let untraced = run_threaded(&tn, &input, &cfg);
            let obs = Obs::new(Arc::new(JsonlSink::to_writer(Box::new(std::io::sink()))));
            let traced = run_threaded_with(&tn, &input, &cfg, &obs);
            obs.finish();
            let tag = format!("workers={workers} faults={}", faults.is_some());
            assert!(traced.quiescent, "{tag}");
            assert_eq!(traced.output, oracle.output, "{tag}: traced vs oracle");
            assert_eq!(untraced.output, traced.output, "{tag}: untraced vs traced");
            assert_eq!(
                untraced.metrics.messages_sent, traced.metrics.messages_sent,
                "{tag}: tracing must not change engine-level sends"
            );
        }
    }
}
