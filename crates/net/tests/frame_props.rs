//! Property-style tests of the frame codec (seeded randomized sweeps —
//! the repo carries no external proptest dependency, so the properties
//! are driven by the in-tree deterministic RNG).
//!
//! Properties, per the issue: random payloads round-trip through
//! arbitrarily chunked readers/writers; *every* strict prefix of a
//! frame is rejected (as a link fault, never as a short success);
//! garbage after a well-formed frame is detected as corruption.

use calm_common::rng::Rng;
use calm_net::transport::{read_frame, write_frame, FrameError, FRAME_MAGIC};
use std::io::{Read, Write};

/// A reader that returns the stream in random-size chunks — the
/// partial-read schedules a socket can produce, all of them.
struct Chunked<'a> {
    data: &'a [u8],
    rng: Rng,
}

impl Read for Chunked<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.data.is_empty() || buf.is_empty() {
            return Ok(0);
        }
        let max = self.data.len().min(buf.len());
        let n = 1 + self.rng.gen_range(0..max as u64) as usize;
        buf[..n].copy_from_slice(&self.data[..n]);
        self.data = &self.data[n..];
        Ok(n)
    }
}

/// A writer that accepts random-size chunks.
struct ChunkedWriter {
    out: Vec<u8>,
    rng: Rng,
}

impl Write for ChunkedWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let n = 1 + self.rng.gen_range(0..buf.len() as u64) as usize;
        self.out.extend_from_slice(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn random_payload(rng: &mut Rng) -> Vec<u8> {
    let len = rng.gen_range(0..2048) as usize;
    (0..len).map(|_| rng.gen_range(0..256) as u8).collect()
}

#[test]
fn random_payloads_round_trip_through_random_chunking() {
    let mut rng = Rng::seed_from_u64(0xF4A3);
    for case in 0..200u64 {
        let payload = random_payload(&mut rng);
        let mut w = ChunkedWriter {
            out: Vec::new(),
            rng: Rng::seed_from_u64(case),
        };
        write_frame(&mut w, &payload).expect("write");
        let mut r = Chunked {
            data: &w.out,
            rng: Rng::seed_from_u64(case ^ 0xBEEF),
        };
        assert_eq!(read_frame(&mut r).expect("read"), payload, "case {case}");
    }
}

#[test]
fn random_strict_prefixes_are_always_rejected() {
    let mut rng = Rng::seed_from_u64(0x9D0F);
    for case in 0..200u64 {
        let payload = random_payload(&mut rng);
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &payload).expect("write");
        let cut = rng.gen_range(0..bytes.len() as u64) as usize;
        match read_frame(&mut &bytes[..cut]) {
            Err(FrameError::LinkDown(_)) if cut > 0 => {}
            Err(FrameError::Closed) if cut == 0 => {}
            other => panic!("case {case}: prefix of {cut} bytes gave {other:?}"),
        }
    }
}

#[test]
fn random_garbage_after_a_frame_is_detected() {
    let mut rng = Rng::seed_from_u64(0x6A7B);
    for case in 0..200u64 {
        let payload = random_payload(&mut rng);
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &payload).expect("write");
        // Garbage whose first two bytes are not the magic.
        let mut junk: Vec<u8> = (0..1 + rng.gen_range(0..32))
            .map(|_| rng.gen_range(0..256) as u8)
            .collect();
        if junk.len() >= 2 && junk[..2] == FRAME_MAGIC {
            junk[1] ^= 0xFF;
        }
        if junk.len() == 1 {
            // A single byte is an incomplete header, not detectable
            // corruption — force two bytes of non-magic.
            junk.push(!FRAME_MAGIC[1]);
            if junk[..2] == FRAME_MAGIC {
                junk[0] ^= 0xFF;
            }
        }
        bytes.extend_from_slice(&junk);
        let mut cur = &bytes[..];
        assert_eq!(read_frame(&mut cur).expect("first frame"), payload);
        match read_frame(&mut cur) {
            Err(FrameError::Corrupt(_)) | Err(FrameError::LinkDown(_)) => {}
            other => panic!("case {case}: garbage gave {other:?}"),
        }
    }
}
