//! Wire-format property tests (hand-rolled, seeded — the workspace is
//! dependency-free):
//!
//! * encode/decode round-trips over random batches, including the
//!   degenerate shapes (empty, single-row, max-arity, string/Skolem
//!   values, multiplicities);
//! * canonical bytes: equal multisets encode identically regardless of
//!   construction order;
//! * every strict prefix of a valid payload is rejected — checked both
//!   at the codec and end-to-end through [`ReliableNet::receive`],
//!   where a corrupted wire must count as a drop, leave the sequence
//!   number unconsumed, and never ack.

use calm_common::fact::Fact;
use calm_common::rng::Rng;
use calm_common::value::Value;
use calm_net::wirefmt;
use calm_net::{FaultPlan, ReliableNet, Wire};
use calm_transducer::multiset::Multiset;

const MAX_ARITY: usize = 8;

/// A random batch: a few relations of random arity (1..=MAX_ARITY)
/// over a small mixed int/str/Skolem domain, with multiplicities.
fn random_batch(rng: &mut Rng) -> Multiset<Fact> {
    let mut batch = Multiset::new();
    let relations = 1 + (rng.gen_u64() % 4) as usize;
    for r in 0..relations {
        let name = format!("rel_{r}");
        let arity = 1 + (rng.gen_u64() % MAX_ARITY as u64) as usize;
        let rows = rng.gen_u64() % 12;
        for _ in 0..rows {
            let args: Vec<Value> = (0..arity)
                .map(|_| match rng.gen_u64() % 4 {
                    0 => Value::Int(rng.gen_u64() as i64 % 100),
                    1 => Value::Int(-((rng.gen_u64() % 1_000_000) as i64)),
                    2 => Value::str(format!("node-{}", rng.gen_u64() % 8)),
                    _ => Value::skolem("f", vec![Value::Int((rng.gen_u64() % 16) as i64)]),
                })
                .collect();
            let mult = 1 + (rng.gen_u64() % 3) as usize;
            batch.insert_n(Fact::new(&name, args), mult);
        }
    }
    batch
}

#[test]
fn random_batches_round_trip_in_both_formats() {
    for seed in 0..60u64 {
        let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x3157);
        let batch = random_batch(&mut rng);
        let delta = wirefmt::encode(&batch);
        assert_eq!(
            wirefmt::decode(&delta).unwrap(),
            batch,
            "seed {seed}: delta round-trip"
        );
        let naive = wirefmt::encode_naive(&batch);
        assert_eq!(
            wirefmt::decode_naive(&naive).unwrap(),
            batch,
            "seed {seed}: naive round-trip"
        );
        // Canonical: re-encoding the decoded batch is byte-identical.
        assert_eq!(
            wirefmt::encode(&wirefmt::decode(&delta).unwrap()),
            delta,
            "seed {seed}: canonical bytes"
        );
    }
}

#[test]
fn degenerate_shapes_round_trip() {
    // Empty batch.
    let empty: Multiset<Fact> = Multiset::new();
    assert_eq!(wirefmt::decode(&wirefmt::encode(&empty)).unwrap(), empty);
    // Single row, arity 1.
    let single: Multiset<Fact> = [Fact::new("r", vec![Value::Int(i64::MIN)])]
        .into_iter()
        .collect();
    assert_eq!(wirefmt::decode(&wirefmt::encode(&single)).unwrap(), single);
    // One max-arity row with extreme values.
    let wide: Multiset<Fact> = [Fact::new(
        "wide",
        (0..MAX_ARITY as i64)
            .map(|i| {
                Value::Int(if i % 2 == 0 {
                    i64::MAX - i
                } else {
                    i64::MIN + i
                })
            })
            .collect(),
    )]
    .into_iter()
    .collect();
    assert_eq!(wirefmt::decode(&wirefmt::encode(&wide)).unwrap(), wide);
}

#[test]
fn every_strict_prefix_is_rejected_by_the_codec() {
    for seed in 0..20u64 {
        let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x9EF1);
        let batch = random_batch(&mut rng);
        let bytes = wirefmt::encode(&batch);
        for cut in 0..bytes.len() {
            assert!(
                wirefmt::decode(&bytes[..cut]).is_err(),
                "seed {seed}: prefix of {cut}/{} bytes must not decode",
                bytes.len()
            );
        }
    }
}

#[test]
fn reliability_layer_refuses_corrupted_prefixes_and_recovers() {
    // End-to-end corruption handling: feed truncated payloads through
    // the substrate's receive path. Each must be refused (counted as a
    // dropped decode failure, no ack, seq unconsumed); the intact
    // payload must then land exactly once.
    let plan = FaultPlan::none(23);
    for seed in 0..10u64 {
        let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC0DE);
        let mut batch = random_batch(&mut rng);
        if batch.is_empty() {
            batch.insert(Fact::new("pad", vec![Value::Int(0)]));
        }
        let bytes = wirefmt::encode(&batch);
        let mut net = ReliableNet::new(&plan, &[1], &calm_obs::Obs::noop());
        let mut out = Vec::new();
        let cuts = [2usize, bytes.len() / 2, bytes.len() - 1];
        for &cut in &cuts {
            let got = net.receive(
                Wire::Data {
                    src: 0,
                    dst: 1,
                    seq: 1,
                    payload: bytes[..cut].to_vec().into(),
                },
                &mut out,
            );
            assert!(got.is_none(), "seed {seed}: truncated wire must be refused");
            assert!(out.is_empty(), "seed {seed}: refused wires are not acked");
        }
        assert_eq!(net.stats.decode_failures, cuts.len() as u64);
        assert_eq!(net.stats.dropped, cuts.len() as u64);
        // The sender retransmits the intact payload under the same seq.
        let got = net.receive(
            Wire::Data {
                src: 0,
                dst: 1,
                seq: 1,
                payload: bytes.clone().into(),
            },
            &mut out,
        );
        // The substrate's end-to-end per-source dedup collapses
        // multiplicities: what lands is the batch's support.
        let support: Multiset<Fact> = batch.support().cloned().collect();
        assert_eq!(
            got,
            Some((1, support, None)),
            "seed {seed}: the clean retransmission lands"
        );
        assert_eq!(
            net.stats.duplicates_suppressed, 0,
            "seed {seed}: refusals must not have consumed the seq"
        );
    }
}
