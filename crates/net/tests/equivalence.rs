//! The correctness heart of the threaded executor: the CALM confluence
//! guarantee, executed. For coordination-free strategies,
//! `network_output` must be identical under *every* fair schedule — the
//! sequential round-robin oracle, seeded random sequential schedules
//! (across delivery probabilities), and the threaded engine at any
//! worker count. Plus the conservation invariants: per worker,
//! `enqueued == delivered + buffered`; merged, `sent == delivered +
//! buffered`.
//!
//! Seeds generate the *inputs* (random edge relations); the threaded
//! engine's schedule nondeterminism comes from real thread
//! interleaving, so every repetition of this suite exercises a fresh
//! interleaving. CI runs it repeatedly with distinct `CALM_NET_SEED`
//! offsets to widen the swept input space.

use calm_common::query::Query;
use calm_common::rng::Rng;
use calm_common::{fact, Instance};
use calm_net::{run_threaded, Programs, ThreadedConfig, ThreadedNetwork, ThreadedRunResult};
use calm_queries::qtc::qtc_datalog;
use calm_queries::tc::{edges_without_source_loop, tc_datalog};
use calm_transducer::{
    expected_output, run, DisjointStrategy, DistinctStrategy, DistributionPolicy,
    DomainGuidedPolicy, HashPolicy, MonotoneBroadcast, Network, Scheduler, SystemConfig,
    Transducer, TransducerNetwork,
};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Base offset for the seed sweep, so CI can rerun the suite over
/// disjoint input spaces (`CALM_NET_SEED=1`, `2`, …).
fn seed_base() -> u64 {
    std::env::var("CALM_NET_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// A small random edge relation over `domain` values, `edges` tuples.
fn random_edges(seed: u64, domain: i64, edges: usize) -> Instance {
    let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    Instance::from_facts((0..edges).map(|_| {
        fact(
            "E",
            [
                rng.gen_range(0..domain as u64) as i64,
                rng.gen_range(0..domain as u64) as i64,
            ],
        )
    }))
}

fn check_conservation(r: &ThreadedRunResult, label: &str) {
    for w in &r.per_worker {
        assert_eq!(
            w.enqueued,
            w.metrics.messages_delivered + w.buffered,
            "{label}: worker {} conservation (enqueued = delivered + buffered)",
            w.worker
        );
        assert_eq!(
            w.metrics.by_class.total(),
            w.metrics.messages_sent,
            "{label}: worker {} class totals",
            w.worker
        );
    }
    let buffered: usize = r.per_worker.iter().map(|w| w.buffered).sum();
    assert_eq!(
        r.metrics.messages_sent,
        r.metrics.messages_delivered + buffered,
        "{label}: merged conservation (all channel batches drained at join)"
    );
    assert_eq!(r.metrics.by_class.total(), r.metrics.messages_sent);
    if r.quiescent {
        assert_eq!(buffered, 0, "{label}: quiescent run left facts buffered");
    }
}

/// Run one family on one input under the sequential oracle and the
/// threaded engine at every worker count; assert byte-identical output
/// everywhere (and equality with the centralized evaluation).
fn assert_confluent(
    t: &dyn Transducer,
    query: &dyn Query,
    policy: &dyn DistributionPolicy,
    sys: SystemConfig,
    input: &Instance,
    label: &str,
) {
    let expected = expected_output(query, input);
    let tn = TransducerNetwork {
        transducer: t,
        policy,
        config: sys,
    };
    let seq = run(&tn, input, &Scheduler::RoundRobin, 500_000);
    assert!(seq.quiescent, "{label}: sequential oracle must quiesce");
    assert_eq!(seq.output, expected, "{label}: oracle vs centralized");
    for workers in WORKER_COUNTS {
        let thr = run_threaded(
            &ThreadedNetwork {
                programs: Programs::Shared(t),
                policy,
                config: sys,
            },
            input,
            &ThreadedConfig::new(workers),
        );
        assert!(thr.quiescent, "{label}: threaded x{workers} must quiesce");
        assert_eq!(
            thr.output, seq.output,
            "{label}: threaded x{workers} output differs from sequential"
        );
        check_conservation(&thr, &format!("{label} x{workers}"));
    }
}

#[test]
fn monotone_broadcast_confluent_across_20_seeds() {
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let policy = HashPolicy::new(Network::of_size(4));
    for i in 0..20 {
        let seed = seed_base() * 1000 + i;
        let input = random_edges(seed, 6, 3 + (i as usize % 5));
        assert_confluent(
            &t,
            t.query(),
            &policy,
            SystemConfig::ORIGINAL,
            &input,
            &format!("M seed {seed}"),
        );
    }
}

#[test]
fn distinct_strategy_confluent_across_20_seeds() {
    let t = DistinctStrategy::new(Box::new(edges_without_source_loop()));
    let policy = HashPolicy::new(Network::of_size(3));
    for i in 0..20 {
        let seed = seed_base() * 1000 + 100 + i;
        let input = random_edges(seed, 5, 3 + (i as usize % 3));
        assert_confluent(
            &t,
            t.query(),
            &policy,
            SystemConfig::POLICY_AWARE,
            &input,
            &format!("Mdistinct seed {seed}"),
        );
    }
}

#[test]
fn disjoint_strategy_confluent_across_20_seeds() {
    let t = DisjointStrategy::new(Box::new(qtc_datalog()));
    let policy = DomainGuidedPolicy::new(Network::of_size(3));
    for i in 0..20 {
        let seed = seed_base() * 1000 + 200 + i;
        // The request/OK/ack protocol is per-value: keep domains small.
        let input = random_edges(seed, 4, 2 + (i as usize % 2));
        assert_confluent(
            &t,
            t.query(),
            &policy,
            SystemConfig::POLICY_AWARE,
            &input,
            &format!("Mdisjoint seed {seed}"),
        );
    }
}

#[test]
fn per_worker_programs_match_shared_program() {
    // The factory path (one DatalogTransducer per worker, each with its
    // own interner and scratch database) computes the same output as a
    // single shared instance.
    let shared = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let policy = HashPolicy::new(Network::of_size(5));
    let input = calm_common::generator::path(6);
    let factory =
        || Box::new(MonotoneBroadcast::new(Box::new(tc_datalog()))) as Box<dyn Transducer>;
    for workers in [2, 4] {
        let a = run_threaded(
            &ThreadedNetwork {
                programs: Programs::Shared(&shared),
                policy: &policy,
                config: SystemConfig::ORIGINAL,
            },
            &input,
            &ThreadedConfig::new(workers),
        );
        let b = run_threaded(
            &ThreadedNetwork {
                programs: Programs::PerWorker(&factory),
                policy: &policy,
                config: SystemConfig::ORIGINAL,
            },
            &input,
            &ThreadedConfig::new(workers),
        );
        assert!(a.quiescent && b.quiescent);
        assert_eq!(a.output, b.output, "shared vs per-worker at {workers}");
        assert_eq!(a.output, expected_output(shared.query(), &input));
    }
}

#[test]
fn cross_schedule_confluence_includes_deliver_p_sweep() {
    // RoundRobin, Random at several seeds and delivery probabilities,
    // and threaded at 1/2/8 workers all agree.
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let policy = HashPolicy::new(Network::of_size(4));
    let input = random_edges(seed_base() * 1000 + 300, 6, 6);
    let reference = expected_output(t.query(), &input);
    let tn = TransducerNetwork {
        transducer: &t,
        policy: &policy,
        config: SystemConfig::ORIGINAL,
    };
    for seed in 0..5 {
        for deliver_p in [0.2, 0.6, 0.9] {
            let r = run(
                &tn,
                &input,
                &Scheduler::Random {
                    seed,
                    prefix: 40,
                    deliver_p,
                },
                500_000,
            );
            assert!(r.quiescent, "seed {seed} p {deliver_p}");
            assert_eq!(r.output, reference, "sequential seed {seed} p {deliver_p}");
        }
    }
    for workers in WORKER_COUNTS {
        let thr = run_threaded(
            &ThreadedNetwork {
                programs: Programs::Shared(&t),
                policy: &policy,
                config: SystemConfig::ORIGINAL,
            },
            &input,
            &ThreadedConfig::new(workers),
        );
        assert!(thr.quiescent);
        assert_eq!(thr.output, reference, "threaded x{workers}");
    }
}

#[test]
fn exhausted_budget_reports_not_quiescent() {
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let policy = HashPolicy::new(Network::of_size(3));
    let input = calm_common::generator::path(5);
    let thr = run_threaded(
        &ThreadedNetwork {
            programs: Programs::Shared(&t),
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        },
        &input,
        &ThreadedConfig::new(2).with_budget(1),
    );
    assert!(!thr.quiescent, "a 1-step budget cannot reach quiescence");
    // Conservation still holds: exhausted workers keep draining their
    // channels, so nothing is lost in flight.
    check_conservation(&thr, "exhausted");
}

#[test]
fn single_node_network_runs_threaded() {
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let policy = HashPolicy::new(Network::of_size(1));
    let input = calm_common::generator::path(4);
    let thr = run_threaded(
        &ThreadedNetwork {
            programs: Programs::Shared(&t),
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        },
        &input,
        &ThreadedConfig::new(8), // clamped to 1
    );
    assert!(thr.quiescent);
    assert_eq!(thr.per_worker.len(), 1);
    assert_eq!(thr.metrics.messages_sent, 0);
    assert_eq!(thr.output, expected_output(t.query(), &input));
}
