//! The chaos equivalence suite: the CALM confluence guarantee under an
//! *unfair* network, repaired by the reliability substrate.
//!
//! Each test runs a strategy family over seeded random inputs on the
//! threaded executor under adversarial fault plans — message loss,
//! duplication, bounded reordering/delay, one-way partitions, node
//! crash/restart — and asserts the run still terminates (Safra detects
//! quiescence; no timeout waivers) with output byte-identical to the
//! sequential oracle. The wire-level conservation identity is checked
//! per link: `attempts == delivered + suppressed + dropped + buffered`,
//! with `buffered == 0` and `retry_exhausted == 0` on a clean run.
//!
//! Engine-level conservation (`sent == delivered + buffered`) is *not*
//! asserted here: crash rollback legitimately re-counts engine sends
//! (metrics never roll back) — that identity belongs to the fault-free
//! suite in `equivalence.rs`.

use calm_common::query::Query;
use calm_common::rng::Rng;
use calm_common::{fact, Instance};
use calm_net::{
    run_threaded, FaultPlan, Programs, ThreadedConfig, ThreadedNetwork, ThreadedRunResult,
};
use calm_queries::qtc::qtc_datalog;
use calm_queries::tc::{edges_without_source_loop, tc_datalog};
use calm_transducer::{
    expected_output, run, DisjointStrategy, DistinctStrategy, DistributionPolicy,
    DomainGuidedPolicy, HashPolicy, MonotoneBroadcast, Network, Scheduler, SystemConfig,
    Transducer, TransducerNetwork,
};

const WORKER_COUNTS: [usize; 2] = [2, 8];

/// Base offset for the seed sweep (CI reruns with `CALM_NET_SEED=1..`).
fn seed_base() -> u64 {
    std::env::var("CALM_NET_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// A small random edge relation over `domain` values, `edges` tuples.
fn random_edges(seed: u64, domain: i64, edges: usize) -> Instance {
    let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    Instance::from_facts((0..edges).map(|_| {
        fact(
            "E",
            [
                rng.gen_range(0..domain as u64) as i64,
                rng.gen_range(0..domain as u64) as i64,
            ],
        )
    }))
}

/// The three adversaries every family faces, parameterized by the run
/// seed so every repetition draws a fresh fault pattern.
///
/// * `loss+dup`: ≥10% drop with duplication — the headline plan.
/// * `havoc`: heavier loss plus duplication and a 6-tick
///   delay/reordering window.
/// * `crash`: loss + delay with two node crash/restart points (node 1
///   early, node 2 later) and a one-way partition that heals.
fn fault_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("loss+dup", FaultPlan::uniform(seed, 0.10, 0.10)),
        (
            "havoc",
            FaultPlan::uniform(seed ^ 0xA5A5, 0.25, 0.10).with_delay(0.30, 6),
        ),
        (
            "crash",
            FaultPlan::uniform(seed ^ 0x5A5A, 0.05, 0.05)
                .with_delay(0.20, 4)
                .with_crash(1, 3, 10)
                .with_crash(2, 6, 5)
                .with_partition(0, 1, 5, 60),
        ),
    ]
}

/// Wire-level accounting: per-link and global conservation, no message
/// abandoned, nothing left in the network on a quiescent run.
fn check_chaos_accounting(r: &ThreadedRunResult, label: &str) {
    let mut buffered_total = 0;
    for ((src, dst), lc) in &r.link_counters {
        assert_eq!(
            lc.attempts,
            lc.delivered + lc.suppressed + lc.dropped + lc.buffered,
            "{label}: link {src}->{dst} wire conservation"
        );
        buffered_total += lc.buffered;
    }
    let f = &r.faults;
    assert_eq!(
        f.attempts,
        f.delivered_batches + f.duplicates_suppressed + f.dropped + buffered_total,
        "{label}: global wire conservation"
    );
    assert_eq!(
        f.retry_exhausted, 0,
        "{label}: no message may be abandoned to the retry budget"
    );
    if r.quiescent {
        assert_eq!(
            buffered_total, 0,
            "{label}: quiescent run left wires in flight"
        );
    }
}

/// Run one family on one input: sequential oracle once, then the
/// threaded engine under every fault plan × worker count. Termination
/// must be *detected* (no waivers) and output must match the oracle
/// byte for byte.
fn assert_chaos_confluent(
    t: &dyn Transducer,
    query: &dyn Query,
    policy: &dyn DistributionPolicy,
    sys: SystemConfig,
    input: &Instance,
    seed: u64,
    label: &str,
) {
    let expected = expected_output(query, input);
    let tn = TransducerNetwork {
        transducer: t,
        policy,
        config: sys,
    };
    let seq = run(&tn, input, &Scheduler::RoundRobin, 500_000);
    assert!(seq.quiescent, "{label}: sequential oracle must quiesce");
    assert_eq!(seq.output, expected, "{label}: oracle vs centralized");
    for (plan_name, plan) in fault_plans(seed) {
        for workers in WORKER_COUNTS {
            let thr = run_threaded(
                &ThreadedNetwork {
                    programs: Programs::Shared(t),
                    policy,
                    config: sys,
                },
                input,
                &ThreadedConfig::new(workers).with_faults(plan.clone()),
            );
            let tag = format!("{label} [{plan_name} x{workers}]");
            assert!(thr.quiescent, "{tag}: termination must be detected");
            assert_eq!(
                thr.output, seq.output,
                "{tag}: output differs from the sequential oracle"
            );
            check_chaos_accounting(&thr, &tag);
        }
    }
}

#[test]
fn monotone_broadcast_survives_chaos_across_20_seeds() {
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let policy = HashPolicy::new(Network::of_size(4));
    for i in 0..20 {
        let seed = seed_base() * 1000 + i;
        let input = random_edges(seed, 6, 3 + (i as usize % 5));
        assert_chaos_confluent(
            &t,
            t.query(),
            &policy,
            SystemConfig::ORIGINAL,
            &input,
            seed,
            &format!("M seed {seed}"),
        );
    }
}

#[test]
fn distinct_strategy_survives_chaos_across_20_seeds() {
    let t = DistinctStrategy::new(Box::new(edges_without_source_loop()));
    let policy = HashPolicy::new(Network::of_size(3));
    for i in 0..20 {
        let seed = seed_base() * 1000 + 100 + i;
        let input = random_edges(seed, 5, 3 + (i as usize % 3));
        assert_chaos_confluent(
            &t,
            t.query(),
            &policy,
            SystemConfig::POLICY_AWARE,
            &input,
            seed,
            &format!("Mdistinct seed {seed}"),
        );
    }
}

#[test]
fn disjoint_strategy_survives_chaos_across_20_seeds() {
    let t = DisjointStrategy::new(Box::new(qtc_datalog()));
    let policy = DomainGuidedPolicy::new(Network::of_size(3));
    for i in 0..20 {
        let seed = seed_base() * 1000 + 200 + i;
        // The request/OK/ack protocol is per-value: keep domains small.
        let input = random_edges(seed, 4, 2 + (i as usize % 2));
        assert_chaos_confluent(
            &t,
            t.query(),
            &policy,
            SystemConfig::POLICY_AWARE,
            &input,
            seed,
            &format!("Mdisjoint seed {seed}"),
        );
    }
}

#[test]
fn chaos_with_data_parallel_node_fixpoints_matches_the_oracle() {
    // The acceptance run from the parallel-eval work: 8 network workers
    // x 4 intra-node eval threads under 5% message loss. Every node's
    // fixpoint is partitioned over worker threads, yet the run must
    // still terminate via Safra and land byte-identical to the
    // sequential oracle — the data-parallel driver is deterministic, so
    // chaos only ever comes from the network, and the reliability
    // substrate repairs that.
    type Family = (
        &'static str,
        Box<dyn Transducer>,
        Box<dyn DistributionPolicy>,
        SystemConfig,
    );
    let families: Vec<Family> = vec![
        (
            "M",
            Box::new(MonotoneBroadcast::new(Box::new(
                tc_datalog().with_eval_threads(4),
            ))),
            Box::new(HashPolicy::new(Network::of_size(4))),
            SystemConfig::ORIGINAL,
        ),
        (
            "Mdistinct",
            Box::new(DistinctStrategy::new(Box::new(
                edges_without_source_loop().with_eval_threads(4),
            ))),
            Box::new(HashPolicy::new(Network::of_size(3))),
            SystemConfig::POLICY_AWARE,
        ),
        (
            "Mdisjoint",
            Box::new(DisjointStrategy::new(Box::new(
                qtc_datalog().with_eval_threads(4),
            ))),
            Box::new(DomainGuidedPolicy::new(Network::of_size(3))),
            SystemConfig::POLICY_AWARE,
        ),
    ];
    for (label, t, policy, sys) in &families {
        for i in 0..4u64 {
            let seed = seed_base() * 1000 + 400 + i;
            let input = random_edges(seed, 4, 2 + (i as usize % 3));
            let seq = run(
                &TransducerNetwork {
                    transducer: t.as_ref(),
                    policy: policy.as_ref(),
                    config: *sys,
                },
                &input,
                &Scheduler::RoundRobin,
                500_000,
            );
            assert!(seq.quiescent, "{label} seed {seed}: oracle must quiesce");
            let thr = run_threaded(
                &ThreadedNetwork {
                    programs: Programs::Shared(t.as_ref()),
                    policy: policy.as_ref(),
                    config: *sys,
                },
                &input,
                &ThreadedConfig::new(8).with_faults(FaultPlan::uniform(seed, 0.05, 0.0)),
            );
            let tag = format!("{label} seed {seed} [drop=0.05 x8 workers x4 eval threads]");
            assert!(thr.quiescent, "{tag}: termination must be detected");
            assert_eq!(
                thr.output, seq.output,
                "{tag}: output differs from the sequential oracle"
            );
            check_chaos_accounting(&thr, &tag);
        }
    }
}

#[test]
fn zero_fault_plan_pays_only_the_substrate() {
    // A `FaultPlan::none` run rides the full seq/ack/snapshot machinery
    // with no fault ever injected: every attempt is a first attempt
    // that gets delivered, nothing is suppressed or dropped, and the
    // engine-level message flow matches the fault-free engine exactly.
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let policy = HashPolicy::new(Network::of_size(4));
    let input = random_edges(seed_base() * 1000 + 300, 6, 6);
    let reference = run_threaded(
        &ThreadedNetwork {
            programs: Programs::Shared(&t),
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        },
        &input,
        &ThreadedConfig::new(2),
    );
    assert!(reference.quiescent);
    assert_eq!(reference.faults, Default::default(), "no plan, no counters");
    let thr = run_threaded(
        &ThreadedNetwork {
            programs: Programs::Shared(&t),
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        },
        &input,
        &ThreadedConfig::new(2).with_faults(FaultPlan::none(7)),
    );
    assert!(thr.quiescent);
    assert_eq!(thr.output, reference.output);
    assert_eq!(
        thr.metrics.messages_sent, reference.metrics.messages_sent,
        "a faultless substrate must not change engine-level message flow"
    );
    let f = &thr.faults;
    assert_eq!(f.dropped, 0);
    assert_eq!(f.duplicates_injected, 0);
    assert_eq!(f.delayed, 0);
    assert_eq!(f.crashes, 0);
    assert_eq!(
        f.duplicates_suppressed, f.retransmissions,
        "only spurious retransmissions (ack still in flight) are suppressed"
    );
    assert_eq!(
        f.attempts,
        f.delivered_batches + f.duplicates_suppressed,
        "every attempt lands"
    );
    check_chaos_accounting(&thr, "zero-fault plan");
}

#[test]
fn single_worker_runs_the_gauntlet_too() {
    // Faults interpose on *local* delivery as well: one worker, no
    // channels, yet drops/dups/delays still happen and are repaired.
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let policy = HashPolicy::new(Network::of_size(4));
    let input = random_edges(seed_base() * 1000 + 301, 6, 5);
    let expected = expected_output(t.query(), &input);
    let plan = FaultPlan::uniform(11, 0.2, 0.1).with_delay(0.2, 4);
    let thr = run_threaded(
        &ThreadedNetwork {
            programs: Programs::Shared(&t),
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        },
        &input,
        &ThreadedConfig::new(1).with_faults(plan),
    );
    assert!(thr.quiescent);
    assert_eq!(thr.output, expected);
    assert!(
        thr.faults.dropped > 0 || thr.faults.delayed > 0,
        "gauntlet ran"
    );
    check_chaos_accounting(&thr, "single worker");
}

#[test]
fn parsed_plan_equals_built_plan() {
    // The CLI spec grammar and the builder API construct the same plan,
    // so a `--faults` run is reproducible from its spec string.
    let parsed = FaultPlan::parse("seed=9,drop=0.1,dup=0.05,delay=0.2/4,crash=1@3~10").unwrap();
    let built = FaultPlan::uniform(9, 0.1, 0.05)
        .with_delay(0.2, 4)
        .with_crash(1, 3, 10);
    assert_eq!(parsed, built);
    let t = DistinctStrategy::new(Box::new(edges_without_source_loop()));
    let policy = HashPolicy::new(Network::of_size(3));
    let input = random_edges(seed_base() * 1000 + 302, 5, 4);
    let thr = run_threaded(
        &ThreadedNetwork {
            programs: Programs::Shared(&t),
            policy: &policy,
            config: SystemConfig::POLICY_AWARE,
        },
        &input,
        &ThreadedConfig::new(2).with_faults(parsed),
    );
    assert!(thr.quiescent);
    assert_eq!(thr.output, expected_output(t.query(), &input));
}
