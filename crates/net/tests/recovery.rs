//! The cross-process *recovery* equivalence suite: worker processes
//! killed mid-run, respawned by the supervising coordinator, restored
//! from retained snapshots — and the output still byte-identical to
//! the sequential oracle.
//!
//! This is the supervised counterpart of `process.rs` (which pins the
//! un-supervised, abort-on-death transport). Asserted, per the issue:
//! all three strategy families × ≥10 seeds × procs {2, 4} × kill plans
//! {one kill, two staggered kills, kill + drop 0.05} byte-identical to
//! the sequential oracle; the wire-accounting identity extended with
//! replayed-after-restore traffic; and that restore converges from
//! *any* retained snapshot version (swept by moving the kill point).
//!
//! The snapshot-frame strict-prefix rejection property lives with the
//! codec (`transport::proto` unit tests,
//! `any_snapshot_frame_strict_prefix_is_rejected`) — the frame types
//! are crate-private by design.

use calm_common::rng::Rng;
use calm_common::{fact, Instance};
use calm_net::{
    run_net_worker, run_process, Assign, JobSpec, ProcessConfig, ProcessRunResult, SpawnHandle,
    WorkerSetup,
};
use calm_obs::Obs;
use calm_queries::qtc::qtc_datalog;
use calm_queries::tc::{edges_without_source_loop, tc_datalog};
use calm_transducer::{
    run, DisjointStrategy, DistinctStrategy, DistributionPolicy, DomainGuidedPolicy, HashPolicy,
    MonotoneBroadcast, Network, Scheduler, SystemConfig, Transducer, TransducerNetwork,
};

const PROC_COUNTS: [usize; 2] = [2, 4];

/// Base offset for the seed sweep (CI reruns with `CALM_NET_SEED=1..`).
fn seed_base() -> u64 {
    std::env::var("CALM_NET_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn random_edges(seed: u64, domain: i64, edges: usize) -> Instance {
    let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    Instance::from_facts((0..edges).map(|_| {
        fact(
            "E",
            [
                rng.gen_range(0..domain as u64) as i64,
                rng.gen_range(0..domain as u64) as i64,
            ],
        )
    }))
}

fn family(
    strategy: &str,
    nodes: usize,
) -> (
    Box<dyn Transducer>,
    Box<dyn DistributionPolicy>,
    SystemConfig,
) {
    match strategy {
        "monotone" => (
            Box::new(MonotoneBroadcast::new(Box::new(tc_datalog()))),
            Box::new(HashPolicy::new(Network::of_size(nodes))),
            SystemConfig::ORIGINAL,
        ),
        "distinct" => (
            Box::new(DistinctStrategy::new(Box::new(edges_without_source_loop()))),
            Box::new(HashPolicy::new(Network::of_size(nodes))),
            SystemConfig::POLICY_AWARE,
        ),
        "disjoint" => (
            Box::new(DisjointStrategy::new(Box::new(qtc_datalog()))),
            Box::new(DomainGuidedPolicy::new(Network::of_size(nodes))),
            SystemConfig::POLICY_AWARE,
        ),
        other => panic!("unknown strategy family {other}"),
    }
}

fn spec_for(strategy: &str, nodes: usize, faults: Option<String>) -> JobSpec {
    JobSpec {
        program: String::new(),
        facts: String::new(),
        strategy: strategy.to_string(),
        nodes,
        eval_threads: 1,
        step_budget: 500_000,
        faults,
        trace_prefix: None,
        flight_path: None,
    }
}

/// Run the *supervised* process engine over real sockets with
/// thread-backed workers: respawn budget 3, short backoff (the suite
/// kills workers on purpose and wants the respawns fast).
fn run_supervised_tcp(
    strategy: &'static str,
    input: &Instance,
    nodes: usize,
    procs: usize,
    faults: String,
) -> ProcessRunResult {
    let mut cfg = ProcessConfig::new(procs, spec_for(strategy, nodes, Some(faults)));
    cfg.respawn_backoff = std::time::Duration::from_millis(5);
    let input = input.clone();
    let spawner = move |k: usize, addr: &str| -> Result<SpawnHandle, String> {
        let addr = addr.to_string();
        let input = input.clone();
        Ok(SpawnHandle::Thread(std::thread::spawn(move || {
            let builder = move |assign: &Assign| -> Result<WorkerSetup, String> {
                let (transducer, policy, config) = family(&assign.spec.strategy, assign.spec.nodes);
                Ok(WorkerSetup {
                    transducer,
                    policy,
                    config,
                    input: input.clone(),
                    obs: Obs::noop(),
                })
            };
            // A pkill'd incarnation returns Err by design; only log the
            // unexpected failures.
            if let Err(e) = run_net_worker(&addr, k, &builder) {
                if !e.contains("killed by fault plan") {
                    eprintln!("worker {k} failed: {e}");
                }
            }
        })))
    };
    run_process(&cfg, &spawner, &Obs::noop()).expect("supervised run starts")
}

fn project_output(t: &dyn Transducer, r: &ProcessRunResult) -> Instance {
    let out_schema = &t.schema().output;
    let mut output = Instance::new();
    for state in r.states.values() {
        output.extend(state.restrict(out_schema).facts());
    }
    output
}

/// The three kill-plan families of the issue, parameterized by seed.
/// Worker indices stay < 2 so every plan is valid at procs 2 and 4.
fn kill_plans(seed: u64) -> [(&'static str, String); 3] {
    [
        ("one kill", format!("seed={seed},pkill(worker=1@step=4)")),
        (
            "two staggered kills",
            format!("seed={seed},pkill(worker=1@step=3),pkill(worker=0@step=7)"),
        ),
        (
            "kill + drop",
            format!("seed={seed},drop=0.05,pkill(worker=1@step=5)"),
        ),
    ]
}

/// Which workers a plan kills (for the accounting exemption below).
fn killed_workers(plan: &str) -> Vec<usize> {
    plan.match_indices("pkill(worker=")
        .filter_map(|(i, pat)| {
            plan[i + pat.len()..]
                .split('@')
                .next()
                .and_then(|w| w.parse().ok())
        })
        .collect()
}

/// Sequential oracle + supervised engine under every kill plan at every
/// proc count: byte-identical output, clean exit, extended accounting.
/// Returns the total replayed-after-restore wire count (the sweep
/// asserts it is nonzero in aggregate — any single kill may land before
/// traffic exists).
fn assert_recovery_confluent(
    strategy: &'static str,
    nodes: usize,
    input: &Instance,
    seed: u64,
    label: &str,
) -> u64 {
    let (t, policy, sys) = family(strategy, nodes);
    let seq = run(
        &TransducerNetwork {
            transducer: t.as_ref(),
            policy: policy.as_ref(),
            config: sys,
        },
        input,
        &Scheduler::RoundRobin,
        500_000,
    );
    assert!(seq.quiescent, "{label}: sequential oracle must quiesce");
    let mut replayed_total = 0u64;
    for procs in PROC_COUNTS {
        for (plan_name, plan) in kill_plans(seed) {
            let r = run_supervised_tcp(strategy, input, nodes, procs, plan.clone());
            let tag = format!("{label} [{plan_name} x{procs}]");
            assert!(
                r.failed_workers.is_empty(),
                "{tag}: supervision must absorb the deaths, not fail the run"
            );
            assert!(r.quiescent, "{tag}: termination must be detected");
            assert_eq!(
                project_output(t.as_ref(), &r),
                seq.output,
                "{tag}: output differs from the sequential oracle"
            );
            assert_eq!(r.states.len(), nodes, "{tag}: every node reported a state");

            // Extended accounting. A killed incarnation takes its
            // counters down with it (they are per-process state, not
            // part of the replicated snapshot), so the strict identity
            // holds on links *between surviving workers*; links
            // touching a killed worker's shard keep only the weaker
            // no-buffered guarantee. Replays re-enter the gauntlet as
            // fresh attempts, so they are already inside `attempts`.
            let workers = procs.clamp(1, nodes);
            let killed = killed_workers(&plan);
            let mut buffered_total = 0;
            for ((src, dst), lc) in &r.link_counters {
                buffered_total += lc.buffered;
                let touches_killed =
                    killed.contains(&(src % workers)) || killed.contains(&(dst % workers));
                if touches_killed {
                    continue;
                }
                assert_eq!(
                    lc.attempts,
                    lc.delivered + lc.suppressed + lc.dropped + lc.buffered,
                    "{tag}: link {src}->{dst} wire conservation between survivors"
                );
            }
            assert_eq!(
                buffered_total, 0,
                "{tag}: quiescent run left wires in flight"
            );
            assert!(
                r.faults.attempts >= r.faults.replayed,
                "{tag}: replays are counted inside attempts"
            );
            replayed_total += r.faults.replayed;
        }
    }
    replayed_total
}

#[test]
fn monotone_recovery_matches_oracle_across_10_seeds() {
    let mut replayed = 0;
    for i in 0..10 {
        let seed = seed_base() * 1000 + i;
        let input = random_edges(seed, 6, 3 + (i as usize % 5));
        replayed +=
            assert_recovery_confluent("monotone", 4, &input, seed, &format!("M seed {seed}"));
    }
    assert!(
        replayed > 0,
        "the sweep must exercise replay-after-restore at least once"
    );
}

#[test]
fn distinct_recovery_matches_oracle_across_10_seeds() {
    for i in 0..10 {
        let seed = seed_base() * 1000 + 100 + i;
        let input = random_edges(seed, 5, 3 + (i as usize % 3));
        assert_recovery_confluent(
            "distinct",
            3,
            &input,
            seed,
            &format!("Mdistinct seed {seed}"),
        );
    }
}

#[test]
fn disjoint_recovery_matches_oracle_across_10_seeds() {
    for i in 0..10 {
        let seed = seed_base() * 1000 + 200 + i;
        let input = random_edges(seed, 4, 2 + (i as usize % 2));
        assert_recovery_confluent(
            "disjoint",
            3,
            &input,
            seed,
            &format!("Mdisjoint seed {seed}"),
        );
    }
}

/// Property: restore converges from *any* retained snapshot version.
/// Moving the kill point across the run makes the coordinator hand back
/// a different retained version every time (v0 right after the
/// handshake, later versions as periodic and passivity snapshots ship);
/// every restore must land on the same oracle output.
#[test]
fn restore_converges_from_any_retained_snapshot_version() {
    let seed = seed_base() * 1000 + 400;
    let input = random_edges(seed, 6, 5);
    let (t, policy, sys) = family("monotone", 4);
    let seq = run(
        &TransducerNetwork {
            transducer: t.as_ref(),
            policy: policy.as_ref(),
            config: sys,
        },
        &input,
        &Scheduler::RoundRobin,
        500_000,
    );
    assert!(seq.quiescent);
    for step in 1..=10u64 {
        let plan = format!("seed={seed},pkill(worker=1@step={step})");
        let r = run_supervised_tcp("monotone", &input, 4, 2, plan);
        assert!(r.failed_workers.is_empty(), "kill at step {step}");
        assert!(r.quiescent, "kill at step {step}");
        assert_eq!(
            project_output(t.as_ref(), &r),
            seq.output,
            "restore from the version retained at step {step} diverged"
        );
    }
}

/// Budget exhaustion degrades gracefully: a worker killed more times
/// than its respawn budget allows has its shard adopted by the
/// survivors — and the run still completes quiescent with the oracle's
/// output (`adopted_workers` names the position; `failed_workers` stays
/// empty).
#[test]
fn budget_exhaustion_adopts_the_shard_and_still_converges() {
    let seed = seed_base() * 1000 + 500;
    let input = random_edges(seed, 6, 4);
    let (t, policy, sys) = family("monotone", 4);
    let seq = run(
        &TransducerNetwork {
            transducer: t.as_ref(),
            policy: policy.as_ref(),
            config: sys,
        },
        &input,
        &Scheduler::RoundRobin,
        500_000,
    );
    assert!(seq.quiescent);
    // Budget 1, two kills on worker 1: incarnation 0 dies, incarnation
    // 1 (the only respawn allowed) dies too — the shard must move.
    let plan = format!("seed={seed},pkill(worker=1@step=3),pkill(worker=1@step=2)");
    let mut cfg = ProcessConfig::new(2, spec_for("monotone", 4, Some(plan)));
    cfg.respawn_budget = 1;
    cfg.respawn_backoff = std::time::Duration::from_millis(5);
    let input_c = input.clone();
    let spawner = move |k: usize, addr: &str| -> Result<SpawnHandle, String> {
        let addr = addr.to_string();
        let input = input_c.clone();
        Ok(SpawnHandle::Thread(std::thread::spawn(move || {
            let builder = move |assign: &Assign| -> Result<WorkerSetup, String> {
                let (transducer, policy, config) = family(&assign.spec.strategy, assign.spec.nodes);
                Ok(WorkerSetup {
                    transducer,
                    policy,
                    config,
                    input: input.clone(),
                    obs: Obs::noop(),
                })
            };
            let _ = run_net_worker(&addr, k, &builder);
        })))
    };
    let r = run_process(&cfg, &spawner, &Obs::noop()).expect("run completes");
    assert!(
        r.failed_workers.is_empty(),
        "adoption is graceful degradation, not failure"
    );
    assert_eq!(r.adopted_workers, vec![1], "the dead position is named");
    assert!(r.respawns >= 1, "the budget was spent before adopting");
    assert!(r.quiescent, "the survivors still quiesce");
    assert_eq!(
        project_output(t.as_ref(), &r),
        seq.output,
        "adopted shard diverged from the oracle"
    );
    assert_eq!(r.states.len(), 4, "every node reported, including adopted");
}
