//! Property tests (hand-rolled, seeded — the workspace is
//! dependency-free) for the reliability substrate's dedup and
//! accounting invariants:
//!
//! * duplicating *any* prefix of a wire stream never changes what is
//!   delivered — and therefore never changes `Instance` state or
//!   `messages_sent` at the engine level;
//! * the ack/retransmit counters reconcile per link:
//!   `attempts == delivered + suppressed + dropped + buffered`.

use calm_common::fact::{fact, Fact};
use calm_common::instance::Instance;
use calm_common::rng::Rng;
use calm_net::{
    run_threaded, FaultPlan, Programs, ReliableNet, ThreadedConfig, ThreadedNetwork, Wire,
};
use calm_queries::tc::tc_datalog;
use calm_transducer::multiset::Multiset;
use calm_transducer::{HashPolicy, MonotoneBroadcast, Network, SystemConfig};

fn batch(rng: &mut Rng) -> Multiset<Fact> {
    let n = 1 + (rng.gen_u64() % 3) as i64;
    (0..n)
        .map(|_| {
            fact(
                "m",
                [(rng.gen_u64() % 5) as i64, (rng.gen_u64() % 5) as i64],
            )
        })
        .collect()
}

/// Feed `wires` into a fresh receiver and return the accepted
/// fact-occurrence multiset (what the engine would enqueue into the
/// node's inbox, i.e. what determines `Instance` state).
fn accepted(plan: &FaultPlan, wires: &[Wire]) -> (Multiset<Fact>, u64, u64) {
    let mut net = ReliableNet::new(plan, &[1], &calm_obs::Obs::noop());
    let mut out = Vec::new();
    let mut got = Multiset::new();
    for w in wires {
        if let Some((_, facts, _)) = net.receive(w.clone(), &mut out) {
            got.extend_from(facts);
        }
    }
    (
        got,
        net.stats.delivered_batches,
        net.stats.duplicates_suppressed,
    )
}

#[test]
fn duplicating_any_wire_prefix_never_changes_delivery() {
    // Property: for every stream of data wires and every prefix length
    // k, re-injecting the first k wires (the network duplicating a
    // prefix in flight) leaves the accepted fact multiset — and hence
    // the receiving node's `Instance` state — unchanged, while every
    // duplicate is counted suppressed and re-acked.
    let plan = FaultPlan::none(0);
    for seed in 0..40u64 {
        let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1CE);
        let n = 3 + (rng.gen_u64() % 8) as usize;
        let stream: Vec<Wire> = (1..=n as u64)
            .map(|seq| Wire::Data {
                src: 0,
                dst: 1,
                seq,
                payload: calm_net::wirefmt::encode(&batch(&mut rng)).into(),
            })
            .collect();
        let (base, base_batches, base_supp) = accepted(&plan, &stream);
        assert_eq!(base_supp, 0, "seed {seed}: clean stream has no duplicates");
        for k in 1..=n {
            let mut dup: Vec<Wire> = stream[..k].to_vec();
            dup.extend_from_slice(&stream[..k]); // the duplicated prefix
            dup.extend_from_slice(&stream[k..]);
            let (got, batches, supp) = accepted(&plan, &dup);
            assert_eq!(got, base, "seed {seed} k {k}: delivery must not change");
            assert_eq!(batches, base_batches, "seed {seed} k {k}: batches");
            assert_eq!(supp, k as u64, "seed {seed} k {k}: duplicates suppressed");
        }
    }
}

#[test]
fn injected_duplicates_never_change_output_or_engine_sends() {
    // The same property end-to-end: a duplication-only fault plan must
    // be invisible to the engine — identical output (Instance state)
    // and identical `messages_sent` — with the wire-level dedup
    // absorbing every extra copy.
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let policy = HashPolicy::new(Network::of_size(4));
    for seed in 0..10u64 {
        let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xFACE);
        let input = Instance::from_facts((0..5).map(|_| {
            fact(
                "E",
                [(rng.gen_u64() % 6) as i64, (rng.gen_u64() % 6) as i64],
            )
        }));
        let mk = |plan: FaultPlan| {
            run_threaded(
                &ThreadedNetwork {
                    programs: Programs::Shared(&t),
                    policy: &policy,
                    config: SystemConfig::ORIGINAL,
                },
                &input,
                &ThreadedConfig::new(2).with_faults(plan),
            )
        };
        let clean = mk(FaultPlan::none(seed));
        let dup = mk(FaultPlan::uniform(seed, 0.0, 0.9));
        assert!(clean.quiescent && dup.quiescent, "seed {seed}");
        assert_eq!(
            dup.output, clean.output,
            "seed {seed}: output must not change"
        );
        assert_eq!(
            dup.metrics.messages_sent, clean.metrics.messages_sent,
            "seed {seed}: duplication is invisible to engine-level sends"
        );
        assert!(
            dup.faults.duplicates_injected > 0,
            "seed {seed}: the plan must actually inject duplicates"
        );
        assert_eq!(
            dup.faults.attempts,
            dup.faults.delivered_batches + dup.faults.duplicates_suppressed + dup.faults.dropped,
            "seed {seed}: every injected copy is delivered once or suppressed"
        );
    }
}

#[test]
fn link_counters_reconcile_under_random_fault_plans() {
    // Property: whatever the fault plan does, per-link wire accounting
    // balances — every attempt is delivered, suppressed, dropped, or
    // still buffered — and the global stats agree with the per-link
    // sums.
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let policy = HashPolicy::new(Network::of_size(4));
    for seed in 0..12u64 {
        let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xACC7);
        let input = Instance::from_facts((0..4).map(|_| {
            fact(
                "E",
                [(rng.gen_u64() % 5) as i64, (rng.gen_u64() % 5) as i64],
            )
        }));
        let drop_p = (rng.gen_u64() % 30) as f64 / 100.0;
        let dup_p = (rng.gen_u64() % 30) as f64 / 100.0;
        let plan = FaultPlan::uniform(seed, drop_p, dup_p).with_delay(0.2, 4);
        let r = run_threaded(
            &ThreadedNetwork {
                programs: Programs::Shared(&t),
                policy: &policy,
                config: SystemConfig::ORIGINAL,
            },
            &input,
            &ThreadedConfig::new(3).with_faults(plan),
        );
        assert!(r.quiescent, "seed {seed} (drop {drop_p}, dup {dup_p})");
        let mut sums = (0u64, 0u64, 0u64, 0u64, 0u64);
        for ((src, dst), lc) in &r.link_counters {
            assert_eq!(
                lc.attempts,
                lc.delivered + lc.suppressed + lc.dropped + lc.buffered,
                "seed {seed}: link {src}->{dst} must reconcile"
            );
            sums.0 += lc.attempts;
            sums.1 += lc.delivered;
            sums.2 += lc.suppressed;
            sums.3 += lc.dropped;
            sums.4 += lc.buffered;
        }
        let f = &r.faults;
        assert_eq!(f.attempts, sums.0, "seed {seed}: global attempts");
        assert_eq!(f.delivered_batches, sums.1, "seed {seed}: global delivered");
        assert_eq!(
            f.duplicates_suppressed, sums.2,
            "seed {seed}: global suppressed"
        );
        assert_eq!(f.dropped, sums.3, "seed {seed}: global dropped");
        assert_eq!(sums.4, 0, "seed {seed}: quiescent run left wires buffered");
    }
}
