//! Domain-distinctness and domain-disjointness (Section 3.1 of the paper).
//!
//! A fact `f` is *domain distinct* from instance `I` when
//! `adom(f) \ adom(I) ≠ ∅` (it contains at least one new value); it is
//! *domain disjoint* when `adom(f) ∩ adom(I) = ∅` (it contains only new
//! values). An instance `J` is domain distinct (resp. disjoint) from `I`
//! when every fact of `J` is.

use crate::fact::Fact;
use crate::instance::Instance;
use crate::value::Value;
use std::collections::BTreeSet;

/// Whether fact `f` is domain distinct from `I` (contains at least one
/// value outside `adom(I)`).
pub fn fact_domain_distinct(f: &Fact, adom_i: &BTreeSet<Value>) -> bool {
    f.values().any(|v| !adom_i.contains(v))
}

/// Whether fact `f` is domain disjoint from `I` (contains no value of
/// `adom(I)`).
pub fn fact_domain_disjoint(f: &Fact, adom_i: &BTreeSet<Value>) -> bool {
    f.values().all(|v| !adom_i.contains(v))
}

/// Whether instance `J` is domain distinct from instance `I`: every fact of
/// `J` contains at least one value outside `adom(I)`.
pub fn is_domain_distinct(j: &Instance, i: &Instance) -> bool {
    let adom_i = i.adom();
    j.facts().all(|f| fact_domain_distinct(&f, &adom_i))
}

/// Whether instance `J` is domain disjoint from instance `I`:
/// `adom(J) ∩ adom(I) = ∅`.
pub fn is_domain_disjoint(j: &Instance, i: &Instance) -> bool {
    let adom_i = i.adom();
    j.facts().all(|f| fact_domain_disjoint(&f, &adom_i))
}

/// Whether `J` is an *induced subinstance* of `I` (Section 3.2):
/// `J = { f ∈ I | adom(f) ⊆ adom(J) }`.
pub fn is_induced_subinstance(j: &Instance, i: &Instance) -> bool {
    if !j.is_subset(i) {
        return false;
    }
    let adom_j = j.adom();
    i.facts()
        .filter(|f| f.values().all(|v| adom_j.contains(v)))
        .all(|f| j.contains(&f))
}

/// A fresh-value supply: hands out integer values guaranteed not to occur in
/// a given base set. Used by checkers and generators to build
/// domain-distinct / domain-disjoint extensions deterministically.
#[derive(Debug, Clone)]
pub struct FreshValues {
    next: i64,
    taken: BTreeSet<Value>,
}

impl FreshValues {
    /// A supply avoiding every value of `avoid`.
    pub fn avoiding(avoid: &BTreeSet<Value>) -> Self {
        let next = avoid
            .iter()
            .filter_map(|v| match v {
                Value::Int(i) => Some(*i + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0)
            .max(0);
        FreshValues {
            next,
            taken: avoid.clone(),
        }
    }

    /// A supply avoiding the active domain of `i`.
    pub fn avoiding_instance(i: &Instance) -> Self {
        Self::avoiding(&i.adom())
    }

    /// Produce the next fresh value.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Value {
        loop {
            let candidate = Value::Int(self.next);
            self.next += 1;
            if !self.taken.contains(&candidate) {
                self.taken.insert(candidate.clone());
                return candidate;
            }
        }
    }

    /// Produce `n` fresh values.
    pub fn take(&mut self, n: usize) -> Vec<Value> {
        (0..n).map(|_| self.next()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::fact;
    use crate::value::v;

    fn base() -> Instance {
        Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3])])
    }

    #[test]
    fn distinct_requires_one_new_value() {
        let i = base();
        // E(3,4): contains new value 4 -> distinct but not disjoint.
        let j = Instance::from_facts([fact("E", [3, 4])]);
        assert!(is_domain_distinct(&j, &i));
        assert!(!is_domain_disjoint(&j, &i));
        // E(1,2) is fully old -> not distinct.
        let k = Instance::from_facts([fact("E", [1, 2])]);
        assert!(!is_domain_distinct(&k, &i));
        assert!(!is_domain_disjoint(&k, &i));
    }

    #[test]
    fn disjoint_requires_all_new_values() {
        let i = base();
        let j = Instance::from_facts([fact("E", [10, 11]), fact("E", [11, 12])]);
        assert!(is_domain_disjoint(&j, &i));
        assert!(is_domain_distinct(&j, &i)); // disjoint implies distinct
        let mixed = Instance::from_facts([fact("E", [10, 11]), fact("E", [3, 10])]);
        assert!(!is_domain_disjoint(&mixed, &i));
        assert!(is_domain_distinct(&mixed, &i));
    }

    #[test]
    fn empty_extension_is_both() {
        let i = base();
        let j = Instance::new();
        assert!(is_domain_distinct(&j, &i));
        assert!(is_domain_disjoint(&j, &i));
    }

    #[test]
    fn induced_subinstance_definition() {
        // I = path 1->2->3, J = {E(1,2)}: adom(J)={1,2}, and I contains no
        // other fact over {1,2}, so J is induced.
        let i = base();
        let j = Instance::from_facts([fact("E", [1, 2])]);
        assert!(is_induced_subinstance(&j, &i));
        // J = {E(2,3)} over adom {2,3}: also induced.
        let j2 = Instance::from_facts([fact("E", [2, 3])]);
        assert!(is_induced_subinstance(&j2, &i));
        // Add E(2,2) to I: now {E(2,3)} misses a fact over {2,3}.
        let mut i2 = base();
        i2.insert(fact("E", [2, 2]));
        assert!(!is_induced_subinstance(&j2, &i2));
        // Not a subset at all.
        let j3 = Instance::from_facts([fact("E", [7, 7])]);
        assert!(!is_induced_subinstance(&j3, &i));
    }

    #[test]
    fn induced_iff_complement_distinct() {
        // Lemma 3.2's observation: J induced subinstance of I iff I \ J is
        // domain distinct from J.
        let i = base();
        let j = Instance::from_facts([fact("E", [1, 2])]);
        let complement = i.difference(&j);
        assert_eq!(
            is_induced_subinstance(&j, &i),
            is_domain_distinct(&complement, &j)
        );
    }

    #[test]
    fn fresh_values_avoid_base() {
        let i = base();
        let mut fresh = FreshValues::avoiding_instance(&i);
        let vals = fresh.take(5);
        let adom = i.adom();
        for val in &vals {
            assert!(!adom.contains(val));
        }
        // All distinct.
        let set: BTreeSet<_> = vals.iter().cloned().collect();
        assert_eq!(set.len(), 5);
        assert!(!set.contains(&v(1)));
    }
}
