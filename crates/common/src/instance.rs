//! Database instances: finite sets of facts.

use crate::fact::{rel, Fact, RelName};
use crate::schema::Schema;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A tuple of values (the arguments of one fact).
pub type Tuple = Vec<Value>;

/// A database instance: a finite set of facts, stored per relation with
/// deterministic iteration order.
///
/// `Instance` is the interchange type of the whole workspace: the Datalog
/// engine, the transducer simulator and the monotonicity checkers all
/// consume and produce instances. Equality is set equality of facts.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Instance {
    relations: BTreeMap<RelName, BTreeSet<Tuple>>,
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Self {
        Instance::default()
    }

    /// Build an instance from an iterator of facts.
    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> Self {
        let mut i = Instance::new();
        for f in facts {
            i.insert(f);
        }
        i
    }

    /// Insert a fact; returns `true` if it was not already present.
    pub fn insert(&mut self, fact: Fact) -> bool {
        let (r, args) = fact.into_parts();
        self.relations.entry(r).or_default().insert(args)
    }

    /// Insert a tuple into a named relation; returns `true` if new.
    pub fn insert_tuple(&mut self, relation: &RelName, tuple: Tuple) -> bool {
        assert!(!tuple.is_empty(), "nullary facts are not supported");
        if let Some(set) = self.relations.get_mut(relation) {
            set.insert(tuple)
        } else {
            self.relations
                .entry(relation.clone())
                .or_default()
                .insert(tuple)
        }
    }

    /// Remove a fact; returns `true` if it was present.
    pub fn remove(&mut self, fact: &Fact) -> bool {
        if let Some(set) = self.relations.get_mut(fact.relation()) {
            let removed = set.remove(fact.args());
            if set.is_empty() {
                self.relations.remove(fact.relation());
            }
            removed
        } else {
            false
        }
    }

    /// Whether the instance contains the fact.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.relations
            .get(fact.relation())
            .is_some_and(|s| s.contains(fact.args()))
    }

    /// Whether the named relation contains the tuple.
    pub fn contains_tuple(&self, relation: &str, tuple: &[Value]) -> bool {
        self.relations
            .get(relation)
            .is_some_and(|s| s.contains(tuple))
    }

    /// Number of facts `|I|`.
    pub fn len(&self) -> usize {
        self.relations.values().map(BTreeSet::len).sum()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterate all facts in deterministic order.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.relations.iter().flat_map(|(r, tuples)| {
            tuples
                .iter()
                .map(move |t| Fact::from_rel(r.clone(), t.clone()))
        })
    }

    /// Iterate the tuples of one relation (empty if absent).
    pub fn tuples(&self, relation: &str) -> impl Iterator<Item = &Tuple> + '_ {
        self.relations
            .get(relation)
            .into_iter()
            .flat_map(BTreeSet::iter)
    }

    /// Number of tuples in one relation.
    pub fn relation_len(&self, relation: &str) -> usize {
        self.relations.get(relation).map_or(0, BTreeSet::len)
    }

    /// The relation names that are non-empty, in deterministic order.
    pub fn relation_names(&self) -> impl Iterator<Item = &RelName> {
        self.relations.keys()
    }

    /// The active domain `adom(I)`: every value occurring in some fact.
    pub fn adom(&self) -> BTreeSet<Value> {
        self.relations
            .values()
            .flat_map(|tuples| tuples.iter().flatten())
            .cloned()
            .collect()
    }

    /// The minimal schema this instance is over (each relation with the
    /// arity of its tuples). Panics if a relation holds tuples of mixed
    /// arity (cannot happen through the public API when facts come from a
    /// single schema).
    pub fn schema(&self) -> Schema {
        let mut s = Schema::new();
        for (r, tuples) in &self.relations {
            let mut arities = tuples.iter().map(Vec::len);
            if let Some(a) = arities.next() {
                s.add(r, a);
            }
        }
        s
    }

    /// `I|σ`: the maximal subset of `I` over schema `σ`.
    pub fn restrict(&self, schema: &Schema) -> Instance {
        Instance {
            relations: self
                .relations
                .iter()
                .filter_map(|(r, tuples)| {
                    let arity = schema.arity(r)?;
                    let kept: BTreeSet<Tuple> = tuples
                        .iter()
                        .filter(|t| t.len() == arity)
                        .cloned()
                        .collect();
                    if kept.is_empty() {
                        None
                    } else {
                        Some((r.clone(), kept))
                    }
                })
                .collect(),
        }
    }

    /// Set union `I ∪ J`.
    pub fn union(&self, other: &Instance) -> Instance {
        let mut out = self.clone();
        out.extend(other.facts());
        out
    }

    /// In-place union.
    pub fn extend(&mut self, facts: impl IntoIterator<Item = Fact>) {
        for f in facts {
            self.insert(f);
        }
    }

    /// Set difference `I \ J`.
    pub fn difference(&self, other: &Instance) -> Instance {
        Instance {
            relations: self
                .relations
                .iter()
                .filter_map(|(r, tuples)| {
                    let kept: BTreeSet<Tuple> = match other.relations.get(r) {
                        Some(theirs) => tuples.difference(theirs).cloned().collect(),
                        None => tuples.clone(),
                    };
                    if kept.is_empty() {
                        None
                    } else {
                        Some((r.clone(), kept))
                    }
                })
                .collect(),
        }
    }

    /// Set intersection `I ∩ J`.
    pub fn intersection(&self, other: &Instance) -> Instance {
        Instance {
            relations: self
                .relations
                .iter()
                .filter_map(|(r, tuples)| {
                    let theirs = other.relations.get(r)?;
                    let kept: BTreeSet<Tuple> = tuples.intersection(theirs).cloned().collect();
                    if kept.is_empty() {
                        None
                    } else {
                        Some((r.clone(), kept))
                    }
                })
                .collect(),
        }
    }

    /// Whether `self ⊆ other` as sets of facts.
    pub fn is_subset(&self, other: &Instance) -> bool {
        self.relations.iter().all(|(r, tuples)| {
            other
                .relations
                .get(r)
                .is_some_and(|theirs| tuples.is_subset(theirs))
        })
    }

    /// Keep only the facts satisfying the predicate.
    pub fn retain(&mut self, mut keep: impl FnMut(&RelName, &Tuple) -> bool) {
        self.relations.retain(|r, tuples| {
            tuples.retain(|t| keep(r, t));
            !tuples.is_empty()
        });
    }

    /// Apply a value mapping to every fact (the image instance `h(I)`).
    pub fn map_values(&self, mut h: impl FnMut(&Value) -> Value) -> Instance {
        let mut out = Instance::new();
        for (r, tuples) in &self.relations {
            for t in tuples {
                out.insert_tuple(&rel(r.as_ref()), t.iter().map(&mut h).collect());
            }
        }
        out
    }
}

impl FromIterator<Fact> for Instance {
    fn from_iter<T: IntoIterator<Item = Fact>>(iter: T) -> Self {
        Instance::from_facts(iter)
    }
}

impl Extend<Fact> for Instance {
    fn extend<T: IntoIterator<Item = Fact>>(&mut self, iter: T) {
        for f in iter {
            self.insert(f);
        }
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fact) in self.facts().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fact}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::fact;
    use crate::value::v;

    fn abc() -> Instance {
        Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3]), fact("V", [9])])
    }

    #[test]
    fn insert_contains_remove() {
        let mut i = Instance::new();
        assert!(i.insert(fact("E", [1, 2])));
        assert!(!i.insert(fact("E", [1, 2])));
        assert!(i.contains(&fact("E", [1, 2])));
        assert!(!i.contains(&fact("E", [2, 1])));
        assert!(i.remove(&fact("E", [1, 2])));
        assert!(!i.remove(&fact("E", [1, 2])));
        assert!(i.is_empty());
    }

    #[test]
    fn len_counts_all_relations() {
        assert_eq!(abc().len(), 3);
        assert_eq!(abc().relation_len("E"), 2);
        assert_eq!(abc().relation_len("V"), 1);
        assert_eq!(abc().relation_len("X"), 0);
    }

    #[test]
    fn adom_collects_all_values() {
        let d = abc().adom();
        assert_eq!(
            d,
            [v(1), v(2), v(3), v(9)]
                .into_iter()
                .collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn restrict_projects_schema() {
        let s = Schema::from_pairs([("E", 2)]);
        let r = abc().restrict(&s);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&fact("E", [1, 2])));
        assert!(!r.contains(&fact("V", [9])));
        // Arity mismatch filters facts out.
        let s3 = Schema::from_pairs([("E", 3)]);
        assert!(abc().restrict(&s3).is_empty());
    }

    #[test]
    fn set_algebra() {
        let i = abc();
        let j = Instance::from_facts([fact("E", [2, 3]), fact("E", [3, 4])]);
        let u = i.union(&j);
        assert_eq!(u.len(), 4);
        let d = i.difference(&j);
        assert_eq!(d.len(), 2);
        assert!(d.contains(&fact("E", [1, 2])));
        assert!(d.contains(&fact("V", [9])));
        let x = i.intersection(&j);
        assert_eq!(x.len(), 1);
        assert!(x.contains(&fact("E", [2, 3])));
        assert!(d.is_subset(&i));
        assert!(x.is_subset(&i));
        assert!(x.is_subset(&j));
        assert!(!i.is_subset(&j));
        assert!(i.is_subset(&u));
    }

    #[test]
    fn schema_inference() {
        let s = abc().schema();
        assert_eq!(s.arity("E"), Some(2));
        assert_eq!(s.arity("V"), Some(1));
    }

    #[test]
    fn map_values_is_image() {
        let i = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 1])]);
        let h = i.map_values(|val| match val {
            Value::Int(_) => v(0),
            other => other.clone(),
        });
        // Both facts collapse to E(0,0).
        assert_eq!(h.len(), 1);
        assert!(h.contains(&fact("E", [0, 0])));
    }

    #[test]
    fn deterministic_iteration() {
        let i = abc();
        let order: Vec<String> = i.facts().map(|f| f.to_string()).collect();
        assert_eq!(order, vec!["E(1,2)", "E(2,3)", "V(9)"]);
    }

    #[test]
    fn retain_filters_in_place() {
        let mut i = abc();
        i.retain(|r, _| r.as_ref() == "E");
        assert_eq!(i.len(), 2);
        assert!(!i.contains(&fact("V", [9])));
    }
}
