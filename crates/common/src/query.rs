//! The abstract query interface (Section 2: "Computing Queries").
//!
//! A query is a generic mapping from instances over an input schema to
//! instances over an output schema. Everything downstream — the Datalog
//! engine, the native query implementations, the monotonicity checkers and
//! the transducer strategies — speaks this trait.

use crate::instance::Instance;
use crate::schema::Schema;

/// A query from instances over [`Query::input_schema`] to instances over
/// [`Query::output_schema`].
///
/// Implementations must be *generic* (commute with permutations of the
/// domain) and deterministic; the monotonicity experiments rely on both.
/// Facts of the input outside the input schema must be ignored, and the
/// output must be over the output schema.
pub trait Query: Send + Sync {
    /// The input schema `σ`.
    fn input_schema(&self) -> &Schema;

    /// The output schema `σ'`.
    fn output_schema(&self) -> &Schema;

    /// Evaluate the query on an input instance.
    fn eval(&self, input: &Instance) -> Instance;

    /// A human-readable name for reports and benchmarks.
    fn name(&self) -> &str {
        "query"
    }
}

/// A query defined by a Rust closure — handy for native implementations of
/// the paper's separating examples and for tests.
pub struct FnQuery<F>
where
    F: Fn(&Instance) -> Instance + Send + Sync,
{
    name: String,
    input: Schema,
    output: Schema,
    f: F,
}

impl<F> FnQuery<F>
where
    F: Fn(&Instance) -> Instance + Send + Sync,
{
    /// Wrap a closure as a [`Query`].
    pub fn new(name: impl Into<String>, input: Schema, output: Schema, f: F) -> Self {
        FnQuery {
            name: name.into(),
            input,
            output,
            f,
        }
    }
}

impl<F> Query for FnQuery<F>
where
    F: Fn(&Instance) -> Instance + Send + Sync,
{
    fn input_schema(&self) -> &Schema {
        &self.input
    }

    fn output_schema(&self) -> &Schema {
        &self.output
    }

    fn eval(&self, input: &Instance) -> Instance {
        let restricted = input.restrict(&self.input);
        (self.f)(&restricted).restrict(&self.output)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl Query for Box<dyn Query> {
    fn input_schema(&self) -> &Schema {
        (**self).input_schema()
    }

    fn output_schema(&self) -> &Schema {
        (**self).output_schema()
    }

    fn eval(&self, input: &Instance) -> Instance {
        (**self).eval(input)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::fact;

    #[test]
    fn fn_query_restricts_input_and_output() {
        let q = FnQuery::new(
            "copy-E",
            Schema::from_pairs([("E", 2)]),
            Schema::from_pairs([("O", 2)]),
            |i: &Instance| {
                let mut out = Instance::new();
                for f in i.facts() {
                    out.insert(fact("O", [f.args()[0].clone(), f.args()[1].clone()]));
                }
                // Also emit junk outside the output schema; it must be
                // filtered away.
                out.insert(fact("Junk", [1]));
                out
            },
        );
        let input = crate::instance::Instance::from_facts([
            fact("E", [1, 2]),
            fact("X", [5]), // outside input schema: ignored
        ]);
        let out = q.eval(&input);
        assert_eq!(out.len(), 1);
        assert!(out.contains(&fact("O", [1, 2])));
        assert_eq!(q.name(), "copy-E");
    }

    #[test]
    fn boxed_query_delegates() {
        let q: Box<dyn Query> = Box::new(FnQuery::new(
            "id",
            Schema::from_pairs([("E", 2)]),
            Schema::from_pairs([("E", 2)]),
            |i: &Instance| i.clone(),
        ));
        let input = Instance::from_facts([fact("E", [1, 2])]);
        assert_eq!(q.eval(&input), input);
        assert_eq!(q.name(), "id");
        assert_eq!(q.input_schema().arity("E"), Some(2));
    }
}
