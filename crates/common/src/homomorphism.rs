//! Homomorphisms between instances (Section 3.2).
//!
//! A homomorphism from `I` to `J` is a mapping `h : adom(I) → adom(J)` such
//! that `R(d̄) ∈ I` implies `R(h(d̄)) ∈ J`. These checkers are backtracking
//! searches — exponential in the worst case, intended for the small witness
//! instances used by the preservation-class experiments (`H`, `Hinj`, `E`).

use crate::instance::Instance;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};

/// A (partial or total) value mapping.
pub type ValueMap = BTreeMap<Value, Value>;

/// Apply a total mapping `h` to instance `I`, producing `h(I)`.
/// Values missing from the map are left unchanged.
pub fn apply(h: &ValueMap, i: &Instance) -> Instance {
    i.map_values(|v| h.get(v).cloned().unwrap_or_else(|| v.clone()))
}

/// Search for a homomorphism from `I` to `J`. Returns one if it exists.
pub fn find_homomorphism(i: &Instance, j: &Instance) -> Option<ValueMap> {
    search(i, j, false)
}

/// Search for an *injective* homomorphism from `I` to `J`.
pub fn find_injective_homomorphism(i: &Instance, j: &Instance) -> Option<ValueMap> {
    search(i, j, true)
}

/// Whether some homomorphism `I → J` exists.
pub fn has_homomorphism(i: &Instance, j: &Instance) -> bool {
    find_homomorphism(i, j).is_some()
}

/// Whether some injective homomorphism `I → J` exists.
pub fn has_injective_homomorphism(i: &Instance, j: &Instance) -> bool {
    find_injective_homomorphism(i, j).is_some()
}

/// Verify that `h` is a homomorphism from `I` to `J` (and injective if
/// `injective` is set). Total on `adom(I)` is required.
pub fn is_homomorphism(h: &ValueMap, i: &Instance, j: &Instance, injective: bool) -> bool {
    let adom_i = i.adom();
    if !adom_i.iter().all(|v| h.contains_key(v)) {
        return false;
    }
    if injective {
        let mut images = BTreeSet::new();
        for v in &adom_i {
            if !images.insert(h.get(v).unwrap().clone()) {
                return false;
            }
        }
    }
    apply(h, i).is_subset(j)
}

fn search(i: &Instance, j: &Instance, injective: bool) -> Option<ValueMap> {
    let facts: Vec<_> = i.facts().collect();
    if facts.is_empty() {
        return Some(ValueMap::new());
    }
    // Candidate targets per source fact: same-relation tuples of J.
    let mut assignment = ValueMap::new();
    let mut used: BTreeSet<Value> = BTreeSet::new();
    if backtrack(&facts, 0, j, injective, &mut assignment, &mut used) {
        Some(assignment)
    } else {
        None
    }
}

fn backtrack(
    facts: &[crate::fact::Fact],
    idx: usize,
    j: &Instance,
    injective: bool,
    assignment: &mut ValueMap,
    used: &mut BTreeSet<Value>,
) -> bool {
    let Some(f) = facts.get(idx) else {
        return true;
    };
    let candidates: Vec<Vec<Value>> = j.tuples(f.relation()).cloned().collect();
    'cand: for target in candidates {
        if target.len() != f.arity() {
            continue;
        }
        // Try to extend the assignment to map f's args onto target.
        let mut added: Vec<Value> = Vec::new();
        let mut added_used: Vec<Value> = Vec::new();
        for (src, dst) in f.args().iter().zip(target.iter()) {
            match assignment.get(src) {
                Some(existing) if existing == dst => {}
                Some(_) => {
                    undo(assignment, used, &added, &added_used);
                    continue 'cand;
                }
                None => {
                    if injective && used.contains(dst) {
                        undo(assignment, used, &added, &added_used);
                        continue 'cand;
                    }
                    assignment.insert(src.clone(), dst.clone());
                    added.push(src.clone());
                    if injective {
                        used.insert(dst.clone());
                        added_used.push(dst.clone());
                    }
                }
            }
        }
        if backtrack(facts, idx + 1, j, injective, assignment, used) {
            return true;
        }
        undo(assignment, used, &added, &added_used);
    }
    false
}

fn undo(
    assignment: &mut ValueMap,
    used: &mut BTreeSet<Value>,
    added: &[Value],
    added_used: &[Value],
) {
    for k in added {
        assignment.remove(k);
    }
    for u in added_used {
        used.remove(u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::fact;
    use crate::value::v;

    fn path(n: i64) -> Instance {
        Instance::from_facts((0..n).map(|k| fact("E", [k, k + 1])))
    }

    #[test]
    fn identity_homomorphism_exists() {
        let i = path(3);
        let h = find_homomorphism(&i, &i).expect("identity exists");
        assert!(is_homomorphism(&h, &i, &i, false));
    }

    #[test]
    fn path_maps_into_cycle() {
        // A path of any length maps homomorphically into a self-loop.
        let i = path(4);
        let j = Instance::from_facts([fact("E", [0, 0])]);
        let h = find_homomorphism(&i, &j).expect("collapse onto loop");
        assert!(is_homomorphism(&h, &i, &j, false));
        // But not injectively (5 values, 1 target).
        assert!(find_injective_homomorphism(&i, &j).is_none());
    }

    #[test]
    fn no_homomorphism_triangle_into_edge() {
        // Triangle (odd cycle) has no hom into a single directed edge graph
        // without loops.
        let tri = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3]), fact("E", [3, 1])]);
        let edge = Instance::from_facts([fact("E", [1, 2])]);
        assert!(!has_homomorphism(&tri, &edge));
        // The reverse direction does exist: the edge maps into the triangle.
        assert!(has_homomorphism(&edge, &tri));
    }

    #[test]
    fn injective_requires_enough_targets() {
        let i = Instance::from_facts([fact("E", [1, 2]), fact("E", [3, 4])]);
        let j = Instance::from_facts([
            fact("E", [10, 11]),
            fact("E", [12, 13]),
            fact("E", [11, 12]),
        ]);
        let h = find_injective_homomorphism(&i, &j).expect("two disjoint edges fit");
        assert!(is_homomorphism(&h, &i, &j, true));
        // Cannot embed two disjoint edges injectively into one edge.
        let one = Instance::from_facts([fact("E", [10, 11])]);
        assert!(!has_injective_homomorphism(&i, &one));
    }

    #[test]
    fn empty_source_always_maps() {
        assert!(has_homomorphism(&Instance::new(), &Instance::new()));
        assert!(has_injective_homomorphism(&Instance::new(), &path(2)));
    }

    #[test]
    fn is_homomorphism_rejects_partial_maps() {
        let i = path(2);
        let mut h = ValueMap::new();
        h.insert(v(0), v(0));
        // Not total on adom(I).
        assert!(!is_homomorphism(&h, &i, &i, false));
    }

    #[test]
    fn apply_images_facts() {
        let i = Instance::from_facts([fact("E", [1, 2])]);
        let mut h = ValueMap::new();
        h.insert(v(1), v(5));
        h.insert(v(2), v(6));
        assert_eq!(apply(&h, &i), Instance::from_facts([fact("E", [5, 6])]));
    }

    #[test]
    fn cross_relation_consistency() {
        // I: E(1,2), V(1). J: E(8,9), V(9). The only E-target forces 1->8,
        // but V needs 1->9 — contradiction, no homomorphism.
        let i = Instance::from_facts([fact("E", [1, 2]), fact("V", [1])]);
        let j = Instance::from_facts([fact("E", [8, 9]), fact("V", [9])]);
        assert!(!has_homomorphism(&i, &j));
        // Fix J so V(8) exists.
        let j2 = Instance::from_facts([fact("E", [8, 9]), fact("V", [8])]);
        assert!(has_homomorphism(&i, &j2));
    }
}
