//! Domain values.
//!
//! The paper assumes an infinite universe **dom** of data values. We model a
//! value as either a 64-bit integer, an interned string symbol, or a Skolem
//! term (used by ILOG¬ value invention, see the `calm-ilog` crate). Node
//! identifiers of a network are ordinary values, matching the paper's remark
//! that "node identifiers can occur as data in relations" (Section 4.1.1).

use std::fmt;
use std::sync::Arc;

/// A single data value from **dom**.
///
/// Values are cheap to clone (`Arc`-backed for the non-integer variants),
/// totally ordered (so instances can be stored deterministically) and
/// hashable.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A named (string) value.
    Str(Arc<str>),
    /// An invented value: a ground Skolem term `f(v1, ..., vk)`.
    ///
    /// Skolem terms only arise from ILOG¬ evaluation; plain Datalog¬
    /// programs never construct them. Two invented values are equal iff
    /// their functor and arguments are equal (Herbrand interpretation).
    Skolem(Arc<SkolemTerm>),
}

/// A ground Skolem term `functor(args...)` over the Herbrand universe.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SkolemTerm {
    /// The Skolem functor name, e.g. `f_R` for invention relation `R`.
    pub functor: Arc<str>,
    /// The (ground) argument values.
    pub args: Vec<Value>,
}

impl SkolemTerm {
    /// The nesting depth of this term (a term with no Skolem arguments has
    /// depth 1). Used to bound Herbrand evaluation (divergence cutoff).
    pub fn depth(&self) -> usize {
        1 + self.args.iter().map(Value::skolem_depth).max().unwrap_or(0)
    }
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Construct an integer value.
    pub const fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Construct an invented (Skolem) value.
    pub fn skolem(functor: impl AsRef<str>, args: Vec<Value>) -> Self {
        Value::Skolem(Arc::new(SkolemTerm {
            functor: Arc::from(functor.as_ref()),
            args,
        }))
    }

    /// Whether this value is an invented (Skolem) value.
    pub fn is_invented(&self) -> bool {
        matches!(self, Value::Skolem(_))
    }

    /// Skolem nesting depth: 0 for base values, term depth otherwise.
    pub fn skolem_depth(&self) -> usize {
        match self {
            Value::Skolem(t) => t.depth(),
            _ => 0,
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(s)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Skolem(t) => write!(f, "{t}"),
        }
    }
}

impl fmt::Debug for SkolemTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SkolemTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.functor)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// Shorthand for an integer value; used pervasively in tests and examples.
pub fn v(i: i64) -> Value {
    Value::Int(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_equality_and_ordering() {
        assert_eq!(v(1), Value::Int(1));
        assert_ne!(v(1), v(2));
        assert!(v(1) < v(2));
        assert_eq!(Value::str("a"), Value::from("a"));
        assert_ne!(Value::str("a"), v(1));
    }

    #[test]
    fn skolem_terms_are_herbrand() {
        let t1 = Value::skolem("f", vec![v(1), v(2)]);
        let t2 = Value::skolem("f", vec![v(1), v(2)]);
        let t3 = Value::skolem("f", vec![v(2), v(1)]);
        let t4 = Value::skolem("g", vec![v(1), v(2)]);
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
        assert_ne!(t1, t4);
    }

    #[test]
    fn skolem_depth_nests() {
        let base = v(7);
        assert_eq!(base.skolem_depth(), 0);
        let d1 = Value::skolem("f", vec![v(1)]);
        assert_eq!(d1.skolem_depth(), 1);
        let d2 = Value::skolem("g", vec![d1.clone(), v(2)]);
        assert_eq!(d2.skolem_depth(), 2);
        let d3 = Value::skolem("f", vec![d2]);
        assert_eq!(d3.skolem_depth(), 3);
        assert!(d3.is_invented());
        assert!(!base.is_invented());
    }

    #[test]
    fn display_forms() {
        assert_eq!(v(3).to_string(), "3");
        assert_eq!(Value::str("abc").to_string(), "abc");
        let t = Value::skolem("f_R", vec![v(1), Value::str("x")]);
        assert_eq!(t.to_string(), "f_R(1,x)");
    }
}
