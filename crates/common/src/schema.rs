//! Database schemas: finite maps from relation names to arities.

use crate::fact::{rel, Fact, RelName};
use std::collections::BTreeMap;
use std::fmt;

/// A database schema `σ`: a collection of relation names with arities.
///
/// All arities are at least 1 (the paper's standing assumption). Schemas are
/// value types with deterministic iteration order.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Schema {
    relations: BTreeMap<RelName, usize>,
}

/// Errors raised when constructing or combining schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A relation was declared with arity zero.
    NullaryRelation(String),
    /// The same relation name was declared with two different arities.
    ArityConflict {
        /// The conflicting relation name.
        relation: String,
        /// Arity seen first.
        first: usize,
        /// Arity seen second.
        second: usize,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::NullaryRelation(r) => {
                write!(
                    f,
                    "relation {r} has arity 0; nullary relations are not supported"
                )
            }
            SchemaError::ArityConflict {
                relation,
                first,
                second,
            } => write!(
                f,
                "relation {relation} declared with conflicting arities {first} and {second}"
            ),
        }
    }
}

impl std::error::Error for SchemaError {}

impl Schema {
    /// The empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Build a schema from `(name, arity)` pairs.
    ///
    /// # Errors
    /// Returns an error for nullary relations or conflicting arities.
    pub fn try_from_pairs<'a>(
        pairs: impl IntoIterator<Item = (&'a str, usize)>,
    ) -> Result<Self, SchemaError> {
        let mut s = Schema::new();
        for (name, arity) in pairs {
            s.try_add(name, arity)?;
        }
        Ok(s)
    }

    /// Build a schema from `(name, arity)` pairs, panicking on error.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, usize)>) -> Self {
        Self::try_from_pairs(pairs).expect("invalid schema")
    }

    /// Add a relation.
    ///
    /// # Errors
    /// Returns an error if `arity == 0` or the relation exists with a
    /// different arity. Re-adding with the same arity is a no-op.
    pub fn try_add(&mut self, name: &str, arity: usize) -> Result<(), SchemaError> {
        if arity == 0 {
            return Err(SchemaError::NullaryRelation(name.to_string()));
        }
        if let Some(&existing) = self.relations.get(name) {
            if existing != arity {
                return Err(SchemaError::ArityConflict {
                    relation: name.to_string(),
                    first: existing,
                    second: arity,
                });
            }
            return Ok(());
        }
        self.relations.insert(rel(name), arity);
        Ok(())
    }

    /// Add a relation, panicking on error.
    pub fn add(&mut self, name: &str, arity: usize) -> &mut Self {
        self.try_add(name, arity).expect("invalid relation");
        self
    }

    /// Look up the arity of a relation.
    pub fn arity(&self, name: &str) -> Option<usize> {
        self.relations.get(name).copied()
    }

    /// Whether the schema contains the relation.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Whether a fact is *over* this schema (relation present, arity
    /// matches).
    pub fn covers(&self, fact: &Fact) -> bool {
        self.arity(fact.relation()) == Some(fact.arity())
    }

    /// Iterate `(name, arity)` pairs in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&RelName, usize)> {
        self.relations.iter().map(|(n, &a)| (n, a))
    }

    /// Relation names in deterministic order.
    pub fn names(&self) -> impl Iterator<Item = &RelName> {
        self.relations.keys()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Union of two schemas.
    ///
    /// # Errors
    /// Returns an error on arity conflicts.
    pub fn try_union(&self, other: &Schema) -> Result<Schema, SchemaError> {
        let mut out = self.clone();
        for (name, arity) in other.iter() {
            out.try_add(name, arity)?;
        }
        Ok(out)
    }

    /// Union of two schemas, panicking on arity conflicts.
    pub fn union(&self, other: &Schema) -> Schema {
        self.try_union(other).expect("schema union conflict")
    }

    /// Whether the two schemas share no relation names.
    pub fn is_disjoint(&self, other: &Schema) -> bool {
        self.names().all(|n| !other.contains(n))
    }

    /// The schema restricted to relation names satisfying the predicate.
    pub fn filter(&self, mut keep: impl FnMut(&str) -> bool) -> Schema {
        Schema {
            relations: self
                .relations
                .iter()
                .filter(|(n, _)| keep(n))
                .map(|(n, &a)| (n.clone(), a))
                .collect(),
        }
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, a)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}({a})")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::fact;

    #[test]
    fn build_and_query() {
        let s = Schema::from_pairs([("E", 2), ("V", 1)]);
        assert_eq!(s.arity("E"), Some(2));
        assert_eq!(s.arity("V"), Some(1));
        assert_eq!(s.arity("X"), None);
        assert!(s.contains("E"));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn rejects_nullary() {
        assert!(matches!(
            Schema::try_from_pairs([("P", 0)]),
            Err(SchemaError::NullaryRelation(_))
        ));
    }

    #[test]
    fn rejects_conflicting_arity() {
        let mut s = Schema::from_pairs([("E", 2)]);
        assert!(s.try_add("E", 2).is_ok());
        assert!(matches!(
            s.try_add("E", 3),
            Err(SchemaError::ArityConflict { .. })
        ));
    }

    #[test]
    fn covers_checks_relation_and_arity() {
        let s = Schema::from_pairs([("E", 2)]);
        assert!(s.covers(&fact("E", [1, 2])));
        assert!(!s.covers(&fact("E", [1, 2, 3])));
        assert!(!s.covers(&fact("F", [1, 2])));
    }

    #[test]
    fn union_and_disjoint() {
        let a = Schema::from_pairs([("E", 2)]);
        let b = Schema::from_pairs([("V", 1)]);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert!(a.is_disjoint(&b));
        assert!(!u.is_disjoint(&a));
        let c = Schema::from_pairs([("E", 3)]);
        assert!(a.try_union(&c).is_err());
    }

    #[test]
    fn filter_restricts() {
        let s = Schema::from_pairs([("E", 2), ("V", 1), ("Out", 1)]);
        let f = s.filter(|n| n != "Out");
        assert_eq!(f.len(), 2);
        assert!(!f.contains("Out"));
    }
}
