//! The shared evaluation substrate: symbol interning and indexed,
//! delta-tracked relation storage.
//!
//! Every evaluation path in the workspace — the stratified Datalog¬
//! engine, the well-founded alternating fixpoint, ILOG¬ Herbrand
//! evaluation and the transducer simulator — runs over the two types in
//! this module:
//!
//! * [`SymbolTable`] interns relation names to [`RelId`] and domain
//!   values to [`Sym`], both plain `u32`s. Hot joins compare and hash
//!   `Copy` integers instead of cloning [`RelName`]s and [`Value`]s;
//!   conversion back to the deterministic [`Instance`] boundary happens
//!   only at the edges. Tables are shared between stores through
//!   [`SharedSymbols`] so that facts from different stores (e.g. the
//!   under- and over-approximations of the alternating fixpoint, or a
//!   transducer's persistent scratch state) stay directly comparable.
//!
//! * [`Storage`] maps each [`RelId`] to a [`Relation`]: a deduplicated,
//!   insertion-ordered row vector with per-column hash indexes that are
//!   built once ([`Relation::ensure_index`]) and *maintained
//!   incrementally on every insert* — the semi-naive loop never
//!   rebuilds an index. A per-relation `delta_start` watermark exposes
//!   the rows added since the last [`Storage::mark_deltas`] call as the
//!   semi-naive delta, with no second store and no copying. `Storage`
//!   also keeps a running fact counter, making [`Storage::len`] and
//!   [`Storage::is_empty`] O(1).
//!
//! [`EvalMetrics`] is the engine-level counter block threaded from the
//! innermost join loop up to benchmark and experiment reports: fixpoint
//! iterations, derivations, index probes/hits and bytes moved into
//! storage.
//!
//! [`Storage`] and [`Relation`] hold no interior mutability, so a
//! `&Storage` is freely shareable across threads: the data-parallel
//! semi-naive driver hands read-only views of the same store (rows,
//! delta watermarks and indexes) to scoped worker threads and merges
//! their derivation buffers back through [`Storage::insert_batch`] on
//! the single mutating thread. A compile-time assertion below pins the
//! `Send + Sync` guarantee.
//!
//! Ids are `u32`s; the interning and row-id paths use *checked*
//! conversions that panic with a clear "interning capacity" message
//! instead of silently wrapping past 2^32 and aliasing unrelated
//! symbols or rows.

use crate::fact::{rel, RelName};
use crate::instance::Instance;
use crate::schema::Schema;
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// An interned relation name: index into a [`SymbolTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub u32);

/// An interned domain value: index into a [`SymbolTable`].
///
/// Equality of `Sym`s is equality of the underlying [`Value`]s *within
/// one table*; ordering follows interning order, not value order, so
/// deterministic output ordering is restored at the [`Instance`] edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

/// A tuple of interned values — the row type of [`Relation`].
pub type SymTuple = Vec<Sym>;

/// Allocate the next `u32` id for a collection currently holding `len`
/// entries, panicking with a clear message once `cap` ids are in use.
///
/// Ids are indexes, so a collection of `len` entries hands out id `len`
/// next; `cap` is normally `u32::MAX` (tests inject a small cap to
/// exercise the guard). Without this check the former `as u32` casts
/// silently wrapped past 2^32 and aliased unrelated symbols or rows.
#[inline]
fn checked_id(len: usize, cap: u32, what: &str) -> u32 {
    assert!(
        len < cap as usize,
        "interning capacity exhausted: cannot allocate a new {what} id \
         ({len} already interned, capacity {cap}; ids are u32)"
    );
    len as u32
}

/// Bidirectional interner for relation names and domain values.
#[derive(Debug)]
pub struct SymbolTable {
    rel_names: Vec<RelName>,
    rel_ids: HashMap<RelName, RelId>,
    values: Vec<Value>,
    value_ids: HashMap<Value, Sym>,
    /// Maximum number of ids handed out per namespace; `u32::MAX` in
    /// production, injectable for tests of the overflow guard.
    id_cap: u32,
}

impl Default for SymbolTable {
    fn default() -> Self {
        SymbolTable {
            rel_names: Vec::new(),
            rel_ids: HashMap::new(),
            values: Vec::new(),
            value_ids: HashMap::new(),
            id_cap: u32::MAX,
        }
    }
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// An empty table that panics after `cap` ids per namespace — used
    /// by tests to exercise the interning-capacity guard without
    /// interning 2^32 values.
    pub fn with_id_capacity(cap: u32) -> Self {
        SymbolTable {
            id_cap: cap,
            ..SymbolTable::default()
        }
    }

    /// Intern a relation name.
    pub fn rel(&mut self, name: &str) -> RelId {
        if let Some(&id) = self.rel_ids.get(name) {
            return id;
        }
        let id = RelId(checked_id(self.rel_names.len(), self.id_cap, "relation"));
        let name = rel(name);
        self.rel_names.push(name.clone());
        self.rel_ids.insert(name, id);
        id
    }

    /// Look up a relation name without interning it.
    pub fn lookup_rel(&self, name: &str) -> Option<RelId> {
        self.rel_ids.get(name).copied()
    }

    /// The name of an interned relation.
    pub fn rel_name(&self, id: RelId) -> &RelName {
        &self.rel_names[id.0 as usize]
    }

    /// Number of interned relation names.
    pub fn rel_count(&self) -> usize {
        self.rel_names.len()
    }

    /// Intern a value.
    pub fn sym(&mut self, v: &Value) -> Sym {
        if let Some(&s) = self.value_ids.get(v) {
            return s;
        }
        let s = Sym(checked_id(self.values.len(), self.id_cap, "value"));
        self.values.push(v.clone());
        self.value_ids.insert(v.clone(), s);
        s
    }

    /// Look up a value without interning it.
    pub fn lookup_sym(&self, v: &Value) -> Option<Sym> {
        self.value_ids.get(v).copied()
    }

    /// The value behind an interned symbol.
    pub fn value(&self, s: Sym) -> &Value {
        &self.values[s.0 as usize]
    }

    /// Number of interned values.
    pub fn sym_count(&self) -> usize {
        self.values.len()
    }
}

/// A clonable handle to a [`SymbolTable`] shared by several stores.
///
/// Interning only happens at the edges (loading instances, compiling
/// rule constants, emitting invented values); the hot join loops
/// operate on [`Sym`]s without touching the table, so the lock is
/// uncontended in practice.
#[derive(Debug, Clone, Default)]
pub struct SharedSymbols(Arc<RwLock<SymbolTable>>);

impl SharedSymbols {
    /// A handle to a fresh, empty table.
    pub fn new() -> Self {
        SharedSymbols::default()
    }

    /// Read access to the table.
    pub fn read(&self) -> RwLockReadGuard<'_, SymbolTable> {
        self.0.read().expect("symbol table poisoned")
    }

    /// Write (interning) access to the table.
    pub fn write(&self) -> RwLockWriteGuard<'_, SymbolTable> {
        self.0.write().expect("symbol table poisoned")
    }

    /// Whether two handles refer to the same underlying table (required
    /// for comparing or copying [`Sym`]-level data across stores).
    pub fn same_table(&self, other: &SharedSymbols) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// An immutable run of rows in lexicographic [`Sym`] order, stored
/// columnar-flat: row `i` is `data[offsets[i] as usize..offsets[i + 1]
/// as usize]`. Batches are the sorted half of Storage v2: the insertion
/// log stays the source of truth for iteration order, while sealed
/// batches give the merge-join path binary-searchable runs and the wire
/// codec a sorted-row shape to delta-encode.
#[derive(Debug, Clone, Default)]
struct SortedBatch {
    data: Vec<Sym>,
    /// `rows + 1` offsets into `data`; `offsets[0] == 0`.
    offsets: Vec<u32>,
    /// Insertion-log row id of each batch row, parallel to the batch's
    /// row order. Sealed batches are immutable, so a retraction cannot
    /// touch them; carrying the id lets probes check tombstone liveness
    /// (a zeroed support count in [`Relation`]) in O(1) instead of a
    /// membership-map lookup per candidate row.
    ids: Vec<u32>,
}

impl SortedBatch {
    /// Build a batch from `(row id, row)` pairs already sorted by row
    /// slice order.
    fn from_sorted_rows<'a>(
        rows: impl Iterator<Item = (u32, &'a [Sym])>,
        data_hint: usize,
    ) -> SortedBatch {
        let mut b = SortedBatch {
            data: Vec::with_capacity(data_hint),
            offsets: vec![0],
            ids: Vec::new(),
        };
        for (id, row) in rows {
            b.push(id, row);
        }
        b
    }

    fn push(&mut self, id: u32, row: &[Sym]) {
        self.data.extend_from_slice(row);
        let end = checked_id(self.data.len(), u32::MAX, "batch offset");
        self.offsets.push(end);
        self.ids.push(id);
    }

    /// Number of rows.
    fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    fn row(&self, i: usize) -> &[Sym] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// First row index whose leading symbol is `>= s` — under slice
    /// order, rows sharing a leading symbol are one contiguous range
    /// (nullary rows sort before every keyed row).
    fn lower_bound(&self, s: Sym) -> usize {
        let (mut lo, mut hi) = (0, self.rows());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.row(mid).first().copied() < Some(s) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Merge two sorted batches into one (rows are distinct across
    /// batches, so this is a plain two-way merge).
    fn merged(a: &SortedBatch, b: &SortedBatch) -> SortedBatch {
        let mut out = SortedBatch {
            data: Vec::with_capacity(a.data.len() + b.data.len()),
            offsets: Vec::with_capacity(a.rows() + b.rows() + 1),
            ids: Vec::with_capacity(a.rows() + b.rows()),
        };
        out.offsets.push(0);
        let (mut i, mut j) = (0, 0);
        while i < a.rows() && j < b.rows() {
            if a.row(i) <= b.row(j) {
                out.push(a.ids[i], a.row(i));
                i += 1;
            } else {
                out.push(b.ids[j], b.row(j));
                j += 1;
            }
        }
        while i < a.rows() {
            out.push(a.ids[i], a.row(i));
            i += 1;
        }
        while j < b.rows() {
            out.push(b.ids[j], b.row(j));
            j += 1;
        }
        out
    }
}

/// One relation's rows: deduplicated, in insertion order, with
/// incrementally maintained per-column indexes, a delta watermark, and
/// (when sealed via [`Relation::ensure_sorted`]) an LSM-style stack of
/// sorted immutable batches covering a prefix of the insertion log.
///
/// # Retraction
///
/// Rows are never removed from the insertion log in place. A
/// [`Relation::retract`] zeroes the row's support count, leaving a
/// *tombstone*: sealed batches stay immutable (probes filter dead ids
/// when any exist), indexes keep the id, and [`Relation::compact`]
/// later rebuilds the relation over the live rows only. On an
/// insert-only relation `dead == 0` and every tombstone check is a
/// single branch, so the v1 insert-only behavior is byte-identical.
#[derive(Debug, Clone)]
pub struct Relation {
    rows: Vec<SymTuple>,
    /// Row → row id. The id doubles as the index into `counts`.
    seen: HashMap<SymTuple, u32>,
    /// Per-row support count, parallel to `rows`; `0` marks a
    /// tombstoned (retracted) row. Semi-naive evaluation is
    /// set-semantic, so counts act as liveness markers (`0`/`1`) —
    /// exact derivation multiplicities are not recoverable from the
    /// delta rounds (see DESIGN.md §16); the incremental engine uses
    /// delete-rederive on top of these markers.
    counts: Vec<u32>,
    /// Number of tombstoned rows (`counts[i] == 0`).
    dead: usize,
    /// Row ids retracted since the last [`Relation::mark_delta`] — the
    /// retraction log mirroring the insertion log's delta region. May
    /// contain duplicates and since-revived ids; the signed-delta
    /// reader [`Relation::removed_rows`] filters both.
    retracted_since_mark: Vec<u32>,
    /// `indexes[col]`, when built, maps a symbol to the ids of the rows
    /// whose `col`-th component is that symbol.
    indexes: Vec<Option<HashMap<Sym, Vec<u32>>>>,
    delta_start: usize,
    /// Sorted immutable batches, together holding exactly the rows
    /// `rows[..sorted_end]`. Sizes are kept size-tiered (each batch at
    /// least twice its successor), so there are O(log n) batches and
    /// sealing is amortized O(n log n) overall.
    batches: Vec<SortedBatch>,
    /// Prefix of the insertion log covered by `batches`; rows past it
    /// are the unsealed tail, scanned by [`Relation::probe_sorted`].
    sorted_end: usize,
    /// Maximum number of row ids; `u32::MAX` in production, injectable
    /// for tests of the overflow guard.
    row_cap: u32,
}

impl Default for Relation {
    fn default() -> Self {
        Relation {
            rows: Vec::new(),
            seen: HashMap::new(),
            counts: Vec::new(),
            dead: 0,
            retracted_since_mark: Vec::new(),
            indexes: Vec::new(),
            delta_start: 0,
            batches: Vec::new(),
            sorted_end: 0,
            row_cap: u32::MAX,
        }
    }
}

impl Relation {
    /// An empty relation that panics after `cap` rows — used by tests
    /// to exercise the row-id capacity guard without inserting 2^32
    /// rows.
    pub fn with_row_capacity(cap: u32) -> Self {
        Relation {
            row_cap: cap,
            ..Relation::default()
        }
    }

    /// Insert a row; returns `true` when new *or revived*. Retracting a
    /// row and re-inserting it resurrects the same row id in place
    /// (support back to 1) — sealed batches and built indexes already
    /// reference that id, so nothing is rebuilt and no duplicate row is
    /// ever enumerated. A genuinely new row updates every built index
    /// in place — indexes never need rebuilding.
    pub fn insert(&mut self, t: SymTuple) -> bool {
        if let Some(&id) = self.seen.get(&t) {
            if self.counts[id as usize] == 0 {
                self.counts[id as usize] = 1;
                self.dead -= 1;
                return true;
            }
            return false;
        }
        let row_id = checked_id(self.rows.len(), self.row_cap, "row");
        for (col, index) in self.indexes.iter_mut().enumerate() {
            if let (Some(map), Some(&s)) = (index.as_mut(), t.get(col)) {
                map.entry(s).or_default().push(row_id);
            }
        }
        self.seen.insert(t.clone(), row_id);
        self.rows.push(t);
        self.counts.push(1);
        true
    }

    /// Retract a row: zero its support count, leaving a tombstone in
    /// the insertion log and appending the id to the retraction log.
    /// Sealed batches stay immutable — probes filter dead ids until
    /// [`Relation::compact`] physically removes them. Returns `true`
    /// when the row was present and live.
    pub fn retract(&mut self, t: &[Sym]) -> bool {
        let Some(&id) = self.seen.get(t) else {
            return false;
        };
        if self.counts[id as usize] == 0 {
            return false;
        }
        self.counts[id as usize] = 0;
        self.dead += 1;
        self.retracted_since_mark.push(id);
        true
    }

    /// Membership test (tombstoned rows are absent).
    pub fn contains(&self, t: &[Sym]) -> bool {
        match self.seen.get(t) {
            Some(&id) => self.dead == 0 || self.counts[id as usize] > 0,
            None => false,
        }
    }

    /// The support count of a row (`0` when absent or tombstoned).
    pub fn support(&self, t: &[Sym]) -> u32 {
        self.seen.get(t).map_or(0, |&id| self.counts[id as usize])
    }

    /// Whether the row with the given id is live (not tombstoned).
    pub fn is_live(&self, id: u32) -> bool {
        self.counts.get(id as usize).is_some_and(|&c| c > 0)
    }

    /// All rows in the insertion log, in insertion order — *including*
    /// tombstoned rows when `dead_rows() > 0`. The fixpoint engines
    /// only run over compacted relations (where this equals
    /// [`Relation::live_rows`]); liveness-aware callers filter with
    /// [`Relation::is_live`].
    pub fn rows(&self) -> &[SymTuple] {
        &self.rows
    }

    /// The live rows, in insertion order.
    pub fn live_rows(&self) -> impl Iterator<Item = &SymTuple> + '_ {
        self.rows
            .iter()
            .enumerate()
            .filter(move |(i, _)| self.dead == 0 || self.counts[*i] > 0)
            .map(|(_, t)| t)
    }

    /// The rows inserted since the last [`Relation::mark_delta`]
    /// (insertion log slice; may include tombstoned rows — the signed
    /// view is [`Relation::added_rows`]).
    pub fn delta_rows(&self) -> &[SymTuple] {
        &self.rows[self.delta_start.min(self.rows.len())..]
    }

    /// Signed delta, additions: rows inserted since the last
    /// [`Relation::mark_delta`] that are still live. Exact when the
    /// relation held no tombstones at mark time (the update driver
    /// compacts at every batch boundary): a revival of an older id can
    /// then only cancel a same-window retraction, never add.
    pub fn added_rows(&self) -> impl Iterator<Item = &SymTuple> + '_ {
        let start = self.delta_start.min(self.rows.len());
        self.rows[start..]
            .iter()
            .enumerate()
            .filter(move |(i, _)| self.dead == 0 || self.counts[start + *i] > 0)
            .map(|(_, t)| t)
    }

    /// Signed delta, removals: rows that were live at the last
    /// [`Relation::mark_delta`] and are tombstoned now. Ids past the
    /// watermark are skipped (inserted *and* retracted within the
    /// window — a net no-op), as are since-revived and duplicate log
    /// entries. Same precondition as [`Relation::added_rows`].
    pub fn removed_rows(&self) -> impl Iterator<Item = &SymTuple> + '_ {
        let mut emitted: HashSet<u32> = HashSet::new();
        self.retracted_since_mark
            .iter()
            .filter(move |&&id| {
                (id as usize) < self.delta_start
                    && self.counts[id as usize] == 0
                    && emitted.insert(id)
            })
            .map(|&id| &self.rows[id as usize])
    }

    /// Row id of the start of the delta region.
    pub fn delta_start(&self) -> usize {
        self.delta_start
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.rows.len() - self.dead
    }

    /// Whether the relation has no live rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of tombstoned (retracted, not yet compacted) rows.
    pub fn dead_rows(&self) -> usize {
        self.dead
    }

    /// Move the delta watermark to the current end and clear the
    /// retraction log: inserts and retractions from now on form the
    /// next signed delta.
    pub fn mark_delta(&mut self) {
        self.delta_start = self.rows.len();
        self.retracted_since_mark.clear();
    }

    /// Build the index for a column if it does not exist yet (existing
    /// rows are indexed immediately; later inserts maintain it).
    pub fn ensure_index(&mut self, col: usize) {
        if self.indexes.len() <= col {
            self.indexes.resize_with(col + 1, || None);
        }
        if self.indexes[col].is_some() {
            return;
        }
        let mut map: HashMap<Sym, Vec<u32>> = HashMap::new();
        for (row_id, t) in self.rows.iter().enumerate() {
            if let Some(&s) = t.get(col) {
                // Row ids already passed the capacity guard on insert,
                // so this re-derivation cannot overflow.
                map.entry(s).or_default().push(row_id as u32);
            }
        }
        self.indexes[col] = Some(map);
    }

    /// Probe the column index: ids of the rows matching `s` at `col`.
    /// `None` when no index was built for that column (caller falls
    /// back to a scan).
    pub fn probe(&self, col: usize, s: Sym) -> Option<&[u32]> {
        let map = self.indexes.get(col)?.as_ref()?;
        Some(map.get(&s).map_or(&[][..], Vec::as_slice))
    }

    /// The row with the given id.
    pub fn row(&self, id: u32) -> &SymTuple {
        &self.rows[id as usize]
    }

    /// Seal the unsealed tail of the insertion log into a new sorted
    /// batch, then compact size-tiered: while the newest batch is at
    /// least half its predecessor's size, merge the two. Sealing never
    /// touches `rows`, so iteration order is untouched; it must run on
    /// the mutating thread (the data-parallel driver shares `&Relation`
    /// read-only).
    pub fn ensure_sorted(&mut self) {
        if self.sorted_end == self.rows.len() {
            return;
        }
        // Invariant: sealing copies rows into batches and never moves,
        // drops or reorders the insertion log, and never touches the
        // delta watermark — a `delta_rows()` slice handed out between
        // `mark_deltas` and the delta round must mean the same rows
        // after sealing (the fixpoint loop re-seals *between* the
        // watermark move and the delta round).
        let (rows_before, delta_before) = (self.rows.len(), self.delta_start);
        let tail = &self.rows[self.sorted_end..];
        let mut order: Vec<u32> = (0..tail.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| tail[a as usize].cmp(&tail[b as usize]));
        let data_hint = tail.iter().map(Vec::len).sum();
        let base = self.sorted_end as u32;
        self.batches.push(SortedBatch::from_sorted_rows(
            order
                .iter()
                .map(|&i| (base + i, tail[i as usize].as_slice())),
            data_hint,
        ));
        self.sorted_end = self.rows.len();
        while self.batches.len() >= 2 {
            let n = self.batches.len();
            if self.batches[n - 2].rows() >= 2 * self.batches[n - 1].rows() {
                break;
            }
            let top = self.batches.pop().expect("two batches");
            let below = self.batches.pop().expect("two batches");
            self.batches.push(SortedBatch::merged(&below, &top));
        }
        debug_assert_eq!(
            self.rows.len(),
            rows_before,
            "sealing must not grow or shrink the insertion log"
        );
        debug_assert_eq!(
            self.delta_start, delta_before,
            "sealing must not move the delta watermark"
        );
    }

    /// Whether the sorted batches cover the whole insertion log (no
    /// unsealed tail).
    pub fn is_sealed(&self) -> bool {
        self.sorted_end == self.rows.len()
    }

    /// Merge-probe: lazily enumerate every live row whose leading
    /// symbol is `s`, batch by batch (binary search to the start of the
    /// contiguous leading-symbol group within each sealed batch), then
    /// a linear scan of the unsealed tail. Correct whether or not the
    /// relation is sealed; fast when it is. Tombstones are merged at
    /// probe time: when any row is dead, each candidate's id is checked
    /// against the support counts (one O(1) branch per candidate).
    pub fn probe_sorted_iter(&self, s: Sym) -> impl Iterator<Item = &[Sym]> + '_ {
        let any_dead = self.dead > 0;
        self.batches
            .iter()
            .flat_map(move |b| {
                (b.lower_bound(s)..b.rows())
                    .map(move |i| (b.ids[i], b.row(i)))
                    .take_while(move |(_, row)| row.first().copied() == Some(s))
                    .filter(move |&(id, _)| !any_dead || self.counts[id as usize] > 0)
                    .map(|(_, row)| row)
            })
            .chain(
                self.rows[self.sorted_end..]
                    .iter()
                    .enumerate()
                    .filter(move |(i, row)| {
                        (!any_dead || self.counts[self.sorted_end + *i] > 0)
                            && row.first().copied() == Some(s)
                    })
                    .map(|(_, row)| row.as_slice()),
            )
    }

    /// As [`Relation::probe_sorted_iter`], calling `f` per matching row
    /// and returning the match count.
    pub fn probe_sorted(&self, s: Sym, mut f: impl FnMut(&[Sym])) -> usize {
        let mut hits = 0;
        for row in self.probe_sorted_iter(s) {
            hits += 1;
            f(row);
        }
        hits
    }

    /// The sealed batches as row slices, newest last — introspection for
    /// the differential tests and the `--dump-plan` debug surface.
    pub fn sorted_batches(&self) -> Vec<Vec<&[Sym]>> {
        self.batches
            .iter()
            .map(|b| (0..b.rows()).map(|i| b.row(i)).collect())
            .collect()
    }

    /// Remove all rows, keeping allocations (row vector, membership set
    /// and index maps stay warm for reuse). Sorted batches are dropped —
    /// they are immutable snapshots of rows that no longer exist.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.seen.clear();
        self.counts.clear();
        self.dead = 0;
        self.retracted_since_mark.clear();
        self.delta_start = 0;
        self.batches.clear();
        self.sorted_end = 0;
        for index in self.indexes.iter_mut().flatten() {
            index.clear();
        }
    }

    /// Physically remove tombstoned rows: rebuild the insertion log,
    /// membership map, built indexes and support counts over the live
    /// rows only. Sealed batches are dropped (immutable snapshots of a
    /// log that no longer exists) and the delta watermark is remapped
    /// to the number of live rows that preceded it, so "past the
    /// watermark" keeps meaning "not yet seen by the previous
    /// `mark_delta` reader". A no-op (and allocation-free) when no row
    /// is dead. Returns the number of rows removed.
    ///
    /// Must not run between a `mark_delta` and a `delta_rows()`
    /// consumer — compaction moves rows. The update driver compacts
    /// only at update-batch boundaries, so the fixpoint engines always
    /// run over compacted relations.
    pub fn compact(&mut self) -> usize {
        if self.dead == 0 {
            return 0;
        }
        let removed = self.dead;
        let old_rows = std::mem::take(&mut self.rows);
        let old_counts = std::mem::take(&mut self.counts);
        let live_before_mark = old_counts[..self.delta_start.min(old_counts.len())]
            .iter()
            .filter(|&&c| c > 0)
            .count();
        self.seen.clear();
        self.batches.clear();
        self.sorted_end = 0;
        self.dead = 0;
        self.retracted_since_mark.clear();
        for index in self.indexes.iter_mut().flatten() {
            index.clear();
        }
        self.rows.reserve(old_rows.len() - removed);
        for (row, c) in old_rows.into_iter().zip(old_counts) {
            if c == 0 {
                continue;
            }
            let id = checked_id(self.rows.len(), self.row_cap, "row");
            for (col, index) in self.indexes.iter_mut().enumerate() {
                if let (Some(map), Some(&s)) = (index.as_mut(), row.get(col)) {
                    map.entry(s).or_default().push(id);
                }
            }
            self.seen.insert(row.clone(), id);
            self.rows.push(row);
            self.counts.push(c);
        }
        self.delta_start = live_before_mark;
        removed
    }
}

/// A store of relations keyed by [`RelId`], with an O(1) fact counter.
#[derive(Debug, Clone, Default)]
pub struct Storage {
    rels: Vec<Relation>,
    count: usize,
}

impl Storage {
    /// An empty store.
    pub fn new() -> Self {
        Storage::default()
    }

    /// The relation, if any rows or indexes were ever recorded for it.
    pub fn relation(&self, r: RelId) -> Option<&Relation> {
        self.rels.get(r.0 as usize)
    }

    /// The relation, created empty on demand.
    pub fn relation_mut(&mut self, r: RelId) -> &mut Relation {
        let i = r.0 as usize;
        if self.rels.len() <= i {
            self.rels.resize_with(i + 1, Relation::default);
        }
        &mut self.rels[i]
    }

    /// Insert a row; returns `true` when new.
    pub fn insert(&mut self, r: RelId, t: SymTuple) -> bool {
        let new = self.relation_mut(r).insert(t);
        if new {
            self.count += 1;
        }
        new
    }

    /// Bulk-insert rows into one relation — the merge edge of the
    /// data-parallel fixpoint. Returns `(new_rows, bytes_moved)`,
    /// where bytes count only the tuples that were actually new; the
    /// relation is resolved once for the whole batch instead of per
    /// row.
    pub fn insert_batch<I>(&mut self, r: RelId, rows: I) -> (usize, usize)
    where
        I: IntoIterator<Item = SymTuple>,
    {
        let rel = self.relation_mut(r);
        let mut added = 0;
        let mut bytes = 0;
        for row in rows {
            let row_bytes = row.len() * std::mem::size_of::<Sym>();
            if rel.insert(row) {
                added += 1;
                bytes += row_bytes;
            }
        }
        self.count += added;
        (added, bytes)
    }

    /// Retract a row (tombstone it; see [`Relation::retract`]); returns
    /// `true` when the row was present and live.
    pub fn retract(&mut self, r: RelId, t: &[Sym]) -> bool {
        let hit = self
            .rels
            .get_mut(r.0 as usize)
            .is_some_and(|rel| rel.retract(t));
        if hit {
            self.count -= 1;
        }
        hit
    }

    /// Whether any relation holds tombstoned (retracted, uncompacted)
    /// rows.
    pub fn any_dead(&self) -> bool {
        self.rels.iter().any(|r| r.dead_rows() > 0)
    }

    /// Physically remove every tombstone (see [`Relation::compact`]).
    /// The update driver calls this once per update batch, after
    /// retraction propagation, so the fixpoint engines always run over
    /// compacted relations. Returns the number of rows removed.
    pub fn compact_retractions(&mut self) -> usize {
        self.rels.iter_mut().map(Relation::compact).sum()
    }

    /// Membership test.
    pub fn contains(&self, r: RelId, t: &[Sym]) -> bool {
        self.relation(r).is_some_and(|rel| rel.contains(t))
    }

    /// Total number of facts — O(1), maintained on insert.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the store holds no facts — O(1).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The ids of all relations ever touched.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.rels.len() as u32).map(RelId)
    }

    /// Move every relation's delta watermark to its current end.
    pub fn mark_deltas(&mut self) {
        for rel in &mut self.rels {
            rel.mark_delta();
        }
    }

    /// Whether any relation has rows past its delta watermark.
    pub fn any_delta(&self) -> bool {
        self.rels.iter().any(|r| !r.delta_rows().is_empty())
    }

    /// Whether two stores (over the *same* symbol table) hold the same
    /// facts, ignoring insertion order.
    pub fn same_facts(&self, other: &Storage) -> bool {
        if self.count != other.count {
            return false;
        }
        let max = self.rels.len().max(other.rels.len());
        for i in 0..max {
            let a_len = self.rels.get(i).map_or(0, Relation::len);
            let b_len = other.rels.get(i).map_or(0, Relation::len);
            if a_len != b_len {
                return false;
            }
            if a_len == 0 {
                continue;
            }
            if !self.rels[i].live_rows().all(|t| other.rels[i].contains(t)) {
                return false;
            }
        }
        true
    }

    /// Remove all facts, keeping allocations warm (see
    /// [`Relation::clear`]).
    pub fn clear(&mut self) {
        for rel in &mut self.rels {
            rel.clear();
        }
        self.count = 0;
    }
}

/// The data-parallel semi-naive driver shares `&Storage` across scoped
/// worker threads; this pins the `Send + Sync` guarantee at compile
/// time so a later addition of interior mutability cannot silently
/// introduce data races.
const _: () = {
    const fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<Storage>();
    assert_shareable::<Relation>();
};

/// Engine-level counters for one evaluation run, threaded from the
/// innermost join loop up to benchmark and experiment reports.
///
/// Extends the former `FixpointStats` (iterations / derivations / new
/// facts) with index and data-movement counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalMetrics {
    /// Number of fixpoint iterations until stability.
    pub iterations: usize,
    /// Total number of (not necessarily new) facts derived.
    pub derivations: usize,
    /// Number of new facts added to the store.
    pub new_facts: usize,
    /// Number of hash-index probes issued by the join loop.
    pub index_probes: usize,
    /// Total number of candidate rows returned by index probes.
    pub index_hits: usize,
    /// Number of sorted-batch merge probes issued by the join loop.
    pub merge_probes: usize,
    /// Total number of candidate rows returned by merge probes.
    pub merge_hits: usize,
    /// Bytes of tuple data moved into storage by successful inserts.
    pub bytes_moved: usize,
}

impl EvalMetrics {
    /// Accumulate another run's counters into this one.
    pub fn merge(&mut self, other: &EvalMetrics) {
        self.iterations += other.iterations;
        self.derivations += other.derivations;
        self.new_facts += other.new_facts;
        self.index_probes += other.index_probes;
        self.index_hits += other.index_hits;
        self.merge_probes += other.merge_probes;
        self.merge_hits += other.merge_hits;
        self.bytes_moved += other.bytes_moved;
    }
}

/// Intern an [`Instance`] into a store (the loading edge of the
/// substrate).
pub fn load_instance(i: &Instance, symbols: &SharedSymbols, storage: &mut Storage) {
    let mut table = symbols.write();
    for name in i.relation_names() {
        let r = table.rel(name);
        for t in i.tuples(name) {
            let row: SymTuple = t.iter().map(|v| table.sym(v)).collect();
            storage.insert(r, row);
        }
    }
}

/// Read a store back out as a deterministic [`Instance`] (the output
/// edge).
pub fn store_to_instance(storage: &Storage, symbols: &SharedSymbols) -> Instance {
    let table = symbols.read();
    let mut out = Instance::new();
    for r in storage.rel_ids() {
        let Some(relation) = storage.relation(r) else {
            continue;
        };
        if relation.is_empty() {
            continue;
        }
        let name = table.rel_name(r);
        for row in relation.live_rows() {
            out.insert_tuple(name, row.iter().map(|&s| table.value(s).clone()).collect());
        }
    }
    out
}

/// Read only the relations of `schema` back out (name and arity both
/// matching, as in [`Instance::restrict`]) — the "evaluate, then restrict
/// to the output schema" edge without uninterning rows that are
/// immediately dropped again.
pub fn store_to_instance_restricted(
    storage: &Storage,
    symbols: &SharedSymbols,
    schema: &Schema,
) -> Instance {
    let table = symbols.read();
    let mut out = Instance::new();
    for r in storage.rel_ids() {
        let Some(relation) = storage.relation(r) else {
            continue;
        };
        if relation.is_empty() {
            continue;
        }
        let name = table.rel_name(r);
        let Some(arity) = schema.arity(name) else {
            continue;
        };
        for row in relation.live_rows() {
            if row.len() != arity {
                continue;
            }
            out.insert_tuple(name, row.iter().map(|&s| table.value(s).clone()).collect());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::fact;
    use crate::value::v;

    fn syms(table: &mut SymbolTable, vals: &[i64]) -> SymTuple {
        vals.iter().map(|&k| table.sym(&v(k))).collect()
    }

    #[test]
    fn interning_is_stable_and_bijective() {
        let mut t = SymbolTable::new();
        let e1 = t.rel("E");
        let f = t.rel("F");
        assert_eq!(t.rel("E"), e1);
        assert_ne!(e1, f);
        assert_eq!(t.rel_name(e1).as_ref(), "E");
        let a = t.sym(&v(7));
        let b = t.sym(&v(8));
        assert_eq!(t.sym(&v(7)), a);
        assert_ne!(a, b);
        assert_eq!(t.value(b), &v(8));
        assert_eq!(t.lookup_sym(&v(9)), None);
        assert_eq!(t.lookup_rel("G"), None);
        assert_eq!(t.rel_count(), 2);
        assert_eq!(t.sym_count(), 2);
    }

    #[test]
    fn relation_insert_dedups_and_orders() {
        let mut t = SymbolTable::new();
        let mut r = Relation::default();
        assert!(r.insert(syms(&mut t, &[1, 2])));
        assert!(r.insert(syms(&mut t, &[2, 3])));
        assert!(!r.insert(syms(&mut t, &[1, 2])));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&syms(&mut t, &[2, 3])));
        assert_eq!(r.rows()[0], syms(&mut t, &[1, 2]));
    }

    #[test]
    fn indexes_maintained_on_insert() {
        let mut t = SymbolTable::new();
        let mut r = Relation::default();
        r.insert(syms(&mut t, &[1, 2]));
        r.ensure_index(0);
        // Existing rows are indexed...
        let s1 = t.sym(&v(1));
        assert_eq!(r.probe(0, s1), Some(&[0u32][..]));
        // ...and later inserts keep the index current without a rebuild.
        r.insert(syms(&mut t, &[1, 3]));
        r.insert(syms(&mut t, &[4, 5]));
        assert_eq!(r.probe(0, s1), Some(&[0u32, 1][..]));
        let s4 = t.sym(&v(4));
        assert_eq!(r.probe(0, s4), Some(&[2u32][..]));
        // Unindexed column reports no index.
        assert_eq!(r.probe(1, s1), None);
        // Probing a missing key hits the empty slice, not None.
        let s9 = t.sym(&v(9));
        assert_eq!(r.probe(0, s9), Some(&[][..]));
    }

    #[test]
    fn delta_watermarks() {
        let mut t = SymbolTable::new();
        let mut st = Storage::new();
        let e = t.rel("E");
        st.insert(e, syms(&mut t, &[1, 2]));
        st.mark_deltas();
        assert!(!st.any_delta());
        st.insert(e, syms(&mut t, &[2, 3]));
        st.insert(e, syms(&mut t, &[3, 4]));
        assert!(st.any_delta());
        let rel = st.relation(e).unwrap();
        assert_eq!(rel.delta_rows().len(), 2);
        assert_eq!(rel.rows().len(), 3);
        st.mark_deltas();
        assert!(st.relation(e).unwrap().delta_rows().is_empty());
    }

    #[test]
    fn storage_len_is_running_counter() {
        let mut t = SymbolTable::new();
        let mut st = Storage::new();
        assert!(st.is_empty());
        let e = t.rel("E");
        let f = t.rel("F");
        st.insert(e, syms(&mut t, &[1, 2]));
        st.insert(e, syms(&mut t, &[1, 2])); // duplicate
        st.insert(f, syms(&mut t, &[7]));
        assert_eq!(st.len(), 2);
        assert!(!st.is_empty());
        st.clear();
        assert!(st.is_empty());
        assert_eq!(st.len(), 0);
    }

    #[test]
    fn clear_keeps_indexes_usable() {
        let mut t = SymbolTable::new();
        let mut st = Storage::new();
        let e = t.rel("E");
        st.relation_mut(e).ensure_index(0);
        st.insert(e, syms(&mut t, &[1, 2]));
        st.clear();
        st.insert(e, syms(&mut t, &[3, 4]));
        let s3 = t.sym(&v(3));
        assert_eq!(st.relation(e).unwrap().probe(0, s3), Some(&[0u32][..]));
        let s1 = t.sym(&v(1));
        assert_eq!(st.relation(e).unwrap().probe(0, s1), Some(&[][..]));
    }

    #[test]
    #[should_panic(expected = "interning capacity exhausted")]
    fn value_interning_capacity_guard_panics_instead_of_wrapping() {
        let mut t = SymbolTable::with_id_capacity(3);
        for k in 0..4 {
            t.sym(&v(k)); // the 4th distinct value must trip the guard
        }
    }

    #[test]
    #[should_panic(expected = "interning capacity exhausted")]
    fn relation_interning_capacity_guard_panics_instead_of_wrapping() {
        let mut t = SymbolTable::with_id_capacity(2);
        t.rel("A");
        t.rel("B");
        t.rel("C");
    }

    #[test]
    fn interning_capacity_guard_only_fires_for_fresh_ids() {
        let mut t = SymbolTable::with_id_capacity(2);
        let a = t.sym(&v(1));
        t.sym(&v(2));
        // Re-interning existing values allocates no id: no panic.
        assert_eq!(t.sym(&v(1)), a);
        assert_eq!(t.sym_count(), 2);
    }

    #[test]
    #[should_panic(expected = "interning capacity exhausted")]
    fn row_id_capacity_guard_panics_instead_of_wrapping() {
        let mut t = SymbolTable::new();
        let mut r = Relation::with_row_capacity(2);
        assert!(r.insert(syms(&mut t, &[1])));
        assert!(r.insert(syms(&mut t, &[2])));
        assert!(!r.insert(syms(&mut t, &[1]))); // duplicate: no id, no panic
        r.insert(syms(&mut t, &[3])); // 3rd distinct row must trip the guard
    }

    #[test]
    fn insert_batch_counts_new_rows_and_bytes() {
        let mut t = SymbolTable::new();
        let mut st = Storage::new();
        let e = t.rel("E");
        st.insert(e, syms(&mut t, &[1, 2]));
        let batch = vec![
            syms(&mut t, &[1, 2]), // duplicate of the existing row
            syms(&mut t, &[2, 3]),
            syms(&mut t, &[3, 4]),
            syms(&mut t, &[2, 3]), // duplicate within the batch
        ];
        let (added, bytes) = st.insert_batch(e, batch);
        assert_eq!(added, 2);
        assert_eq!(bytes, 2 * 2 * std::mem::size_of::<Sym>());
        assert_eq!(st.len(), 3);
        // Insertion order within the batch is preserved.
        let rows = st.relation(e).unwrap().rows();
        assert_eq!(rows[1], syms(&mut t, &[2, 3]));
        assert_eq!(rows[2], syms(&mut t, &[3, 4]));
    }

    #[test]
    fn ensure_sorted_seals_and_probe_sorted_finds_matches() {
        let mut t = SymbolTable::new();
        let mut r = Relation::default();
        // Intern in a scrambled order so Sym order != insertion order.
        for pair in [[3, 1], [1, 2], [2, 9], [1, 1], [3, 0]] {
            r.insert(syms(&mut t, &pair));
        }
        assert!(!r.is_sealed());
        r.ensure_sorted();
        assert!(r.is_sealed());
        // Insertion order is untouched by sealing.
        assert_eq!(r.rows()[0], syms(&mut t, &[3, 1]));
        // Every batch is sorted and together they hold all rows.
        let batches = r.sorted_batches();
        let total: usize = batches.iter().map(Vec::len).sum();
        assert_eq!(total, r.len());
        for batch in &batches {
            assert!(batch.windows(2).all(|w| w[0] <= w[1]), "unsorted batch");
        }
        // probe_sorted visits exactly the rows with the probed head.
        let s1 = t.sym(&v(1));
        let mut found = Vec::new();
        let hits = r.probe_sorted(s1, |row| found.push(row.to_vec()));
        assert_eq!(hits, 2);
        assert_eq!(found, vec![syms(&mut t, &[1, 1]), syms(&mut t, &[1, 2])]);
        // A missing head probes to nothing.
        let s7 = t.sym(&v(7));
        assert_eq!(r.probe_sorted(s7, |_| panic!("no match expected")), 0);
    }

    #[test]
    fn probe_sorted_scans_the_unsealed_tail() {
        let mut t = SymbolTable::new();
        let mut r = Relation::default();
        r.insert(syms(&mut t, &[1, 2]));
        r.ensure_sorted();
        r.insert(syms(&mut t, &[1, 3]));
        // Tail row not yet sealed: still found.
        let s1 = t.sym(&v(1));
        let mut found = Vec::new();
        r.probe_sorted(s1, |row| found.push(row.to_vec()));
        assert_eq!(found.len(), 2);
        r.ensure_sorted();
        assert!(r.is_sealed());
        assert_eq!(r.probe_sorted(s1, |_| ()), 2);
    }

    #[test]
    fn compaction_keeps_batch_count_logarithmic() {
        let mut t = SymbolTable::new();
        let mut r = Relation::default();
        for k in 0..256 {
            r.insert(syms(&mut t, &[k % 16, k]));
            r.ensure_sorted(); // seal after every insert: worst case
        }
        let batches = r.sorted_batches();
        assert!(
            batches.len() <= 10,
            "size-tiered compaction failed: {} batches for 256 rows",
            batches.len()
        );
        let total: usize = batches.iter().map(Vec::len).sum();
        assert_eq!(total, 256);
        // All rows for one head, across all batches.
        let s3 = t.sym(&v(3));
        assert_eq!(r.probe_sorted(s3, |_| ()), 16);
    }

    #[test]
    fn clear_drops_sorted_batches() {
        let mut t = SymbolTable::new();
        let mut r = Relation::default();
        r.insert(syms(&mut t, &[1, 2]));
        r.ensure_sorted();
        r.clear();
        assert!(r.sorted_batches().is_empty());
        assert!(r.is_sealed(), "empty relation is trivially sealed");
        r.insert(syms(&mut t, &[1, 9]));
        let s1 = t.sym(&v(1));
        assert_eq!(r.probe_sorted(s1, |row| assert_eq!(row.len(), 2)), 1);
    }

    #[test]
    fn nullary_rows_sort_before_keyed_rows() {
        let mut t = SymbolTable::new();
        let mut r = Relation::default();
        r.insert(syms(&mut t, &[5]));
        r.insert(Vec::new()); // nullary row
        r.ensure_sorted();
        let s5 = t.sym(&v(5));
        let mut found = Vec::new();
        r.probe_sorted(s5, |row| found.push(row.to_vec()));
        assert_eq!(found, vec![syms(&mut t, &[5])]);
    }

    #[test]
    fn retract_tombstones_and_reinsert_revives_in_place() {
        let mut t = SymbolTable::new();
        let mut r = Relation::default();
        r.insert(syms(&mut t, &[1, 2]));
        r.insert(syms(&mut t, &[2, 3]));
        r.ensure_index(0);
        assert!(r.retract(&syms(&mut t, &[1, 2])));
        assert!(!r.retract(&syms(&mut t, &[1, 2])), "already dead");
        assert!(!r.retract(&syms(&mut t, &[9, 9])), "never present");
        assert_eq!(r.len(), 1);
        assert_eq!(r.dead_rows(), 1);
        assert!(!r.contains(&syms(&mut t, &[1, 2])));
        assert_eq!(r.support(&syms(&mut t, &[1, 2])), 0);
        assert!(r.contains(&syms(&mut t, &[2, 3])));
        let live: Vec<_> = r.live_rows().cloned().collect();
        assert_eq!(live, vec![syms(&mut t, &[2, 3])]);
        // Re-insert revives the same row id: no new row, no index work.
        assert!(r.insert(syms(&mut t, &[1, 2])));
        assert_eq!(r.rows().len(), 2, "no duplicate row appended");
        assert_eq!(r.dead_rows(), 0);
        assert!(r.contains(&syms(&mut t, &[1, 2])));
        let s1 = t.sym(&v(1));
        assert_eq!(r.probe(0, s1), Some(&[0u32][..]), "index id unchanged");
    }

    #[test]
    fn signed_deltas_cancel_within_a_window() {
        let mut t = SymbolTable::new();
        let mut r = Relation::default();
        r.insert(syms(&mut t, &[1])); // survives
        r.insert(syms(&mut t, &[2])); // retracted this window
        r.insert(syms(&mut t, &[3])); // retracted then revived: no-op
        r.mark_delta();
        r.insert(syms(&mut t, &[4])); // added
        r.insert(syms(&mut t, &[5])); // added then retracted: no-op
        r.retract(&syms(&mut t, &[5]));
        r.retract(&syms(&mut t, &[2]));
        r.retract(&syms(&mut t, &[2])); // duplicate retract: ignored
        r.retract(&syms(&mut t, &[3]));
        r.insert(syms(&mut t, &[3])); // revival cancels the retraction
        let added: Vec<_> = r.added_rows().cloned().collect();
        assert_eq!(added, vec![syms(&mut t, &[4])]);
        let removed: Vec<_> = r.removed_rows().cloned().collect();
        assert_eq!(removed, vec![syms(&mut t, &[2])]);
        // The next mark clears the retraction log.
        r.mark_delta();
        assert_eq!(r.added_rows().count(), 0);
        assert_eq!(r.removed_rows().count(), 0);
    }

    #[test]
    fn probe_sorted_filters_tombstones_in_sealed_batches() {
        let mut t = SymbolTable::new();
        let mut r = Relation::default();
        for pair in [[1, 2], [1, 3], [2, 9]] {
            r.insert(syms(&mut t, &pair));
        }
        r.ensure_sorted();
        r.insert(syms(&mut t, &[1, 4])); // unsealed tail
        let s1 = t.sym(&v(1));
        assert_eq!(r.probe_sorted(s1, |_| ()), 3);
        // Kill one sealed and one tail row: both filtered at probe time
        // without touching the immutable batch.
        r.retract(&syms(&mut t, &[1, 3]));
        r.retract(&syms(&mut t, &[1, 4]));
        let mut found = Vec::new();
        r.probe_sorted(s1, |row| found.push(row.to_vec()));
        assert_eq!(found, vec![syms(&mut t, &[1, 2])]);
        // Revival restores the row with no duplicate.
        r.insert(syms(&mut t, &[1, 3]));
        assert_eq!(r.probe_sorted(s1, |_| ()), 2);
    }

    #[test]
    fn compact_rebuilds_live_rows_indexes_and_watermark() {
        let mut t = SymbolTable::new();
        let mut st = Storage::new();
        let e = t.rel("E");
        st.relation_mut(e).ensure_index(1);
        st.insert(e, syms(&mut t, &[1, 2]));
        st.insert(e, syms(&mut t, &[2, 2]));
        st.insert(e, syms(&mut t, &[3, 7]));
        st.relation_mut(e).ensure_sorted();
        st.retract(e, &syms(&mut t, &[1, 2]));
        st.mark_deltas();
        st.insert(e, syms(&mut t, &[4, 2]));
        assert_eq!(st.len(), 3);
        assert!(st.any_dead());
        let removed = st.compact_retractions();
        assert_eq!(removed, 1);
        assert!(!st.any_dead());
        assert_eq!(st.len(), 3);
        let rel = st.relation(e).unwrap();
        assert_eq!(rel.rows().len(), 3, "dead row physically gone");
        // Watermark remapped: [2,2] and [3,7] precede it, [4,2] is delta.
        assert_eq!(rel.delta_rows(), &[syms(&mut t, &[4, 2])][..]);
        // Index rebuilt over live ids only.
        let s2 = t.sym(&v(2));
        let ids = rel.probe(1, s2).unwrap().to_vec();
        let rows: Vec<_> = ids.iter().map(|&id| rel.row(id).clone()).collect();
        assert_eq!(rows, vec![syms(&mut t, &[2, 2]), syms(&mut t, &[4, 2])]);
        // Batches dropped; merge probes still correct via the tail.
        assert_eq!(rel.sorted_batches().len(), 0);
        let s3 = t.sym(&v(3));
        assert_eq!(rel.probe_sorted(s3, |_| ()), 1);
        // Compacting again is a no-op.
        assert_eq!(st.compact_retractions(), 0);
    }

    #[test]
    fn sealing_with_pending_delta_rows_leaves_the_delta_intact() {
        // Satellite: `ensure_sorted` runs between `mark_deltas` and the
        // delta round (the fixpoint re-seals merge-joined relations
        // right before each round) — sealing must not move the rows a
        // `delta_rows()` caller still expects.
        let mut t = SymbolTable::new();
        let mut r = Relation::default();
        r.insert(syms(&mut t, &[5, 1]));
        r.ensure_sorted();
        r.mark_delta();
        r.insert(syms(&mut t, &[4, 2]));
        r.insert(syms(&mut t, &[3, 3]));
        let before: Vec<_> = r.delta_rows().to_vec();
        assert_eq!(before.len(), 2);
        r.ensure_sorted();
        assert!(r.is_sealed());
        // The delta region is untouched: same rows, same order, same
        // watermark.
        assert_eq!(r.delta_rows(), &before[..]);
        assert_eq!(r.delta_start(), 1);
        // And the sealed batches cover the delta rows for merge probes.
        let s4 = t.sym(&v(4));
        assert_eq!(r.probe_sorted(s4, |_| ()), 1);
    }

    #[test]
    fn retract_keeps_storage_counter_and_same_facts_honest() {
        let mut t = SymbolTable::new();
        let e = t.rel("E");
        let mut a = Storage::new();
        let mut b = Storage::new();
        a.insert(e, syms(&mut t, &[1, 2]));
        a.insert(e, syms(&mut t, &[2, 3]));
        a.retract(e, &syms(&mut t, &[2, 3]));
        assert_eq!(a.len(), 1);
        // A store that never held the retracted fact is equal.
        b.insert(e, syms(&mut t, &[1, 2]));
        assert!(a.same_facts(&b));
        assert!(b.same_facts(&a));
        // Tombstones are invisible at the Instance edge.
        let symbols = SharedSymbols::new();
        let mut st = Storage::new();
        let i = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3])]);
        load_instance(&i, &symbols, &mut st);
        let er = symbols.read().lookup_rel("E").unwrap();
        let row: SymTuple = {
            let table = symbols.read();
            [v(2), v(3)]
                .iter()
                .map(|x| table.lookup_sym(x).unwrap())
                .collect()
        };
        st.retract(er, &row);
        let out = store_to_instance(&st, &symbols);
        assert_eq!(out, Instance::from_facts([fact("E", [1, 2])]));
    }

    #[test]
    fn same_facts_ignores_insertion_order() {
        let mut t = SymbolTable::new();
        let e = t.rel("E");
        let mut a = Storage::new();
        let mut b = Storage::new();
        a.insert(e, syms(&mut t, &[1, 2]));
        a.insert(e, syms(&mut t, &[2, 3]));
        b.insert(e, syms(&mut t, &[2, 3]));
        assert!(!a.same_facts(&b));
        b.insert(e, syms(&mut t, &[1, 2]));
        assert!(a.same_facts(&b));
        assert!(b.same_facts(&a));
    }

    #[test]
    fn instance_round_trip() {
        let symbols = SharedSymbols::new();
        let mut st = Storage::new();
        let i = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3]), fact("V", [9])]);
        load_instance(&i, &symbols, &mut st);
        assert_eq!(st.len(), 3);
        assert_eq!(store_to_instance(&st, &symbols), i);
    }

    #[test]
    fn shared_symbols_are_shared() {
        let a = SharedSymbols::new();
        let b = a.clone();
        let c = SharedSymbols::new();
        assert!(a.same_table(&b));
        assert!(!a.same_table(&c));
        let e = a.write().rel("E");
        assert_eq!(b.read().lookup_rel("E"), Some(e));
    }

    #[test]
    fn metrics_merge_sums_everything() {
        let mut m = EvalMetrics {
            iterations: 1,
            derivations: 10,
            new_facts: 5,
            index_probes: 7,
            index_hits: 6,
            merge_probes: 3,
            merge_hits: 2,
            bytes_moved: 40,
        };
        m.merge(&EvalMetrics {
            iterations: 2,
            derivations: 1,
            new_facts: 1,
            index_probes: 1,
            index_hits: 1,
            merge_probes: 4,
            merge_hits: 5,
            bytes_moved: 8,
        });
        assert_eq!(m.iterations, 3);
        assert_eq!(m.derivations, 11);
        assert_eq!(m.new_facts, 6);
        assert_eq!(m.index_probes, 8);
        assert_eq!(m.index_hits, 7);
        assert_eq!(m.merge_probes, 7);
        assert_eq!(m.merge_hits, 7);
        assert_eq!(m.bytes_moved, 48);
    }

    #[test]
    fn metrics_merge_is_associative_and_commutative_with_identity() {
        let samples = [
            EvalMetrics {
                iterations: 1,
                derivations: 10,
                new_facts: 5,
                index_probes: 7,
                index_hits: 6,
                merge_probes: 1,
                merge_hits: 4,
                bytes_moved: 40,
            },
            EvalMetrics {
                iterations: 3,
                derivations: 2,
                new_facts: 0,
                index_probes: 11,
                index_hits: 9,
                merge_probes: 0,
                merge_hits: 0,
                bytes_moved: 16,
            },
            EvalMetrics {
                iterations: 0,
                derivations: 100,
                new_facts: 99,
                index_probes: 0,
                index_hits: 0,
                merge_probes: 13,
                merge_hits: 21,
                bytes_moved: 792,
            },
        ];
        let [a, b, c] = samples;
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);
        // a ⊕ b == b ⊕ a.
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        // The default is the identity element.
        for s in &samples {
            let mut with_id = *s;
            with_id.merge(&EvalMetrics::default());
            assert_eq!(&with_id, s);
            let mut id_with = EvalMetrics::default();
            id_with.merge(s);
            assert_eq!(&id_with, s);
        }
    }
}
