//! Move-graph (game) instances for the win-move query.
//!
//! Win-move is played on a directed graph over the relation `move(2)`: a
//! position `x` is *won* when there is a move to a position that is lost
//! for the opponent; a position with no outgoing move is lost; cycles can
//! produce *drawn* positions (undefined in the well-founded semantics).

use crate::fact::fact;
use crate::instance::Instance;

/// The relation name used by game generators.
pub const MOVE: &str = "move";

/// A move fact `move(a, b)`.
pub fn mv(a: i64, b: i64) -> crate::fact::Fact {
    fact(MOVE, [a, b])
}

/// A simple chain game `base -> base+1 -> ... -> base+n` over `move`.
/// With `n` moves, positions alternate lost/won from the sink backwards:
/// `base+n` is lost, `base+n-1` is won, etc.
pub fn chain_game(base: i64, n: usize) -> Instance {
    Instance::from_facts((0..n as i64).map(|k| mv(base + k, base + k + 1)))
}

/// A cycle game on `n` positions: every position is *drawn* (undefined in
/// the well-founded semantics) because play can continue forever.
pub fn cycle_game(base: i64, n: usize) -> Instance {
    assert!(n >= 1);
    let n = n as i64;
    Instance::from_facts((0..n).map(|k| mv(base + k, base + (k + 1) % n)))
}

/// The classic mixed game: a 2-cycle `{a, b}` with an escape `b -> c` and
/// sink `c`. Then `c` is lost, `b` is won (move to `c`), and `a` is lost?
/// No — `a`'s only move goes to the won position `b`, so `a` is lost. All
/// three positions are *determined* despite the cycle.
pub fn cycle_with_escape(base: i64) -> Instance {
    Instance::from_facts([
        mv(base, base + 1),
        mv(base + 1, base),
        mv(base + 1, base + 2),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::component_count;

    #[test]
    fn chain_game_shape() {
        let g = chain_game(0, 3);
        assert_eq!(g.len(), 3);
        assert!(g.contains(&mv(2, 3)));
        assert_eq!(g.relation_names().next().unwrap().as_ref(), "move");
    }

    #[test]
    fn cycle_game_wraps() {
        let g = cycle_game(0, 3);
        assert!(g.contains(&mv(2, 0)));
        assert_eq!(component_count(&g), 1);
    }

    #[test]
    fn escape_shape() {
        let g = cycle_with_escape(10);
        assert_eq!(g.len(), 3);
        assert!(g.contains(&mv(10, 11)));
        assert!(g.contains(&mv(11, 10)));
        assert!(g.contains(&mv(11, 12)));
    }
}
