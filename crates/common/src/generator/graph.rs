//! Deterministic graph-shaped instances over the edge relation `E(2)`.

use crate::fact::fact;
use crate::instance::Instance;
use crate::value::Value;

/// The relation name used by all graph generators.
pub const EDGE: &str = "E";

/// An edge fact `E(a, b)`.
pub fn edge(a: i64, b: i64) -> crate::fact::Fact {
    fact(EDGE, [a, b])
}

/// A directed path `base -> base+1 -> ... -> base+n` (`n` edges).
pub fn path_from(base: i64, n: usize) -> Instance {
    Instance::from_facts((0..n as i64).map(|k| edge(base + k, base + k + 1)))
}

/// A directed path `0 -> 1 -> ... -> n` (`n` edges, `n+1` vertices).
pub fn path(n: usize) -> Instance {
    path_from(0, n)
}

/// A directed cycle on `n >= 1` vertices `base..base+n`.
pub fn cycle_from(base: i64, n: usize) -> Instance {
    assert!(n >= 1, "cycle needs at least one vertex");
    let n = n as i64;
    Instance::from_facts((0..n).map(|k| edge(base + k, base + (k + 1) % n)))
}

/// A directed cycle on `n` vertices `0..n`.
pub fn cycle(n: usize) -> Instance {
    cycle_from(0, n)
}

/// A *clique* on `k` vertices `base..base+k` in the paper's undirected
/// sense: for every unordered pair `{a, b}` at least one of `E(a,b)`,
/// `E(b,a)` is present — we emit both directions so every edge-direction
/// convention sees the clique.
pub fn clique_from(base: i64, k: usize) -> Instance {
    let mut i = Instance::new();
    for a in 0..k as i64 {
        for b in 0..k as i64 {
            if a != b {
                i.insert(edge(base + a, base + b));
            }
        }
    }
    i
}

/// A bidirected clique on vertices `0..k`.
pub fn clique(k: usize) -> Instance {
    clique_from(0, k)
}

/// A *star* with `spokes` spokes: centre `base`, edges
/// `E(base, base+1) ... E(base, base+spokes)` (outgoing spokes).
pub fn star_from(base: i64, spokes: usize) -> Instance {
    Instance::from_facts((1..=spokes as i64).map(|k| edge(base, base + k)))
}

/// A star with centre `0` and the given number of spokes.
pub fn star(spokes: usize) -> Instance {
    star_from(0, spokes)
}

/// A directed triangle on `base`, `base+1`, `base+2`
/// (`E(a,b), E(b,c), E(c,a)`).
pub fn triangle_from(base: i64) -> Instance {
    Instance::from_facts([
        edge(base, base + 1),
        edge(base + 1, base + 2),
        edge(base + 2, base),
    ])
}

/// `count` pairwise domain-disjoint directed triangles starting at `base`.
pub fn disjoint_triangles(base: i64, count: usize) -> Instance {
    let mut i = Instance::new();
    for t in 0..count as i64 {
        i.extend(triangle_from(base + 3 * t).facts());
    }
    i
}

/// A 2-D grid graph with `rows x cols` vertices, edges going right and
/// down. Vertex `(r, c)` is encoded as `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Instance {
    let mut i = Instance::new();
    let (rows, cols) = (rows as i64, cols as i64);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                i.insert(edge(id, id + 1));
            }
            if r + 1 < rows {
                i.insert(edge(id, id + cols));
            }
        }
    }
    i
}

/// `count` pairwise disjoint edges starting at `base`:
/// `E(base, base+1), E(base+2, base+3), ...`.
pub fn disjoint_edges(base: i64, count: usize) -> Instance {
    Instance::from_facts((0..count as i64).map(|k| edge(base + 2 * k, base + 2 * k + 1)))
}

/// Vertices of an instance over `E`: the active domain as integers.
/// Panics on non-integer values (graph generators only emit integers).
pub fn vertices(i: &Instance) -> Vec<i64> {
    i.adom()
        .into_iter()
        .map(|v| match v {
            Value::Int(k) => k,
            other => panic!("non-integer vertex {other}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let p = path(3);
        assert_eq!(p.len(), 3);
        assert!(p.contains(&edge(0, 1)));
        assert!(p.contains(&edge(2, 3)));
        assert_eq!(vertices(&p), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cycle_wraps() {
        let c = cycle(4);
        assert_eq!(c.len(), 4);
        assert!(c.contains(&edge(3, 0)));
        let single = cycle(1);
        assert!(single.contains(&edge(0, 0)));
    }

    #[test]
    fn clique_edge_count() {
        // k*(k-1) directed edges.
        for k in 1..=5 {
            assert_eq!(clique(k).len(), k * k.saturating_sub(1));
        }
        assert!(clique(3).contains(&edge(2, 1)));
    }

    #[test]
    fn star_shape() {
        let s = star(4);
        assert_eq!(s.len(), 4);
        for k in 1..=4 {
            assert!(s.contains(&edge(0, k)));
        }
    }

    #[test]
    fn disjoint_triangles_are_disjoint() {
        let t = disjoint_triangles(0, 3);
        assert_eq!(t.len(), 9);
        assert_eq!(crate::component::component_count(&t), 3);
    }

    #[test]
    fn grid_edges() {
        let g = grid(2, 3);
        // rights: 2*(3-1)=4, downs: (2-1)*3=3.
        assert_eq!(g.len(), 7);
        assert!(g.contains(&edge(0, 1)));
        assert!(g.contains(&edge(0, 3)));
    }

    #[test]
    fn disjoint_edges_disjoint() {
        let d = disjoint_edges(10, 3);
        assert_eq!(d.len(), 3);
        assert_eq!(crate::component::component_count(&d), 3);
        assert!(d.contains(&edge(14, 15)));
    }
}
