//! Seeded random instance generators (reproducible across runs).

use crate::fact::{fact, Fact};
use crate::instance::Instance;
use crate::rng::Rng;
use crate::value::{v, Value};

/// A seeded random generator for instances. Thin wrapper over
/// [`crate::rng::Rng`] so that every experiment records a single `u64` seed.
#[derive(Debug)]
pub struct InstanceRng {
    rng: Rng,
}

impl InstanceRng {
    /// Create a generator from a seed.
    pub fn seeded(seed: u64) -> Self {
        InstanceRng {
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// G(n, p): directed graph over vertices `0..n`, each ordered pair
    /// `(a, b)` with `a != b` kept with probability `p`.
    pub fn gnp(&mut self, n: usize, p: f64) -> Instance {
        let mut i = Instance::new();
        for a in 0..n as i64 {
            for b in 0..n as i64 {
                if a != b && self.rng.gen_bool(p) {
                    i.insert(fact("E", [a, b]));
                }
            }
        }
        i
    }

    /// A directed graph over `0..n` with exactly `m` distinct non-loop
    /// edges (requires `m <= n*(n-1)`).
    pub fn gnm(&mut self, n: usize, m: usize) -> Instance {
        let n = n as i64;
        let mut pairs: Vec<(i64, i64)> = (0..n)
            .flat_map(|a| (0..n).filter_map(move |b| (a != b).then_some((a, b))))
            .collect();
        assert!(m <= pairs.len(), "requested more edges than pairs exist");
        self.rng.shuffle(&mut pairs);
        Instance::from_facts(pairs.into_iter().take(m).map(|(a, b)| fact("E", [a, b])))
    }

    /// A random move-graph for win-move games: vertices `0..n`, out-degree
    /// of each vertex uniform in `0..=max_out`, no self-loops.
    pub fn move_graph(&mut self, n: usize, max_out: usize) -> Instance {
        let mut i = Instance::new();
        let n = n as i64;
        for a in 0..n {
            let d = self.rng.gen_range(0..=max_out);
            for _ in 0..d {
                let b = self.rng.gen_range(0..n);
                if a != b {
                    i.insert(fact("move", [a, b]));
                }
            }
        }
        i
    }

    /// A random instance over an arbitrary schema: for each relation, `per`
    /// tuples with values drawn from `0..universe`.
    pub fn random_instance(
        &mut self,
        schema: &crate::schema::Schema,
        per: usize,
        universe: i64,
    ) -> Instance {
        let mut i = Instance::new();
        for (name, arity) in schema.iter() {
            for _ in 0..per {
                let tuple: Vec<Value> = (0..arity)
                    .map(|_| v(self.rng.gen_range(0..universe)))
                    .collect();
                i.insert_tuple(name, tuple);
            }
        }
        i
    }

    /// Pick `k` random facts out of an instance (without replacement).
    pub fn sample_facts(&mut self, i: &Instance, k: usize) -> Vec<Fact> {
        let mut all: Vec<Fact> = i.facts().collect();
        self.rng.shuffle(&mut all);
        all.truncate(k);
        all
    }

    /// Direct access to the underlying RNG for ad-hoc draws.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn seeded_is_reproducible() {
        let a = InstanceRng::seeded(42).gnp(10, 0.3);
        let b = InstanceRng::seeded(42).gnp(10, 0.3);
        assert_eq!(a, b);
        let c = InstanceRng::seeded(43).gnp(10, 0.3);
        assert_ne!(a, c, "different seeds should (almost surely) differ");
    }

    #[test]
    fn gnm_has_exact_edge_count() {
        let g = InstanceRng::seeded(1).gnm(8, 20);
        assert_eq!(g.len(), 20);
        // No loops.
        for f in g.facts() {
            assert_ne!(f.args()[0], f.args()[1]);
        }
    }

    #[test]
    fn gnp_bounds() {
        let empty = InstanceRng::seeded(7).gnp(6, 0.0);
        assert!(empty.is_empty());
        let full = InstanceRng::seeded(7).gnp(6, 1.0);
        assert_eq!(full.len(), 6 * 5);
    }

    #[test]
    fn move_graph_over_move_relation() {
        let g = InstanceRng::seeded(5).move_graph(10, 3);
        for f in g.facts() {
            assert_eq!(f.relation().as_ref(), "move");
            assert_ne!(f.args()[0], f.args()[1]);
        }
    }

    #[test]
    fn random_instance_obeys_schema() {
        let s = Schema::from_pairs([("R", 3), ("S", 1)]);
        let i = InstanceRng::seeded(9).random_instance(&s, 5, 4);
        for f in i.facts() {
            assert_eq!(s.arity(f.relation()), Some(f.arity()));
        }
        assert!(i.relation_len("R") <= 5);
        assert!(i.relation_len("R") >= 1);
    }

    #[test]
    fn sample_facts_subset() {
        let g = InstanceRng::seeded(3).gnm(6, 12);
        let sample = InstanceRng::seeded(4).sample_facts(&g, 5);
        assert_eq!(sample.len(), 5);
        for f in &sample {
            assert!(g.contains(f));
        }
    }
}
