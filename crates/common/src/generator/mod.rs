//! Instance generators for experiments, tests and benchmarks.
//!
//! All graph generators produce instances over the binary edge relation `E`
//! (the schema used by every separating example in the paper); game
//! generators produce instances over the binary `move` relation used by
//! win-move.

mod game;
mod graph;
mod random;

pub use game::*;
pub use graph::*;
pub use random::*;
