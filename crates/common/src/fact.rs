//! Facts: ground atoms `R(d1, ..., dk)`.

use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// An interned relation name. Cheap to clone and compare.
pub type RelName = Arc<str>;

/// Construct a relation name.
pub fn rel(name: impl AsRef<str>) -> RelName {
    Arc::from(name.as_ref())
}

/// A ground fact `R(d1, ..., dk)` with `k >= 1`.
///
/// The paper restricts attention to relations of arity at least one
/// (Section 2); [`Fact::new`] enforces this.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fact {
    relation: RelName,
    args: Vec<Value>,
}

impl Fact {
    /// Create a fact. Panics if `args` is empty (nullary facts are outside
    /// the paper's model, see Sections 2 and 7).
    pub fn new(relation: impl AsRef<str>, args: Vec<Value>) -> Self {
        assert!(
            !args.is_empty(),
            "nullary facts are not supported (paper assumes arity >= 1)"
        );
        Fact {
            relation: rel(relation),
            args,
        }
    }

    /// Create a fact from an already-interned relation name.
    pub fn from_rel(relation: RelName, args: Vec<Value>) -> Self {
        assert!(!args.is_empty(), "nullary facts are not supported");
        Fact { relation, args }
    }

    /// The relation name.
    pub fn relation(&self) -> &RelName {
        &self.relation
    }

    /// The argument tuple.
    pub fn args(&self) -> &[Value] {
        &self.args
    }

    /// The arity of the fact.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Iterate over the values occurring in this fact (`adom(f)`, with
    /// duplicates).
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.args.iter()
    }

    /// Whether any argument is an invented (Skolem) value.
    pub fn has_invented_value(&self) -> bool {
        self.args.iter().any(Value::is_invented)
    }

    /// Apply a value substitution to every argument, producing a new fact.
    pub fn map_values(&self, mut f: impl FnMut(&Value) -> Value) -> Fact {
        Fact {
            relation: self.relation.clone(),
            args: self.args.iter().map(&mut f).collect(),
        }
    }

    /// Consume the fact and return its parts.
    pub fn into_parts(self) -> (RelName, Vec<Value>) {
        (self.relation, self.args)
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// Shorthand for building a fact, used pervasively in tests:
/// `fact("E", [1, 2])`.
pub fn fact<V: Into<Value>, const N: usize>(relation: &str, args: [V; N]) -> Fact {
    Fact::new(relation, args.into_iter().map(Into::into).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::v;

    #[test]
    fn fact_accessors() {
        let f = fact("E", [1, 2]);
        assert_eq!(f.relation().as_ref(), "E");
        assert_eq!(f.args(), &[v(1), v(2)]);
        assert_eq!(f.arity(), 2);
        assert_eq!(f.to_string(), "E(1,2)");
    }

    #[test]
    #[should_panic(expected = "nullary")]
    fn nullary_facts_rejected() {
        let _ = Fact::new("P", vec![]);
    }

    #[test]
    fn facts_compare_by_relation_then_args() {
        let a = fact("E", [1, 2]);
        let b = fact("E", [1, 3]);
        let c = fact("F", [0, 0]);
        assert!(a < b);
        assert!(b < c);
        assert_eq!(a, fact("E", [1, 2]));
    }

    #[test]
    fn map_values_substitutes() {
        let f = fact("E", [1, 2]);
        let g = f.map_values(|x| match x {
            Value::Int(i) => Value::Int(i + 10),
            other => other.clone(),
        });
        assert_eq!(g, fact("E", [11, 12]));
    }

    #[test]
    fn invented_detection() {
        let f = fact("E", [1, 2]);
        assert!(!f.has_invented_value());
        let g = Fact::new("E", vec![v(1), Value::skolem("f", vec![v(2)])]);
        assert!(g.has_invented_value());
    }
}
