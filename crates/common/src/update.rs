//! Update batches: signed fact-level deltas applied to a maintained
//! evaluation.
//!
//! An [`UpdateBatch`] is the unit of mutation for incremental view
//! maintenance: a set of facts to insert and a set to delete, applied
//! atomically between evaluations. Batches are value-level (facts over
//! [`crate::value::Value`]) — interning into the storage substrate
//! happens at the evaluation edge, exactly like instance loading.

use crate::fact::Fact;
use crate::instance::Instance;

/// A signed batch of fact-level changes: insertions and deletions
/// applied together. Deleting a fact that is absent, or inserting one
/// that is present, is a no-op (set semantics); a fact appearing in
/// both sets is inserted (deletions apply first, so insert wins — the
/// batch is "delete then insert").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    /// Facts to insert.
    pub insert: Vec<Fact>,
    /// Facts to delete.
    pub delete: Vec<Fact>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// A batch that only inserts.
    pub fn inserting(facts: impl IntoIterator<Item = Fact>) -> Self {
        UpdateBatch {
            insert: facts.into_iter().collect(),
            delete: Vec::new(),
        }
    }

    /// A batch that only deletes.
    pub fn deleting(facts: impl IntoIterator<Item = Fact>) -> Self {
        UpdateBatch {
            insert: Vec::new(),
            delete: facts.into_iter().collect(),
        }
    }

    /// Add an insertion (builder style).
    #[must_use]
    pub fn with_insert(mut self, f: Fact) -> Self {
        self.insert.push(f);
        self
    }

    /// Add a deletion (builder style).
    #[must_use]
    pub fn with_delete(mut self, f: Fact) -> Self {
        self.delete.push(f);
        self
    }

    /// Whether the batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.insert.is_empty() && self.delete.is_empty()
    }

    /// Total number of signed changes.
    pub fn len(&self) -> usize {
        self.insert.len() + self.delete.len()
    }

    /// Apply the batch to a plain [`Instance`]: deletions first, then
    /// insertions — the reference semantics every incremental engine is
    /// checked against (evaluate from scratch over the updated
    /// instance).
    pub fn apply_to_instance(&self, instance: &mut Instance) {
        for f in &self.delete {
            instance.remove(f);
        }
        for f in &self.insert {
            instance.insert(f.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::fact;

    #[test]
    fn apply_deletes_then_inserts() {
        let mut i = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3])]);
        let b = UpdateBatch::deleting([fact("E", [2, 3]), fact("E", [9, 9])])
            .with_insert(fact("E", [3, 4]));
        b.apply_to_instance(&mut i);
        assert_eq!(
            i,
            Instance::from_facts([fact("E", [1, 2]), fact("E", [3, 4])])
        );
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(UpdateBatch::new().is_empty());
    }

    #[test]
    fn insert_wins_over_delete_in_one_batch() {
        let mut i = Instance::from_facts([fact("E", [1, 2])]);
        let b = UpdateBatch::deleting([fact("E", [1, 2])]).with_insert(fact("E", [1, 2]));
        b.apply_to_instance(&mut i);
        assert!(i.contains(&fact("E", [1, 2])));
    }
}
