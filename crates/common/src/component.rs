//! Components of an instance (Section 5.1, Definition 5 context).
//!
//! An instance `J` is a *component* of `I` when `J ⊆ I`, `J ≠ ∅`,
//! `adom(J) ∩ adom(I \ J) = ∅`, and `J` is minimal with this property.
//! Equivalently: group facts by the connected components of the "shares a
//! value" graph on facts. `co(I)` denotes the set of components of `I`.

use crate::instance::Instance;
use crate::value::Value;
use std::collections::BTreeMap;

/// Disjoint-set (union-find) over dense indices, with path halving.
#[derive(Debug, Clone)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Compute `co(I)`: the components of `I`, in deterministic order (by their
/// smallest fact).
///
/// Two facts belong to the same component iff they are connected through
/// shared active-domain values. Runs in near-linear time via union-find.
pub fn components(i: &Instance) -> Vec<Instance> {
    let facts: Vec<_> = i.facts().collect();
    if facts.is_empty() {
        return Vec::new();
    }
    let mut uf = UnionFind::new(facts.len());
    // Union facts that share a value: keep, per value, the first fact seen.
    let mut seen: BTreeMap<Value, usize> = BTreeMap::new();
    for (idx, f) in facts.iter().enumerate() {
        for val in f.values() {
            match seen.get(val) {
                Some(&first) => uf.union(idx, first),
                None => {
                    seen.insert(val.clone(), idx);
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Instance> = BTreeMap::new();
    for (idx, f) in facts.into_iter().enumerate() {
        groups.entry(uf.find(idx)).or_default().insert(f);
    }
    // BTreeMap keyed by root index already gives a deterministic order, but
    // root indices depend on union order; re-sort by content for stability.
    let mut out: Vec<Instance> = groups.into_values().collect();
    out.sort();
    out
}

/// Number of components of `I` without materializing them.
pub fn component_count(i: &Instance) -> usize {
    components(i).len()
}

/// Check Definition 5 part of the component contract: components partition
/// `I` and have pairwise disjoint active domains. Returns `true` when the
/// given decomposition is a valid `co(I)`. Used by property tests.
pub fn is_valid_component_decomposition(i: &Instance, parts: &[Instance]) -> bool {
    // Non-empty, union equals I, pairwise fact-disjoint and adom-disjoint.
    if parts.iter().any(Instance::is_empty) {
        return false;
    }
    let mut union = Instance::new();
    let mut total = 0usize;
    for p in parts {
        total += p.len();
        union.extend(p.facts());
    }
    if union != *i || total != i.len() {
        return false;
    }
    for (a, pa) in parts.iter().enumerate() {
        let adom_a = pa.adom();
        for pb in parts.iter().skip(a + 1) {
            if pb.adom().iter().any(|v| adom_a.contains(v)) {
                return false;
            }
        }
    }
    // Minimality: each part must itself be a single component.
    parts.iter().all(|p| components(p).len() == 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::fact;

    #[test]
    fn empty_instance_has_no_components() {
        assert!(components(&Instance::new()).is_empty());
    }

    #[test]
    fn single_fact_single_component() {
        let i = Instance::from_facts([fact("E", [1, 2])]);
        let co = components(&i);
        assert_eq!(co.len(), 1);
        assert_eq!(co[0], i);
    }

    #[test]
    fn chain_is_one_component() {
        let i = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3]), fact("E", [3, 4])]);
        assert_eq!(component_count(&i), 1);
    }

    #[test]
    fn disjoint_edges_are_separate_components() {
        let i = Instance::from_facts([fact("E", [1, 2]), fact("E", [3, 4]), fact("E", [5, 6])]);
        let co = components(&i);
        assert_eq!(co.len(), 3);
        for c in &co {
            assert_eq!(c.len(), 1);
        }
    }

    #[test]
    fn cross_relation_values_connect() {
        // E(1,2) and V(2) share value 2 -> same component; V(9) separate.
        let i = Instance::from_facts([fact("E", [1, 2]), fact("V", [2]), fact("V", [9])]);
        let co = components(&i);
        assert_eq!(co.len(), 2);
        let big = co.iter().find(|c| c.len() == 2).unwrap();
        assert!(big.contains(&fact("E", [1, 2])));
        assert!(big.contains(&fact("V", [2])));
    }

    #[test]
    fn components_satisfy_contract() {
        let i = Instance::from_facts([
            fact("E", [1, 2]),
            fact("E", [2, 3]),
            fact("E", [10, 11]),
            fact("V", [11]),
            fact("V", [42]),
        ]);
        let co = components(&i);
        assert_eq!(co.len(), 3);
        assert!(is_valid_component_decomposition(&i, &co));
    }

    #[test]
    fn invalid_decompositions_rejected() {
        let i = Instance::from_facts([fact("E", [1, 2]), fact("E", [2, 3])]);
        // Splitting a connected instance violates adom-disjointness.
        let bad = vec![
            Instance::from_facts([fact("E", [1, 2])]),
            Instance::from_facts([fact("E", [2, 3])]),
        ];
        assert!(!is_valid_component_decomposition(&i, &bad));
        // Merging two components violates minimality.
        let j = Instance::from_facts([fact("E", [1, 2]), fact("E", [5, 6])]);
        let merged = vec![j.clone()];
        assert!(!is_valid_component_decomposition(&j, &merged));
        // Correct decomposition accepted.
        assert!(is_valid_component_decomposition(&j, &components(&j)));
    }

    #[test]
    fn transitive_bridging_across_many_facts() {
        // 1-2, 4-5 separate; then 2-4 bridges them.
        let mut i = Instance::from_facts([fact("E", [1, 2]), fact("E", [4, 5])]);
        assert_eq!(component_count(&i), 2);
        i.insert(fact("E", [2, 4]));
        assert_eq!(component_count(&i), 1);
    }
}
