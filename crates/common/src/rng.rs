//! A small, dependency-free deterministic PRNG.
//!
//! The workspace needs reproducible randomness in three places — the
//! instance generators, the monotonicity falsifiers, and the transducer
//! simulator's adversarial schedulers — and nothing more. This module
//! provides exactly that: a seeded [xoshiro256++] generator with the
//! handful of sampling helpers the experiments use. Every experiment
//! records a single `u64` seed, and the same seed produces the same
//! stream on every platform and toolchain.
//!
//! [xoshiro256++]: https://prng.di.unimi.it/

/// A seeded pseudorandom generator (xoshiro256++ core, SplitMix64 seeding).
///
/// Not cryptographically secure; statistically solid for simulation and
/// property-test workloads, and `Copy`-cheap to fork.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn gen_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.gen_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform draw from an integer range (`start..end` or `start..=end`).
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniform `u64` below `bound` (rejection-free Lemire reduction).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        // Widening multiply keeps the bias below 2^-64 — negligible for
        // simulation workloads and fully deterministic.
        (((self.gen_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` when the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.bounded_u64(xs.len() as u64) as usize])
        }
    }
}

/// Integer ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw uniformly from the range. Panics when the range is empty.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.gen_u64() as $t;
                }
                (start as i128 + rng.bounded_u64(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i64, u64, usize, u32, u8, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.gen_u64(), c.gen_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Rng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn choose_from_slices() {
        let mut rng = Rng::seed_from_u64(4);
        assert_eq!(rng.choose::<u8>(&[]), None);
        let xs = [10, 20, 30];
        for _ in 0..50 {
            assert!(xs.contains(rng.choose(&xs).unwrap()));
        }
    }
}
