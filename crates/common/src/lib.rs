//! # calm-common
//!
//! The relational substrate shared by every crate in the `calm` workspace:
//! domain values, facts, schemas, instances, active domains,
//! domain-distinctness/disjointness, components, homomorphisms, and
//! deterministic/seeded instance generators.
//!
//! Terminology follows the paper *"Weaker Forms of Monotonicity for
//! Declarative Networking"* (Ameloot, Ketsman, Neven, Zinn — PODS 2014),
//! Section 2.

#![warn(missing_docs)]

pub mod component;
pub mod domain;
pub mod fact;
pub mod generator;
pub mod homomorphism;
pub mod instance;
pub mod query;
pub mod rng;
pub mod schema;
pub mod storage;
pub mod update;
pub mod value;

pub use component::{component_count, components};
pub use domain::{is_domain_disjoint, is_domain_distinct, is_induced_subinstance, FreshValues};
pub use fact::{fact, rel, Fact, RelName};
pub use instance::{Instance, Tuple};
pub use query::{FnQuery, Query};
pub use schema::{Schema, SchemaError};
pub use update::UpdateBatch;
pub use value::{v, SkolemTerm, Value};
