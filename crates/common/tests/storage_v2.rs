//! Differential property tests (hand-rolled, seeded — the workspace is
//! dependency-free) for the storage-v2 sorted-batch layer:
//!
//! * the public v1 API — `rows()`, `delta_rows()`, `probe()`, `row()`,
//!   `contains()` — is **byte-identical** to a v1 reference model (an
//!   insertion log + seen-set) on random insert/mark-delta/seal
//!   schedules, i.e. the sorted batches are invisible to v1 callers;
//! * sealing preserves multiset semantics: the union of the sorted
//!   batches plus the unsealed tail is exactly the distinct row set;
//! * the sorted invariant: every batch is strictly sorted, batches
//!   cover exactly the sealed prefix, and `probe_sorted_iter` returns
//!   exactly the rows a full scan would.

use calm_common::rng::Rng;
use calm_common::storage::{Relation, Sym, SymTuple};
use std::collections::BTreeSet;

/// The v1 reference model: an insertion log with a seen-set and a
/// delta watermark — exactly what `Relation` was before storage v2.
#[derive(Default)]
struct V1 {
    rows: Vec<SymTuple>,
    seen: BTreeSet<SymTuple>,
    delta_start: usize,
}

impl V1 {
    fn insert(&mut self, t: SymTuple) -> bool {
        if self.seen.insert(t.clone()) {
            self.rows.push(t);
            true
        } else {
            false
        }
    }

    fn mark_delta(&mut self) {
        self.delta_start = self.rows.len();
    }

    fn probe_scan(&self, col: usize, s: Sym) -> Vec<&SymTuple> {
        self.rows
            .iter()
            .filter(|r| r.get(col) == Some(&s))
            .collect()
    }
}

fn random_row(rng: &mut Rng, arity: usize, domain: u64) -> SymTuple {
    (0..arity)
        .map(|_| Sym((rng.gen_u64() % domain) as u32))
        .collect()
}

/// Drive a `Relation` and the v1 model through the same random
/// schedule of inserts, watermark moves and seals; check the full v1
/// surface after every phase.
#[test]
fn v1_api_is_byte_identical_to_the_reference_model() {
    for seed in 0..40u64 {
        let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x51C2);
        let arity = 1 + (rng.gen_u64() % 4) as usize;
        let domain = 2 + rng.gen_u64() % 12;
        let mut rel = Relation::default();
        rel.ensure_index(0);
        let mut model = V1::default();
        for _phase in 0..8 {
            let inserts = rng.gen_u64() % 30;
            for _ in 0..inserts {
                let row = random_row(&mut rng, arity, domain);
                assert_eq!(
                    rel.insert(row.clone()),
                    model.insert(row),
                    "seed {seed}: insert return"
                );
            }
            // Random maintenance: seal, move the watermark, or neither.
            match rng.gen_u64() % 3 {
                0 => rel.ensure_sorted(),
                1 => {
                    rel.mark_delta();
                    model.mark_delta();
                }
                _ => {}
            }
            // The v1 surface must be identical, sealed or not.
            assert_eq!(rel.rows(), &model.rows[..], "seed {seed}: insertion order");
            assert_eq!(
                rel.delta_rows(),
                &model.rows[model.delta_start..],
                "seed {seed}: delta region"
            );
            assert_eq!(rel.delta_start(), model.delta_start, "seed {seed}");
            assert_eq!(rel.len(), model.rows.len(), "seed {seed}");
            for (i, row) in model.rows.iter().enumerate() {
                assert_eq!(rel.row(i as u32), row, "seed {seed}: row({i})");
                assert!(rel.contains(row), "seed {seed}: contains");
            }
            // Hash-index probes agree with a full scan of the model.
            for s in 0..domain {
                let got: Vec<&SymTuple> = rel
                    .probe(0, Sym(s as u32))
                    .unwrap_or(&[])
                    .iter()
                    .map(|&id| rel.row(id))
                    .collect();
                assert_eq!(
                    got,
                    model.probe_scan(0, Sym(s as u32)),
                    "seed {seed}: probe col 0 sym {s}"
                );
            }
        }
    }
}

/// Seal at random points and check the sorted-batch invariants: strict
/// per-batch ordering, coverage of exactly the sealed prefix, and
/// probe results identical (as a multiset of rows) to a tail scan.
#[test]
fn sealing_preserves_multiset_semantics_and_sorted_invariant() {
    for seed in 0..40u64 {
        let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xB47C);
        let arity = 1 + (rng.gen_u64() % 3) as usize;
        let domain = 2 + rng.gen_u64() % 10;
        let mut rel = Relation::default();
        let mut all: BTreeSet<SymTuple> = BTreeSet::new();
        for _round in 0..12 {
            for _ in 0..(rng.gen_u64() % 20) {
                let row = random_row(&mut rng, arity, domain);
                rel.insert(row.clone());
                all.insert(row);
            }
            if rng.gen_u64().is_multiple_of(2) {
                rel.ensure_sorted();
                assert!(rel.is_sealed(), "seed {seed}: sealed after ensure_sorted");
            }
            // Invariant: each batch strictly sorted; batches + tail
            // cover the distinct row set exactly (multiset semantics:
            // no row lost, none duplicated).
            let batches = rel.sorted_batches();
            let mut covered: Vec<SymTuple> = Vec::new();
            for batch in &batches {
                for w in batch.windows(2) {
                    assert!(w[0] < w[1], "seed {seed}: batch rows strictly sorted");
                }
                covered.extend(batch.iter().map(|r| r.to_vec()));
            }
            let sealed: usize = batches.iter().map(Vec::len).sum();
            covered.extend(rel.rows()[sealed..].iter().cloned());
            covered.sort();
            assert!(
                covered.windows(2).all(|w| w[0] < w[1]),
                "seed {seed}: no row appears twice across batches + tail"
            );
            let expect: Vec<SymTuple> = all.iter().cloned().collect();
            assert_eq!(covered, expect, "seed {seed}: coverage");
            // Merge probes return exactly what a full scan finds.
            for s in 0..domain {
                let s = Sym(s as u32);
                let mut got: Vec<SymTuple> = rel.probe_sorted_iter(s).map(|r| r.to_vec()).collect();
                got.sort();
                let mut want: Vec<SymTuple> = rel
                    .rows()
                    .iter()
                    .filter(|r| r.first() == Some(&s))
                    .cloned()
                    .collect();
                want.sort();
                assert_eq!(got, want, "seed {seed}: probe_sorted({s:?})");
            }
        }
    }
}

/// Compaction keeps the batch count logarithmic: one-by-one seals must
/// not produce one batch per seal.
#[test]
fn compaction_bounds_batch_count_under_adversarial_sealing() {
    let mut rng = Rng::seed_from_u64(0xC09A_C7ED);
    let mut rel = Relation::default();
    for i in 0..512u32 {
        // Mostly-fresh rows so almost every insert lands.
        rel.insert(vec![Sym(i), Sym((rng.gen_u64() % 8) as u32)]);
        rel.ensure_sorted();
    }
    let batches = rel.sorted_batches();
    assert!(
        batches.len() <= 10,
        "size-tiered compaction must keep O(log n) batches, got {}",
        batches.len()
    );
    assert_eq!(batches.iter().map(Vec::len).sum::<usize>(), rel.len());
}
