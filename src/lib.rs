//! # calm — weaker forms of monotonicity for declarative networking
//!
//! An executable reproduction of *"Weaker Forms of Monotonicity for
//! Declarative Networking: a More Fine-grained Answer to the
//! CALM-conjecture"* (Ameloot, Ketsman, Neven, Zinn — PODS 2014).
//!
//! The paper refines the CALM theorem ("coordination-free ⟺ monotone")
//! into a three-level hierarchy, each level pairing a transducer-network
//! model with a weaker form of monotonicity and a Datalog fragment:
//!
//! | Model | Class | Fragment |
//! |---|---|---|
//! | original (`F0`) | `M` — monotone | `Datalog(≠)` / `wILOG(≠)` |
//! | policy-aware (`F1`) | `Mdistinct` — domain-distinct-monotone | `SP-Datalog` / `SP-wILOG` |
//! | domain-guided (`F2`) | `Mdisjoint` — domain-disjoint-monotone | `semicon-Datalog¬` / `semicon-wILOG¬` |
//!
//! This facade re-exports the workspace crates:
//!
//! * [`common`] — values, facts, instances, components, homomorphisms,
//!   generators, and the [`common::query::Query`] trait;
//! * [`datalog`] — the Datalog¬ engine (parser, stratified semantics,
//!   fragments, well-founded semantics);
//! * [`ilog`] — value invention (ILOG¬, weak safety, wILOG¬ fragments);
//! * [`monotone`] — falsifiers and exhaustive certifiers for the
//!   monotonicity and preservation classes;
//! * [`queries`] — the paper's concrete separating queries;
//! * [`transducer`] — relational transducer networks and the three
//!   coordination-free evaluation strategies.
//!
//! ## Quickstart
//!
//! ```
//! use calm::prelude::*;
//!
//! // The complement-of-transitive-closure query (Mdisjoint \ Mdistinct).
//! let qtc = calm::queries::qtc_datalog();
//! let input = calm::common::generator::path(3);
//! let answer = qtc.eval(&input);
//! assert!(answer.contains(&calm::common::fact("O", [3, 0])));
//!
//! // Run it coordination-free on a 3-node network under a domain-guided
//! // distribution (Theorem 4.4).
//! let strategy = DisjointStrategy::new(Box::new(calm::queries::qtc_datalog()));
//! let expected = expected_output(strategy.query(), &input);
//! let policy = DomainGuidedPolicy::new(Network::of_size(3));
//! let network = TransducerNetwork {
//!     transducer: &strategy,
//!     policy: &policy,
//!     config: SystemConfig::POLICY_AWARE,
//! };
//! let result = run(&network, &input, &Scheduler::RoundRobin, 100_000);
//! assert!(result.quiescent);
//! assert_eq!(result.output, expected);
//! ```
//!
//! ## Incremental maintenance
//!
//! When the input changes, fold a signed [`prelude::UpdateBatch`] into a
//! maintained evaluation instead of re-running the fixpoint — the result
//! is byte-identical to evaluating the updated input from scratch:
//!
//! ```
//! use calm::prelude::*;
//!
//! let qtc = calm::queries::qtc_datalog();
//! let mut input = calm::common::generator::path(3);
//! let mut live = qtc.open(&input);              // evaluates once
//!
//! let batch = UpdateBatch::new()
//!     .with_delete(fact("E", [1, 2]))           // cut the path
//!     .with_insert(fact("E", [0, 2]));          // add a shortcut
//! let stats = live.apply(&batch);
//! assert!(stats.retractions > 0);               // T-facts withdrawn
//!
//! batch.apply_to_instance(&mut input);
//! assert_eq!(live.output(), qtc.eval(&input));  // the oracle
//! ```

pub use calm_common as common;
pub use calm_datalog as datalog;
pub use calm_ilog as ilog;
pub use calm_monotone as monotone;
pub use calm_queries as queries;
pub use calm_transducer as transducer;

/// The most commonly used items in one import.
pub mod prelude {
    pub use calm_common::query::{FnQuery, Query};
    pub use calm_common::update::UpdateBatch;
    pub use calm_common::{fact, v, Fact, Instance, Schema, Value};
    pub use calm_datalog::{
        parse_program, DatalogQuery, IncrementalEvaluation, WellFoundedQuery, WellFoundedSession,
    };
    pub use calm_monotone::{ExtensionKind, Falsifier};
    pub use calm_transducer::{
        expected_output, run, DisjointStrategy, DistinctStrategy, DistributionPolicy,
        DomainGuidedPolicy, HashPolicy, MonotoneBroadcast, Network, Scheduler, SystemConfig,
        TransducerNetwork,
    };
}
