//! Integration test: the full monotonicity hierarchy of Theorem 3.1 /
//! Figure 1, validated with the paper's separating queries (experiments
//! E1–E5 of DESIGN.md).

use calm::common::generator::{
    clique_from, disjoint_triangles, edge, star_from, triangle_from, InstanceRng,
};
use calm::common::{is_domain_disjoint, is_domain_distinct, Instance};
use calm::monotone::{check_pair, Exhaustive, ExtensionKind, Falsifier};
use calm::prelude::*;
use calm::queries::{
    qtc_datalog, tc_datalog, CliqueQuery, DuplicateQuery, StarQuery, TrianglesUnlessTwoDisjoint,
};

fn random_graph(seed_src: &mut calm_common::rng::Rng) -> Instance {
    InstanceRng::seeded(seed_src.gen_u64()).gnp(5, 0.35)
}

// ---------- E1: M ⊊ Mdistinct ⊊ Mdisjoint ⊊ C ----------

#[test]
fn e1_tc_consistent_with_m_everywhere() {
    let tc = tc_datalog();
    for kind in [
        ExtensionKind::Any,
        ExtensionKind::DomainDistinct,
        ExtensionKind::DomainDisjoint,
    ] {
        assert!(
            Exhaustive::new(kind).certify(&tc).is_none(),
            "TC must pass exhaustive {kind:?} certification"
        );
        assert!(Falsifier::new(kind)
            .with_trials(150)
            .falsify(&tc, random_graph)
            .is_none());
    }
}

#[test]
fn e1_sp_query_separates_m_from_mdistinct() {
    let q = calm::queries::tc::edges_without_source_loop();
    // ∉ M: exhaustive search finds a violation with old values.
    let m_violation = Exhaustive::new(ExtensionKind::Any).certify(&q);
    assert!(m_violation.is_some());
    // ∈ Mdistinct: exhaustive certification passes.
    assert!(Exhaustive::new(ExtensionKind::DomainDistinct)
        .certify(&q)
        .is_none());
    assert!(Exhaustive::new(ExtensionKind::DomainDisjoint)
        .certify(&q)
        .is_none());
}

#[test]
fn e1_qtc_separates_mdistinct_from_mdisjoint() {
    let q = qtc_datalog();
    // ∉ Mdistinct (paper: bridge through a fresh vertex).
    let distinct_violation = Exhaustive::new(ExtensionKind::DomainDistinct).certify(&q);
    assert!(distinct_violation.is_some());
    let violation = distinct_violation.unwrap();
    assert!(is_domain_distinct(&violation.extension, &violation.base));
    // ∈ Mdisjoint: exhaustive + randomized certification.
    assert!(Exhaustive::new(ExtensionKind::DomainDisjoint)
        .certify(&q)
        .is_none());
    assert!(Falsifier::new(ExtensionKind::DomainDisjoint)
        .with_trials(200)
        .falsify(&q, random_graph)
        .is_none());
}

#[test]
fn e1_triangle_query_separates_mdisjoint_from_c() {
    let q = TrianglesUnlessTwoDisjoint::new();
    // Computable but ∉ Mdisjoint: the explicit witness.
    let i = triangle_from(0);
    let j = triangle_from(50);
    assert!(is_domain_disjoint(&j, &i));
    let violation = check_pair(&q, &i, &j).expect("disjoint triangle retracts output");
    assert_eq!(violation.lost.len(), 3);
}

// ---------- E2: M = Mᵢ ----------

#[test]
fn e2_single_fact_decomposition_for_unrestricted_extensions() {
    use calm::monotone::decomposition_stays_admissible;
    // The structural reason M = M¹: any extension decomposes into
    // admissible single-fact steps.
    let mut rng = calm_common::rng::Rng::seed_from_u64(42);
    for _ in 0..50 {
        let base = random_graph(&mut rng);
        let ext = InstanceRng::seeded(rng.gen_u64()).gnp(4, 0.4);
        assert!(decomposition_stays_admissible(
            ExtensionKind::Any,
            &base,
            &ext
        ));
    }
}

#[test]
fn e2_bounded_and_unbounded_checks_agree_for_monotone_query() {
    let tc = tc_datalog();
    for bound in 1..=3 {
        assert!(Exhaustive::new(ExtensionKind::Any)
            .with_bound(bound)
            .certify(&tc)
            .is_none());
    }
}

// ---------- E3: the Mᵢdistinct ladder ----------

#[test]
fn e3_clique_queries_separate_bounded_distinct_levels() {
    // Q^{i+2}_clique ∈ M^i_distinct \ M^{i+1}_distinct.
    for i in 1..=3usize {
        let q = CliqueQuery::new(i + 2);
        let base = clique_from(0, i + 1);
        // The (i+1)-fact fresh-centre star flips the answer…
        let star: Instance = Instance::from_facts((0..=i as i64).map(|k| edge(900, k)));
        assert!(is_domain_distinct(&star, &base));
        assert_eq!(star.len(), i + 1);
        assert!(
            check_pair(&q, &base, &star).is_some(),
            "i={i}: i+1 distinct facts break Q^{}clique",
            i + 2
        );
        // …but no i-fact distinct extension can (exhaustive over the
        // paper's shape space: subsets of the star plus arbitrary fresh
        // edges handled by the randomized falsifier).
        let f = Falsifier::new(ExtensionKind::DomainDistinct)
            .with_bound(i)
            .with_trials(300)
            .falsify(&q, |_| clique_from(0, i + 1));
        assert!(f.is_none(), "i={i}: no i-fact distinct witness may exist");
    }
}

// ---------- E4: the Mᵢdisjoint ladder ----------

#[test]
fn e4_star_queries_separate_bounded_disjoint_levels() {
    // Q^{i+1}_star ∈ M^i_disjoint \ M^{i+1}_disjoint.
    for i in 1..=3usize {
        let q = StarQuery::new(i + 1);
        let base = Instance::from_facts([edge(1, 2)]);
        let fresh_star = star_from(800, i + 1);
        assert!(is_domain_disjoint(&fresh_star, &base));
        assert_eq!(fresh_star.len(), i + 1);
        assert!(check_pair(&q, &base, &fresh_star).is_some());
        // ≤ i disjoint facts can never produce an (i+1)-star.
        let f = Falsifier::new(ExtensionKind::DomainDisjoint)
            .with_bound(i)
            .with_trials(300)
            .falsify(&q, random_graph);
        assert!(f.is_none());
    }
}

// ---------- E5: relations between the bounded families ----------

#[test]
fn e5_clique_separates_bounded_distinct_from_disjoint() {
    // Thm 3.1(5): Q^{i+1}_clique ∉ M^i_distinct but ∈ M^i_disjoint.
    let i = 2usize;
    let q = CliqueQuery::new(i + 1); // Q^3_clique
    let base = clique_from(0, i); // a 2-clique (one undirected edge)
                                  // i distinct facts complete the 3-clique through a fresh centre.
    let j = Instance::from_facts([edge(700, 0), edge(700, 1)]);
    assert!(is_domain_distinct(&j, &base));
    assert_eq!(j.len(), i);
    assert!(check_pair(&q, &base, &j).is_some(), "∉ M^2_distinct");
    // But i disjoint facts cannot build a 3-clique (needs 3 mutual edges).
    assert!(Falsifier::new(ExtensionKind::DomainDisjoint)
        .with_bound(i)
        .with_trials(300)
        .falsify(&q, random_graph)
        .is_none());
}

#[test]
fn e5_star_witnesses_mjdisjoint_not_in_midistinct() {
    // Thm 3.1(6): Q^{j+1}_star ∈ M^j_disjoint \ M^i_distinct (one
    // distinct edge through the old centre suffices).
    let j = 2usize;
    let q = StarQuery::new(j + 1);
    let base = star_from(0, j);
    let one_edge = Instance::from_facts([edge(0, 600)]);
    assert!(is_domain_distinct(&one_edge, &base));
    assert!(check_pair(&q, &base, &one_edge).is_some(), "∉ M^1_distinct");
    assert!(Falsifier::new(ExtensionKind::DomainDisjoint)
        .with_bound(j)
        .with_trials(300)
        .falsify(&q, random_graph)
        .is_none());
}

#[test]
fn e5_duplicate_witnesses_midistinct_not_in_mjdisjoint() {
    // Thm 3.1(7): Q^j_duplicate ∈ M^i_distinct (i < j) \ M^j_disjoint.
    let jp = 3usize;
    let q = DuplicateQuery::new(jp);
    let base = Instance::from_facts([fact("R1", [1, 2]), fact("R2", [1, 2])]);
    let replicate = Instance::from_facts([
        fact("R1", [500, 501]),
        fact("R2", [500, 501]),
        fact("R3", [500, 501]),
    ]);
    assert!(is_domain_disjoint(&replicate, &base));
    assert!(
        check_pair(&q, &base, &replicate).is_some(),
        "∉ M^3_disjoint"
    );
    // i = 2 < j: no 2-fact distinct extension can flip the answer.
    let f = Falsifier::new(ExtensionKind::DomainDistinct)
        .with_bound(2)
        .with_trials(400)
        .falsify(&q, |r| {
            let mut i = Instance::new();
            for rel in ["R1", "R2", "R3"] {
                for _ in 0..r.gen_range(0..3) {
                    i.insert(fact(rel, [r.gen_range(0..4i64), r.gen_range(0..4i64)]));
                }
            }
            i
        });
    assert!(f.is_none());
}

// ---------- Lemma 3.2 (E6): H ⊊ Hinj = M ⊊ E = Mdistinct ----------

#[test]
fn e6_neq_query_separates_h_from_hinj() {
    use calm::monotone::falsify_homomorphism_preservation;
    let q = calm::queries::tc::edges_neq();
    // ∉ H: collapsing homomorphisms kill x≠y outputs.
    assert!(falsify_homomorphism_preservation(&q, random_graph, false, 300, 11,).is_some());
    // ∈ Hinj: injective renamings preserve everything.
    assert!(falsify_homomorphism_preservation(&q, random_graph, true, 300, 12,).is_none());
    // ∈ M = Hinj: monotone as well.
    assert!(Exhaustive::new(ExtensionKind::Any).certify(&q).is_none());
}

#[test]
fn e6_extension_preservation_equals_domain_distinct_monotonicity() {
    use calm::monotone::falsify_extension_preservation;
    // The SP query is in E = Mdistinct: extension preservation holds.
    let q = calm::queries::tc::edges_without_source_loop();
    assert!(falsify_extension_preservation(&q, random_graph, 300, 13).is_none());
    // Q_TC is NOT in E (take an induced subinstance missing the bridge).
    let qtc = qtc_datalog();
    assert!(falsify_extension_preservation(&qtc, random_graph, 400, 14).is_some());
}

#[test]
fn e6_induced_subinstance_complement_duality() {
    // The proof of Lemma 3.2: J induced ⊆ I iff I \ J domain-distinct
    // from J — verified over random instances.
    use calm::common::is_induced_subinstance;
    use calm::monotone::preservation::random_induced_subinstance;
    let mut rng = calm_common::rng::Rng::seed_from_u64(7);
    for _ in 0..100 {
        let i = random_graph(&mut rng);
        let j = random_induced_subinstance(&i, &mut rng);
        assert!(is_induced_subinstance(&j, &i));
        assert!(is_domain_distinct(&i.difference(&j), &j));
    }
}

// Cross-check: the triangle query's behaviour on bigger structured inputs.
#[test]
fn triangle_query_structured_inputs() {
    let q = TrianglesUnlessTwoDisjoint::new();
    assert_eq!(q.eval(&disjoint_triangles(0, 3)), Instance::new());
    let one = triangle_from(7);
    assert_eq!(q.eval(&one).len(), 3);
}
