//! Property-based tests (proptest) over the core data structures and the
//! paper's structural invariants: instances, components (Lemma 5.2 /
//! experiment E13), domain predicates, the Datalog engine, and the
//! transducer runtime's confluence.

use calm::common::component::{components, is_valid_component_decomposition};
use calm::common::generator::InstanceRng;
use calm::common::{
    fact, is_domain_disjoint, is_domain_distinct, is_induced_subinstance, v, Instance,
};
use calm::datalog::eval::{eval_program_with, Engine};
use calm::datalog::parse_program;
use calm::monotone::check_distributes_over_components;
use calm::prelude::*;
use proptest::prelude::*;

/// A strategy producing small random edge instances.
fn edge_instance(max_v: i64, max_e: usize) -> impl Strategy<Value = Instance> {
    prop::collection::vec((0..max_v, 0..max_v), 0..max_e)
        .prop_map(|pairs| Instance::from_facts(pairs.into_iter().map(|(a, b)| fact("E", [a, b]))))
}

/// Move-graph instances for win-move properties.
fn move_instance(max_v: i64, max_e: usize) -> impl Strategy<Value = Instance> {
    prop::collection::vec((0..max_v, 0..max_v), 0..max_e).prop_map(|pairs| {
        Instance::from_facts(
            pairs
                .into_iter()
                .filter(|(a, b)| a != b)
                .map(|(a, b)| fact("move", [a, b])),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------- Instance algebra ----------

    #[test]
    fn union_is_commutative_and_idempotent(a in edge_instance(6, 10), b in edge_instance(6, 10)) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert!(a.is_subset(&a.union(&b)));
    }

    #[test]
    fn difference_and_intersection_laws(a in edge_instance(6, 10), b in edge_instance(6, 10)) {
        let d = a.difference(&b);
        let i = a.intersection(&b);
        prop_assert_eq!(d.union(&i), a.clone());
        prop_assert!(d.intersection(&b).is_empty());
        prop_assert_eq!(d.len() + i.len(), a.len());
    }

    #[test]
    fn adom_is_union_of_fact_adoms(a in edge_instance(8, 12)) {
        let mut expected = std::collections::BTreeSet::new();
        for f in a.facts() {
            expected.extend(f.values().cloned());
        }
        prop_assert_eq!(a.adom(), expected);
    }

    // ---------- Domain predicates ----------

    #[test]
    fn disjoint_implies_distinct(a in edge_instance(5, 8), shift in 10i64..20) {
        let b = a.map_values(|val| match val {
            calm::common::Value::Int(k) => v(k + shift + 10),
            other => other.clone(),
        });
        prop_assert!(is_domain_disjoint(&b, &a));
        prop_assert!(is_domain_distinct(&b, &a));
    }

    #[test]
    fn induced_subinstance_iff_complement_distinct(a in edge_instance(5, 10), keep_mask in any::<u64>()) {
        // Carve an induced subinstance by keeping a subset of values.
        let adom: Vec<_> = a.adom().into_iter().collect();
        let keep: std::collections::BTreeSet<_> = adom
            .iter()
            .enumerate()
            .filter(|(i, _)| keep_mask >> (i % 64) & 1 == 1)
            .map(|(_, val)| val.clone())
            .collect();
        let j = Instance::from_facts(
            a.facts().filter(|f| f.values().all(|val| keep.contains(val))),
        );
        prop_assert!(is_induced_subinstance(&j, &a));
        prop_assert!(is_domain_distinct(&a.difference(&j), &j));
    }

    // ---------- Components (E13 substrate) ----------

    #[test]
    fn component_decomposition_is_valid(a in edge_instance(8, 14)) {
        let co = components(&a);
        prop_assert!(is_valid_component_decomposition(&a, &co));
        let total: usize = co.iter().map(Instance::len).sum();
        prop_assert_eq!(total, a.len());
    }

    #[test]
    fn components_of_disjoint_union_are_concatenation(
        a in edge_instance(5, 8),
        b in edge_instance(5, 8),
    ) {
        let b = b.map_values(|val| match val {
            calm::common::Value::Int(k) => v(k + 100),
            other => other.clone(),
        });
        let mut expected = components(&a);
        expected.extend(components(&b));
        expected.sort();
        prop_assert_eq!(components(&a.union(&b)), expected);
    }

    // ---------- Lemma 5.2 (E13): con-Datalog¬ distributes over components ----------

    #[test]
    fn connected_datalog_distributes_over_components(
        a in edge_instance(5, 8),
        b in edge_instance(5, 8),
    ) {
        let b = b.map_values(|val| match val {
            calm::common::Value::Int(k) => v(k + 100),
            other => other.clone(),
        });
        let multi = a.union(&b);
        // TC is connected positive Datalog; P1 is con-Datalog¬ with
        // stratified negation.
        let tc = calm::queries::tc_datalog();
        prop_assert!(check_distributes_over_components(&tc, &multi).is_none());
        let p1 = calm::queries::example51::p1();
        prop_assert!(check_distributes_over_components(&p1, &multi).is_none());
    }

    // ---------- Datalog engine invariants ----------

    #[test]
    fn naive_and_seminaive_agree(a in edge_instance(6, 12)) {
        let p = parse_program(
            "T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).\nS(x) :- T(x,x).",
        ).unwrap();
        let (x, _) = eval_program_with(&p, &a, Engine::SemiNaive).unwrap();
        let (y, _) = eval_program_with(&p, &a, Engine::Naive).unwrap();
        prop_assert_eq!(x, y);
    }

    #[test]
    fn datalog_queries_are_generic(a in edge_instance(6, 10), mult in 1i64..5, off in 0i64..50) {
        // Permute the domain with an injective affine map; evaluation
        // must commute with it.
        let q = calm::queries::qtc_datalog();
        let pi = |val: &calm::common::Value| match val {
            calm::common::Value::Int(k) => v(k * (mult * 2 + 1) + off),
            other => other.clone(),
        };
        let permuted = a.map_values(pi);
        prop_assert_eq!(q.eval(&a).map_values(pi), q.eval(&permuted));
    }

    #[test]
    fn stratified_output_is_deterministic(a in edge_instance(6, 10)) {
        let q = calm::queries::qtc_datalog();
        prop_assert_eq!(q.eval(&a), q.eval(&a));
    }

    // ---------- Well-founded semantics invariants ----------

    #[test]
    fn wfs_true_subset_possible(g in move_instance(8, 12)) {
        let p = parse_program("win(x) :- move(x,y), not win(y).").unwrap();
        let m = calm::datalog::well_founded_model(&p, &g);
        prop_assert!(m.true_facts.is_subset(&m.possible_facts));
    }

    #[test]
    fn wfs_matches_native_game_solver(g in move_instance(8, 12)) {
        let wfs = calm::queries::win_move();
        let native = calm::queries::win_move_native();
        prop_assert_eq!(wfs.eval(&g), native.eval(&g));
    }

    // ---------- Transducer runtime confluence ----------

    #[test]
    fn monotone_network_confluent_across_schedules(seed in 0u64..30) {
        let input = InstanceRng::seeded(seed).gnp(5, 0.3);
        let t = MonotoneBroadcast::new(Box::new(calm::queries::tc_datalog()));
        let expected = expected_output(t.query(), &input);
        let policy = HashPolicy::new(Network::of_size(3));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let r = run(&tn, &input, &Scheduler::Random { seed, prefix: 30 }, 100_000);
        prop_assert!(r.quiescent);
        prop_assert_eq!(r.output, expected);
    }
}
