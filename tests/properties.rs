//! Property-based tests over the core data structures and the paper's
//! structural invariants: instances, components (Lemma 5.2 / experiment
//! E13), domain predicates, the Datalog engine, and the transducer
//! runtime's confluence.
//!
//! Deterministic seeded loops over [`calm::common::rng::Rng`].

use calm::common::component::{components, is_valid_component_decomposition};
use calm::common::generator::InstanceRng;
use calm::common::rng::Rng;
use calm::common::{
    fact, is_domain_disjoint, is_domain_distinct, is_induced_subinstance, v, Instance,
};
use calm::datalog::eval::{eval_program_with, Engine};
use calm::datalog::parse_program;
use calm::monotone::check_distributes_over_components;
use calm::prelude::*;

const CASES: u64 = 64;

/// A small random edge instance.
fn edge_instance(r: &mut Rng, max_v: i64, max_e: usize) -> Instance {
    let mut i = Instance::new();
    for _ in 0..r.gen_range(0..max_e) {
        i.insert(fact("E", [r.gen_range(0..max_v), r.gen_range(0..max_v)]));
    }
    i
}

/// Move-graph instances (no self-loops) for win-move properties.
fn move_instance(r: &mut Rng, max_v: i64, max_e: usize) -> Instance {
    let mut i = Instance::new();
    for _ in 0..r.gen_range(0..max_e) {
        let (a, b) = (r.gen_range(0..max_v), r.gen_range(0..max_v));
        if a != b {
            i.insert(fact("move", [a, b]));
        }
    }
    i
}

// ---------- Instance algebra ----------

#[test]
fn union_is_commutative_and_idempotent() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let a = edge_instance(&mut r, 6, 10);
        let b = edge_instance(&mut r, 6, 10);
        assert_eq!(a.union(&b), b.union(&a), "seed {seed}");
        assert_eq!(a.union(&a), a, "seed {seed}");
        assert!(a.is_subset(&a.union(&b)), "seed {seed}");
    }
}

#[test]
fn difference_and_intersection_laws() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let a = edge_instance(&mut r, 6, 10);
        let b = edge_instance(&mut r, 6, 10);
        let d = a.difference(&b);
        let i = a.intersection(&b);
        assert_eq!(d.union(&i), a, "seed {seed}");
        assert!(d.intersection(&b).is_empty(), "seed {seed}");
        assert_eq!(d.len() + i.len(), a.len(), "seed {seed}");
    }
}

#[test]
fn adom_is_union_of_fact_adoms() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let a = edge_instance(&mut r, 8, 12);
        let mut expected = std::collections::BTreeSet::new();
        for f in a.facts() {
            expected.extend(f.values().cloned());
        }
        assert_eq!(a.adom(), expected, "seed {seed}");
    }
}

// ---------- Domain predicates ----------

#[test]
fn disjoint_implies_distinct() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let a = edge_instance(&mut r, 5, 8);
        let shift = r.gen_range(10..20i64);
        let b = a.map_values(|val| match val {
            calm::common::Value::Int(k) => v(k + shift + 10),
            other => other.clone(),
        });
        assert!(is_domain_disjoint(&b, &a), "seed {seed}");
        assert!(is_domain_distinct(&b, &a), "seed {seed}");
    }
}

#[test]
fn induced_subinstance_iff_complement_distinct() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let a = edge_instance(&mut r, 5, 10);
        let keep_mask = r.gen_u64();
        // Carve an induced subinstance by keeping a subset of values.
        let adom: Vec<_> = a.adom().into_iter().collect();
        let keep: std::collections::BTreeSet<_> = adom
            .iter()
            .enumerate()
            .filter(|(i, _)| keep_mask >> (i % 64) & 1 == 1)
            .map(|(_, val)| val.clone())
            .collect();
        let j = Instance::from_facts(
            a.facts()
                .filter(|f| f.values().all(|val| keep.contains(val))),
        );
        assert!(is_induced_subinstance(&j, &a), "seed {seed}");
        assert!(is_domain_distinct(&a.difference(&j), &j), "seed {seed}");
    }
}

// ---------- Components (E13 substrate) ----------

#[test]
fn component_decomposition_is_valid() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let a = edge_instance(&mut r, 8, 14);
        let co = components(&a);
        assert!(is_valid_component_decomposition(&a, &co), "seed {seed}");
        let total: usize = co.iter().map(Instance::len).sum();
        assert_eq!(total, a.len(), "seed {seed}");
    }
}

#[test]
fn components_of_disjoint_union_are_concatenation() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let a = edge_instance(&mut r, 5, 8);
        let b = edge_instance(&mut r, 5, 8).map_values(|val| match val {
            calm::common::Value::Int(k) => v(k + 100),
            other => other.clone(),
        });
        let mut expected = components(&a);
        expected.extend(components(&b));
        expected.sort();
        assert_eq!(components(&a.union(&b)), expected, "seed {seed}");
    }
}

// ---------- Lemma 5.2 (E13): con-Datalog¬ distributes over components ----------

#[test]
fn connected_datalog_distributes_over_components() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let a = edge_instance(&mut r, 5, 8);
        let b = edge_instance(&mut r, 5, 8).map_values(|val| match val {
            calm::common::Value::Int(k) => v(k + 100),
            other => other.clone(),
        });
        let multi = a.union(&b);
        // TC is connected positive Datalog; P1 is con-Datalog¬ with
        // stratified negation.
        let tc = calm::queries::tc_datalog();
        assert!(
            check_distributes_over_components(&tc, &multi).is_none(),
            "seed {seed}"
        );
        let p1 = calm::queries::example51::p1();
        assert!(
            check_distributes_over_components(&p1, &multi).is_none(),
            "seed {seed}"
        );
    }
}

// ---------- Datalog engine invariants ----------

#[test]
fn naive_and_seminaive_agree() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let a = edge_instance(&mut r, 6, 12);
        let p =
            parse_program("T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).\nS(x) :- T(x,x).").unwrap();
        let (x, _) = eval_program_with(&p, &a, Engine::SemiNaive).unwrap();
        let (y, _) = eval_program_with(&p, &a, Engine::Naive).unwrap();
        assert_eq!(x, y, "seed {seed}");
    }
}

#[test]
fn datalog_queries_are_generic() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let a = edge_instance(&mut r, 6, 10);
        let mult = r.gen_range(1..5i64);
        let off = r.gen_range(0..50i64);
        // Permute the domain with an injective affine map; evaluation
        // must commute with it.
        let q = calm::queries::qtc_datalog();
        let pi = |val: &calm::common::Value| match val {
            calm::common::Value::Int(k) => v(k * (mult * 2 + 1) + off),
            other => other.clone(),
        };
        let permuted = a.map_values(pi);
        assert_eq!(q.eval(&a).map_values(pi), q.eval(&permuted), "seed {seed}");
    }
}

#[test]
fn stratified_output_is_deterministic() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let a = edge_instance(&mut r, 6, 10);
        let q = calm::queries::qtc_datalog();
        assert_eq!(q.eval(&a), q.eval(&a), "seed {seed}");
    }
}

// ---------- Well-founded semantics invariants ----------

#[test]
fn wfs_true_subset_possible() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let g = move_instance(&mut r, 8, 12);
        let p = parse_program("win(x) :- move(x,y), not win(y).").unwrap();
        let m = calm::datalog::well_founded_model(&p, &g);
        assert!(m.true_facts.is_subset(&m.possible_facts), "seed {seed}");
    }
}

#[test]
fn wfs_matches_native_game_solver() {
    for seed in 0..CASES {
        let mut r = Rng::seed_from_u64(seed);
        let g = move_instance(&mut r, 8, 12);
        let wfs = calm::queries::win_move();
        let native = calm::queries::win_move_native();
        assert_eq!(wfs.eval(&g), native.eval(&g), "seed {seed}");
    }
}

// ---------- Transducer runtime confluence ----------

#[test]
fn monotone_network_confluent_across_schedules() {
    for seed in 0..30u64 {
        let input = InstanceRng::seeded(seed).gnp(5, 0.3);
        let t = MonotoneBroadcast::new(Box::new(calm::queries::tc_datalog()));
        let expected = expected_output(t.query(), &input);
        let policy = HashPolicy::new(Network::of_size(3));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::ORIGINAL,
        };
        let r = run(&tn, &input, &Scheduler::random(seed, 30), 100_000);
        assert!(r.quiescent, "seed {seed}");
        assert_eq!(r.output, expected, "seed {seed}");
    }
}
