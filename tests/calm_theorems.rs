//! Integration test: the transducer-network characterizations —
//! `F0 = M` (Cor 4.6), `F1 = Mdistinct` (Thm 4.3), `F2 = Mdisjoint`
//! (Thm 4.4), and the no-`All` variants `A1`/`A2` (Thm 4.5).
//! Experiments E8–E10 of DESIGN.md.

use calm::common::generator::{chain_game, cycle_game, path, InstanceRng};
use calm::common::Instance;
use calm::prelude::*;
use calm::queries::qtc_datalog;
use calm::queries::tc::{edges_without_source_loop, tc_datalog};
use calm::queries::winmove::win_move;
use calm::transducer::{heartbeat_witness, verify_computes};

fn schedulers() -> Vec<Scheduler> {
    vec![
        Scheduler::RoundRobin,
        Scheduler::random(21, 40),
        Scheduler::random(22, 80),
    ]
}

// ---------- E8a: monotone queries in the original model (F0 ⊇ M) ----------

#[test]
fn monotone_strategy_computes_tc_in_original_model() {
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    for input in [path(4), calm::common::generator::cycle(4)] {
        let expected = expected_output(t.query(), &input);
        for n in [1, 2, 3] {
            let policy = HashPolicy::new(Network::of_size(n));
            let tn = TransducerNetwork {
                transducer: &t,
                policy: &policy,
                config: SystemConfig::ORIGINAL,
            };
            verify_computes(&tn, &input, &expected, &schedulers(), 100_000)
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }
}

#[test]
fn monotone_strategy_heartbeat_witness() {
    // Coordination-freeness of the M strategy: the all-to-x policy plus
    // heartbeats at x computes Q(I).
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let input = path(5);
    let expected = expected_output(t.query(), &input);
    let net = Network::of_size(4);
    let x = net.first().clone();
    let policy = DomainGuidedPolicy::all_to(net, x.clone());
    let tn = TransducerNetwork {
        transducer: &t,
        policy: &policy,
        config: SystemConfig::ORIGINAL,
    };
    assert_eq!(heartbeat_witness(&tn, &input, &x, &expected, 5), Some(1));
}

// ---------- E8b: Mdistinct queries in the policy-aware model (F1) ----------

#[test]
fn distinct_strategy_computes_sp_query_for_arbitrary_policies() {
    let t = DistinctStrategy::new(Box::new(edges_without_source_loop()));
    let mut input = path(3);
    input.insert(fact("E", [1, 1]));
    let expected = expected_output(t.query(), &input);
    for n in [1, 2, 3] {
        let policy = HashPolicy::new(Network::of_size(n));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::POLICY_AWARE,
        };
        verify_computes(&tn, &input, &expected, &schedulers(), 200_000)
            .unwrap_or_else(|e| panic!("n={n}: {e}"));
    }
}

#[test]
fn distinct_strategy_on_random_inputs() {
    let t = DistinctStrategy::new(Box::new(edges_without_source_loop()));
    for seed in 0..4u64 {
        let input = InstanceRng::seeded(seed).gnp(5, 0.3);
        let expected = expected_output(t.query(), &input);
        let policy = HashPolicy::new(Network::of_size(2));
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::POLICY_AWARE,
        };
        verify_computes(&tn, &input, &expected, &[Scheduler::RoundRobin], 400_000)
            .unwrap_or_else(|e| panic!("seed={seed}: {e}"));
    }
}

// ---------- E9: Mdisjoint queries in the domain-guided model (F2) ----------

#[test]
fn disjoint_strategy_computes_win_move_and_qtc() {
    let games = [
        chain_game(0, 4),
        chain_game(0, 3).union(&cycle_game(20, 3)),
        InstanceRng::seeded(9).move_graph(10, 2),
    ];
    let t = DisjointStrategy::new(Box::new(win_move()));
    for input in &games {
        let expected = expected_output(t.query(), input);
        for n in [1, 2, 4] {
            let policy = DomainGuidedPolicy::new(Network::of_size(n));
            let tn = TransducerNetwork {
                transducer: &t,
                policy: &policy,
                config: SystemConfig::POLICY_AWARE,
            };
            verify_computes(&tn, input, &expected, &schedulers(), 500_000)
                .unwrap_or_else(|e| panic!("n={n}, input={input:?}: {e}"));
        }
    }
    // Q_TC ∈ Mdisjoint too.
    let t2 = DisjointStrategy::new(Box::new(qtc_datalog()));
    let input = path(3);
    let expected = expected_output(t2.query(), &input);
    let policy = DomainGuidedPolicy::new(Network::of_size(3));
    let tn = TransducerNetwork {
        transducer: &t2,
        policy: &policy,
        config: SystemConfig::POLICY_AWARE,
    };
    verify_computes(&tn, &input, &expected, &schedulers(), 500_000).unwrap();
}

#[test]
fn disjoint_strategy_heartbeat_witness_on_ideal_assignment() {
    let t = DisjointStrategy::new(Box::new(win_move()));
    let input = chain_game(0, 5);
    let expected = expected_output(t.query(), &input);
    for n in [2, 4] {
        let net = Network::of_size(n);
        let x = net.first().clone();
        let policy = DomainGuidedPolicy::all_to(net, x.clone());
        let tn = TransducerNetwork {
            transducer: &t,
            policy: &policy,
            config: SystemConfig::POLICY_AWARE,
        };
        let beats = heartbeat_witness(&tn, &input, &x, &expected, 10).expect("witness must exist");
        assert!(beats <= 2, "n={n}");
    }
}

// ---------- E10: Theorem 4.5 — dropping All changes nothing ----------

#[test]
fn strategies_unchanged_without_all_relation() {
    // The same transducers, same inputs, same expected outputs — with the
    // All relation removed from the system schema. Outputs must be
    // identical to the All-present runs.
    let mut input = path(3);
    input.insert(fact("E", [0, 0]));

    let distinct = DistinctStrategy::new(Box::new(edges_without_source_loop()));
    let expected = expected_output(distinct.query(), &input);
    for config in [
        SystemConfig::POLICY_AWARE,
        SystemConfig::POLICY_AWARE_NO_ALL,
    ] {
        let policy = HashPolicy::new(Network::of_size(3));
        let tn = TransducerNetwork {
            transducer: &distinct,
            policy: &policy,
            config,
        };
        verify_computes(&tn, &input, &expected, &[Scheduler::RoundRobin], 400_000)
            .unwrap_or_else(|e| panic!("{config:?}: {e}"));
    }

    let disjoint = DisjointStrategy::new(Box::new(win_move()));
    let game = chain_game(0, 4);
    let expected = expected_output(disjoint.query(), &game);
    for config in [
        SystemConfig::POLICY_AWARE,
        SystemConfig::POLICY_AWARE_NO_ALL,
    ] {
        let policy = DomainGuidedPolicy::new(Network::of_size(3));
        let tn = TransducerNetwork {
            transducer: &disjoint,
            policy: &policy,
            config,
        };
        verify_computes(&tn, &game, &expected, &[Scheduler::RoundRobin], 400_000)
            .unwrap_or_else(|e| panic!("{config:?}: {e}"));
    }
}

#[test]
fn oblivious_transducers_still_compute_monotone_queries() {
    // Corollary 4.6: even without Id and All, monotone queries go
    // through.
    let t = MonotoneBroadcast::new(Box::new(tc_datalog()));
    let input = path(4);
    let expected = expected_output(t.query(), &input);
    let policy = HashPolicy::new(Network::of_size(3));
    let tn = TransducerNetwork {
        transducer: &t,
        policy: &policy,
        config: SystemConfig::OBLIVIOUS,
    };
    verify_computes(&tn, &input, &expected, &[Scheduler::RoundRobin], 100_000).unwrap();
}

// ---------- The negative side: strategies fail outside their class ----------

#[test]
fn strategy_class_mismatch_grid() {
    // M strategy on an Mdistinct-but-not-M query must fail on some
    // distribution (E(x,y),¬E(x,x) with the loop and the edge separated).
    let t = DistinctStrategyFailureFixture::m_on_sp();
    let mut input = Instance::new();
    input.insert(fact("E", [1, 2]));
    input.insert(fact("E", [1, 1]));
    let expected = expected_output(t.query(), &input);
    assert!(expected.is_empty());
    let net = Network::of_size(2);
    let base: std::sync::Arc<dyn calm::transducer::DistributionPolicy> = std::sync::Arc::new(
        DomainGuidedPolicy::all_to(net.clone(), calm::common::Value::str("n1")),
    );
    let policy = calm::transducer::OverridePolicy::new(
        base,
        [fact("E", [1, 1])],
        [calm::common::Value::str("n2")],
    );
    let tn = TransducerNetwork {
        transducer: &t,
        policy: &policy,
        config: SystemConfig::ORIGINAL,
    };
    let r = calm::transducer::run(&tn, &input, &Scheduler::RoundRobin, 100_000);
    assert!(r.quiescent);
    assert_ne!(r.output, expected, "n1 emits O(1,2) before learning E(1,1)");
}

/// Tiny helper namespace to keep the negative-grid test readable.
struct DistinctStrategyFailureFixture;
impl DistinctStrategyFailureFixture {
    fn m_on_sp() -> MonotoneBroadcast {
        MonotoneBroadcast::new(Box::new(edges_without_source_loop()))
    }
}

#[test]
fn distinct_strategy_fails_on_win_move_somewhere() {
    // win-move ∉ Mdistinct, so the distinct strategy must fail on some
    // policy-aware network (Theorem 4.3's converse direction).
    let t = DistinctStrategy::new(Box::new(win_move()));
    let input = chain_game(0, 2);
    let expected = expected_output(t.query(), &input);
    let net = Network::of_size(2);
    let base: std::sync::Arc<dyn calm::transducer::DistributionPolicy> = std::sync::Arc::new(
        DomainGuidedPolicy::all_to(net.clone(), calm::common::Value::str("n1")),
    );
    let policy = calm::transducer::OverridePolicy::new(
        base,
        [calm::common::generator::mv(1, 2)],
        [calm::common::Value::str("n2")],
    );
    let tn = TransducerNetwork {
        transducer: &t,
        policy: &policy,
        config: SystemConfig::POLICY_AWARE,
    };
    let r = calm::transducer::run(&tn, &input, &Scheduler::RoundRobin, 100_000);
    assert!(r.quiescent);
    assert_ne!(r.output, expected);
}
