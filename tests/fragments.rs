//! Integration test: the Datalog/wILOG fragment landscape of Section 5 /
//! Figure 2 — experiments E12, E14, E15 of DESIGN.md.

use calm::common::generator::{disjoint_triangles, path, triangle_from, InstanceRng};
use calm::common::{is_domain_disjoint, Instance};
use calm::datalog::fragment::{classify, is_semi_connected_program, semicon_split};
use calm::ilog::{classify_ilog, eval_ilog_query, is_weakly_safe, IlogProgram, Limits};
use calm::monotone::{check_pair, Exhaustive, ExtensionKind, Falsifier};
use calm::prelude::*;
use calm::queries::example51::{p1, p2};
use calm::queries::qtc_datalog;

// ---------- E12: Example 5.1 ----------

#[test]
fn e12_p1_is_connected_and_disjoint_monotone() {
    let q = p1();
    let report = classify(q.program());
    assert!(report.connected && report.semi_connected && !report.sp_datalog);
    // con-Datalog¬ ⊆ semicon-Datalog¬ ⊆ Mdisjoint (Theorem 5.3):
    assert!(Exhaustive::new(ExtensionKind::DomainDisjoint)
        .certify(&q)
        .is_none());
    // The paper's explicit ∉ Mdistinct witness.
    let i = Instance::from_facts([fact("E", [1, 2])]);
    let j = Instance::from_facts([fact("E", [2, 3]), fact("E", [3, 1])]);
    assert!(check_pair(&q, &i, &j).is_some());
}

#[test]
fn e12_p2_escapes_semicon_and_mdisjoint() {
    let q = p2();
    let report = classify(q.program());
    assert!(report.stratifiable && !report.semi_connected && !report.connected);
    // And the query it expresses is genuinely outside Mdisjoint:
    let i = triangle_from(0);
    let j = triangle_from(100);
    assert!(is_domain_disjoint(&j, &i));
    assert!(check_pair(&q, &i, &j).is_some());
}

// ---------- E14: semicon-Datalog¬ ⊆ Mdisjoint (Theorem 5.3) ----------

#[test]
fn e14_semicon_programs_are_disjoint_monotone() {
    // A battery of semi-connected programs; each must pass exhaustive and
    // randomized domain-disjoint certification.
    let programs = [
        ("qtc", calm::queries::qtc::QTC_SRC),
        (
            "sinks",
            "@output O.\nHasOut(x) :- E(x,y).\nAdom(x) :- E(x,y).\nAdom(y) :- E(x,y).\n\
             O(x) :- Adom(x), not HasOut(x).",
        ),
        (
            "unreached-pairs",
            "@output O.\nT(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).\n\
             O(x,y) :- T(x,u), T(y,w), not T(x,y).",
        ),
        ("non-triangle-vertices", calm::queries::example51::P1_SRC),
    ];
    for (name, src) in programs {
        let q = DatalogQuery::parse(name, src).unwrap();
        assert!(
            is_semi_connected_program(q.program()),
            "{name} must be semicon"
        );
        assert!(
            Exhaustive::new(ExtensionKind::DomainDisjoint)
                .certify(&q)
                .is_none(),
            "{name}: exhaustive disjoint certification"
        );
        let f = Falsifier::new(ExtensionKind::DomainDisjoint)
            .with_trials(150)
            .falsify(&q, |r| InstanceRng::seeded(r.gen_u64()).gnp(4, 0.4));
        assert!(f.is_none(), "{name}: randomized disjoint certification");
    }
}

#[test]
fn e14_semicon_split_composition_equals_whole_program() {
    // Theorem 5.3's decomposition P = P_s ∘ P_{≤s−1}: evaluating the
    // connected prefix then the last stratum equals evaluating P.
    let q = qtc_datalog();
    let (prefix, suffix) = semicon_split(q.program()).expect("semicon");
    for input in [path(3), disjoint_triangles(0, 2)] {
        let whole = calm::datalog::eval_program(q.program(), &input).unwrap();
        let mid = calm::datalog::eval_program(&prefix, &input).unwrap();
        let composed = calm::datalog::eval_program(&suffix, &mid).unwrap();
        assert_eq!(
            whole.restrict(&q.program().output_schema()),
            composed.restrict(&q.program().output_schema())
        );
    }
}

// ---------- E15: wILOG¬ with value invention (Theorem 5.4 side) ----------

#[test]
fn e15_sp_wilog_programs_stay_in_mdistinct() {
    // An SP-wILOG program (invention + edb-negation only): Cabibbo's
    // capture says these are exactly E = Mdistinct; certify the easy
    // direction empirically.
    let src = "@output O.\n\
               Tok(*, x, y) :- E(x, y), not E(y, x).\n\
               O(x, y) :- Tok(t, x, y).";
    let p = IlogProgram::parse(src).unwrap();
    let report = classify_ilog(&p);
    assert!(report.is_sp_wilog());
    let q = calm::ilog::IlogQuery::new("one-way-edges", p).unwrap();
    assert!(Exhaustive::new(ExtensionKind::DomainDistinct)
        .certify(&q)
        .is_none());
    // And it is genuinely non-monotone (adding the reverse edge with old
    // values retracts output), placing it strictly between M and E.
    let i = Instance::from_facts([fact("E", [1, 2])]);
    let j = Instance::from_facts([fact("E", [2, 1])]);
    assert!(check_pair(&q, &i, &j).is_some());
}

#[test]
fn e15_semicon_wilog_program_in_mdisjoint() {
    // A semi-connected wILOG¬ program using invention in a connected
    // stratum and idb-negation in the last one.
    let src = "@output O.\n\
               Pair(*, x, y) :- E(x, y).\n\
               Linked(x) :- Pair(p, x, y).\n\
               Adom(x) :- E(x,y).\n\
               Adom(y) :- E(x,y).\n\
               O(x) :- Adom(x), not Linked(x).";
    let p = IlogProgram::parse(src).unwrap();
    let report = classify_ilog(&p);
    assert!(report.weakly_safe);
    assert!(report.is_semicon_wilog());
    let q = calm::ilog::IlogQuery::new("never-source", p).unwrap();
    assert!(Exhaustive::new(ExtensionKind::DomainDisjoint)
        .certify(&q)
        .is_none());
}

#[test]
fn e15_weak_safety_is_respected_at_runtime() {
    // Weakly safe programs never leak invented values; the runtime check
    // agrees with the static analysis across a program battery.
    let sources = [
        ("safe-pairs", "@output O.\nPair(*, x, y) :- E(x, y).\nO(x, y) :- Pair(p, x, y).", true),
        ("leaky", "@output R.\nR(*, x) :- E(x, x).", false),
        (
            "safe-linked",
            "@output O.\nPair(*, x, y) :- E(x, y).\nLinked(p, q) :- Pair(p, x, y), Pair(q, y, z).\nO(x) :- Pair(p, x, y).",
            true,
        ),
    ];
    // The leaky program only derives on self-loops — include one so the
    // dynamic check actually exercises the leak.
    let mut input = path(3);
    input.insert(fact("E", [1, 1]));
    for (name, src, expect_safe) in sources {
        let p = IlogProgram::parse(src).unwrap();
        assert_eq!(is_weakly_safe(&p), expect_safe, "{name}: static");
        let result = eval_ilog_query(&p, &input, Limits::default());
        assert_eq!(result.is_ok(), expect_safe, "{name}: dynamic");
    }
}

#[test]
fn e15_invention_distinguishes_isomorphic_contexts() {
    // The point of invention: one fresh witness per derivation context.
    // Count invented pair-ids across a path: one per edge.
    let src = "Pair(*, x, y) :- E(x, y).";
    let p = IlogProgram::parse(src).unwrap();
    let full = calm::ilog::eval_ilog(&p, &path(5), Limits::default()).unwrap();
    let ids: std::collections::BTreeSet<_> = full.tuples("Pair").map(|t| t[0].clone()).collect();
    assert_eq!(ids.len(), 5);
    assert!(ids.iter().all(calm::common::Value::is_invented));
}

// ---------- Figure 2 syntactic inclusions across a program battery ----------

#[test]
fn figure2_fragment_inclusions_hold_syntactically() {
    let battery = [
        calm::queries::tc::TC_SRC,
        calm::queries::qtc::QTC_SRC,
        calm::queries::example51::P1_SRC,
        calm::queries::example51::P2_SRC,
        "@output O.\nO(x,y) :- E(x,y), x != y.",
        "@output O.\nO(x,y) :- E(x,y), not E(y,x).",
    ];
    for src in battery {
        let q = DatalogQuery::parse("battery", src).unwrap();
        let r = classify(q.program());
        // Datalog ⊆ Datalog(≠) ⊆ SP-Datalog ⊆ semicon ⊆ stratifiable;
        // connected ⊆ semicon.
        if r.datalog {
            assert!(r.datalog_neq);
        }
        if r.datalog_neq {
            assert!(r.sp_datalog);
        }
        if r.sp_datalog {
            assert!(r.semi_connected, "SP ⊆ semicon fails on:\n{src}");
        }
        if r.connected {
            assert!(r.semi_connected);
        }
        if r.semi_connected {
            assert!(r.stratifiable);
        }
    }
}
