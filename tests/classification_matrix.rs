//! The headline table, end to end: every paper query dropped into the
//! one-call classifier must land exactly where Figure 1 places it.

use calm::monotone::classify_query_default;
use calm::prelude::*;
use calm::queries::{qtc_datalog, tc_datalog, winmove::win_move, CliqueQuery, StarQuery};

#[test]
fn figure_1_placement_matrix() {
    let cases: Vec<(Box<dyn Query>, &str)> = vec![
        (Box::new(tc_datalog()), "M"),
        (Box::new(calm::queries::tc::edges_neq()), "M"),
        (Box::new(calm::queries::reachable()), "M"),
        (Box::new(calm::queries::on_cycle()), "M"),
        (
            Box::new(calm::queries::tc::edges_without_source_loop()),
            "Mdistinct",
        ),
        (Box::new(qtc_datalog()), "Mdisjoint"),
        (Box::new(calm::queries::unreachable()), "Mdisjoint"),
        (Box::new(win_move()), "Mdisjoint"),
        (Box::new(calm::queries::example51::p1()), "Mdisjoint"),
    ];
    for (q, expected) in cases {
        let report = classify_query_default(q.as_ref(), 150, 0xF1);
        assert_eq!(
            report.lowest_class(),
            expected,
            "query {} misplaced",
            q.name()
        );
    }
}

#[test]
fn parameterized_ladders_placed_by_explicit_witnesses() {
    // The bounded-family queries need structured witnesses (a near-clique
    // plus the completing star) that random search rarely synthesizes —
    // use the paper's explicit pairs via check_pair instead.
    use calm::common::generator::{clique_from, edge, star_from};
    use calm::common::Instance;
    use calm::monotone::check_pair;
    for k in [3usize, 4] {
        let q = CliqueQuery::new(k);
        let base = clique_from(0, k - 1);
        let complete: Instance = Instance::from_facts((0..k as i64 - 1).map(|v| edge(1000, v)));
        assert!(
            check_pair(&q, &base, &complete).is_some(),
            "Q^{k}_clique ∉ M (fresh-centre completion)"
        );
    }
    for k in [2usize, 3] {
        let q = StarQuery::new(k);
        let base = star_from(0, k - 1);
        let extend = Instance::from_facts([edge(0, 700)]);
        assert!(
            check_pair(&q, &base, &extend).is_some(),
            "Q^{k}_star ∉ Mdistinct (extend the old centre)"
        );
        let fresh = star_from(800, k);
        assert!(
            check_pair(&q, &base, &fresh).is_some(),
            "Q^{k}_star ∉ M (fresh star)"
        );
    }
}

#[test]
fn win_move_drawn_placed_like_win_move() {
    let report = classify_query_default(&calm::queries::win_move_drawn(), 150, 0xD1);
    assert_eq!(report.lowest_class(), "Mdisjoint");
}
