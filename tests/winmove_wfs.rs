//! Integration test: win-move under the well-founded semantics
//! (experiment E16) — WFS vs. backward induction vs. the doubled program,
//! and win-move's exact position in the monotonicity hierarchy.

use calm::common::generator::{chain_game, cycle_game, cycle_with_escape, mv, InstanceRng};
use calm::common::{is_domain_disjoint, Instance};
use calm::datalog::wellfounded::doubled_program;
use calm::datalog::{parse_program, well_founded_model};
use calm::monotone::{check_pair, Exhaustive, ExtensionKind, Falsifier};
use calm::prelude::*;
use calm::queries::winmove::{win_move, win_move_native};

#[test]
fn wfs_equals_backward_induction_on_many_random_games() {
    let wfs = win_move();
    let oracle = win_move_native();
    for seed in 0..40u64 {
        let game = InstanceRng::seeded(seed).move_graph(14, 3);
        assert_eq!(wfs.eval(&game), oracle.eval(&game), "seed {seed}");
    }
}

#[test]
fn doubled_program_equals_alternating_fixpoint_on_random_games() {
    let p = parse_program("win(x) :- move(x,y), not win(y).").unwrap();
    let d = doubled_program(&p);
    for seed in 0..25u64 {
        let game = InstanceRng::seeded(1000 + seed).move_graph(10, 3);
        let direct = well_founded_model(&p, &game);
        let doubled = d.eval(&game);
        let out = p.output_schema();
        assert_eq!(
            direct.true_facts.restrict(&out),
            doubled.true_facts.restrict(&out),
            "seed {seed}: true facts"
        );
        assert_eq!(
            direct.undefined().restrict(&out),
            doubled.undefined().restrict(&out),
            "seed {seed}: undefined facts"
        );
    }
}

#[test]
fn three_valued_structure_of_classic_games() {
    let p = parse_program("win(x) :- move(x,y), not win(y).").unwrap();
    // Chains are total; even cycles fully drawn; odd cycles fully drawn;
    // cycle-with-escape total.
    assert!(well_founded_model(&p, &chain_game(0, 6)).is_total());
    assert!(well_founded_model(&p, &cycle_with_escape(0)).is_total());
    for n in [2, 3, 4, 5] {
        let m = well_founded_model(&p, &cycle_game(0, n));
        assert_eq!(m.undefined().relation_len("win"), n, "cycle of {n}");
    }
}

#[test]
fn win_move_is_not_domain_distinct_monotone() {
    // Exhaustive small-domain search over move-graphs finds the witness.
    let q = win_move();
    let violation = Exhaustive::new(ExtensionKind::DomainDistinct).certify(&q);
    assert!(violation.is_some(), "win-move ∉ Mdistinct");
    // Spot-check the paper-style witness too.
    let i = Instance::from_facts([mv(1, 2)]);
    let j = Instance::from_facts([mv(2, 3)]);
    assert!(check_pair(&q, &i, &j).is_some());
}

#[test]
fn win_move_is_domain_disjoint_monotone_empirically() {
    let q = win_move();
    // Exhaustive over the move schema.
    assert!(Exhaustive::new(ExtensionKind::DomainDisjoint)
        .certify(&q)
        .is_none());
    // Randomized with game-shaped bases.
    let f = Falsifier::new(ExtensionKind::DomainDisjoint)
        .with_trials(200)
        .falsify(&q, |r| InstanceRng::seeded(r.gen_u64()).move_graph(8, 2));
    assert!(f.is_none());
}

#[test]
fn win_move_distributes_over_components() {
    // The structural reason win-move ∈ Mdisjoint (via the connected
    // doubled program, Section 7): it distributes over components.
    use calm::monotone::check_distributes_over_components;
    for seed in 0..10u64 {
        let a = InstanceRng::seeded(seed).move_graph(6, 2);
        let b = InstanceRng::seeded(100 + seed)
            .move_graph(6, 2)
            .map_values(|v| match v {
                calm::common::Value::Int(k) => calm::common::v(k + 1000),
                other => other.clone(),
            });
        let multi = a.union(&b);
        assert!(
            check_distributes_over_components(&win_move(), &multi).is_none(),
            "seed {seed}"
        );
    }
}

#[test]
fn doubled_program_sides_are_semi_positive_and_connected() {
    // The doubled program of the (connected) win-move rule is itself
    // connected and each side is semi-positive — the ingredients of the
    // Section 7 argument that win-move stays in Mdisjoint.
    let p = parse_program("win(x) :- move(x,y), not win(y).").unwrap();
    let d = doubled_program(&p);
    assert!(d.true_side.is_semi_positive());
    assert!(d.possible_side.is_semi_positive());
    for rule in d.true_side.rules().iter().chain(d.possible_side.rules()) {
        assert!(calm::datalog::is_rule_connected(rule));
    }
}

#[test]
fn disjoint_subgames_never_interact() {
    // End-to-end: solving the union of far-apart games equals the union
    // of the solutions.
    let q = win_move();
    let games = [chain_game(0, 5), cycle_game(100, 4), cycle_with_escape(200)];
    let mut union_input = Instance::new();
    let mut union_answer = Instance::new();
    for g in &games {
        for other in &games {
            if !std::ptr::eq(g, other) {
                assert!(is_domain_disjoint(g, other));
            }
        }
        union_input.extend(g.facts());
        union_answer.extend(q.eval(g).facts());
    }
    assert_eq!(q.eval(&union_input), union_answer);
}
